//! Umbrella crate for the AutoLock reproduction: re-exports the workspace
//! crates so examples and integration tests can use a single dependency.

pub use autolock;
pub use autolock_attacks as attacks;
pub use autolock_circuits as circuits;
pub use autolock_evo as evo;
pub use autolock_gnn as gnn;
pub use autolock_locking as locking;
pub use autolock_mlcore as mlcore;
pub use autolock_netlist as netlist;
pub use autolock_satsolver as satsolver;
