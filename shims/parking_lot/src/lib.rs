//! Offline shim for `parking_lot`: non-poisoning `Mutex`/`RwLock` built on
//! `std::sync`. Poisoned locks (a panic while holding the guard) are
//! recovered rather than propagated, matching parking_lot's semantics.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
