//! Offline `serde_json` shim: JSON text ⇄ the shim `serde::Value` tree.
//!
//! Supports the workspace's uses: `to_string`, `to_string_pretty` and
//! `from_str`. The emitter escapes control characters and quotes; numbers are
//! printed with Rust's shortest-round-trip float formatting. The parser is a
//! straightforward recursive-descent JSON reader producing `serde::Value`.

use serde::{DeError, Deserialize, Serialize, Value};

/// Error raised by JSON conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes a value to human-readable, indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn write_value(
    v: &Value,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            if f.fract() == 0.0 && f.abs() < 1e15 {
                // Keep integral floats recognizable (serde_json prints `1.0`).
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&f.to_string());
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                write_value(item, indent, level + 1, out)?;
            }
            newline_indent(indent, level, out);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                write_json_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, level + 1, out)?;
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != expected {
            return Err(Error::new(format!(
                "expected '{}' at byte {}, found '{}'",
                expected as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn literal(&mut self, text: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                self.literal("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.literal("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.literal("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        c => {
                            return Err(Error::new(format!(
                                "expected ',' or ']' at byte {}, found '{}'",
                                self.pos, c as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.eat(b':')?;
                    let value = self.value()?;
                    entries.push((key, value));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        c => {
                            return Err(Error::new(format!(
                                "expected ',' or '}}' at byte {}, found '{}'",
                                self.pos, c as char
                            )))
                        }
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        c => return Err(Error::new(format!("invalid escape '\\{}'", c as char))),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid float '{text}'")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u128>()
                .map(|n| Value::Int(-(n as i128)))
                .map_err(|_| Error::new(format!("invalid integer '{text}'")))
        } else {
            text.parse::<u128>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid integer '{text}'")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_values() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(3)),
            ("b".into(), Value::Float(1.5)),
            ("c".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("d".into(), Value::Str("he\"llo\nworld".into())),
            ("e".into(), Value::Int(-12)),
        ]);
        let text = {
            let mut out = String::new();
            write_value(&v, None, 0, &mut out).unwrap();
            out
        };
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let v = Value::Map(vec![("k".into(), Value::Seq(vec![Value::UInt(1)]))]);
        let mut out = String::new();
        write_value(&v, Some(2), 0, &mut out).unwrap();
        assert!(out.contains('\n'));
        assert_eq!(parse_value(&out).unwrap(), v);
    }

    #[test]
    fn float_formatting_round_trips() {
        for f in [0.1, 1.0, -2.5, 1e-9, 12345.6789, std::f64::consts::PI] {
            let mut out = String::new();
            write_value(&Value::Float(f), None, 0, &mut out).unwrap();
            match parse_value(&out).unwrap() {
                Value::Float(back) => assert_eq!(back, f),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 2").is_err());
    }

    #[test]
    fn unicode_strings_survive() {
        let v = Value::Str("héllo ↯ 日本語".into());
        let mut out = String::new();
        write_value(&v, None, 0, &mut out).unwrap();
        assert_eq!(parse_value(&out).unwrap(), v);
    }
}
