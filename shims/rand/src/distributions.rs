//! Distributions: the `Standard` distribution, uniform range sampling and
//! `WeightedIndex`.

use crate::RngCore;
use core::borrow::Borrow;

/// Types that can produce values of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a primitive type: uniform over all values
/// for integers, uniform in `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform sampling over ranges.
pub mod uniform {
    use crate::RngCore;

    /// Marker for types `gen_range` can sample.
    pub trait SampleUniform: Sized {
        /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
        /// (`inclusive = true`).
        fn sample_uniform<R: RngCore + ?Sized>(
            lo: Self,
            hi: Self,
            inclusive: bool,
            rng: &mut R,
        ) -> Self;
    }

    macro_rules! uniform_int {
        ($($t:ty => $wide:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore + ?Sized>(
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    let (lo_w, hi_w) = (lo as i128, hi as i128);
                    let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                    assert!(span > 0, "cannot sample from empty range");
                    // Widening multiply: maps 64 random bits onto the span
                    // with negligible bias for the span sizes used here.
                    let r = rng.next_u64() as u128;
                    let off = ((r * span as u128) >> 64) as i128;
                    (lo_w + off) as $t
                }
            }
        )*};
    }
    uniform_int!(
        u8 => u16, u16 => u32, u32 => u64, u64 => u128, usize => u128,
        i8 => i16, i16 => i32, i32 => i64, i64 => i128, isize => i128
    );

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore + ?Sized>(
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    let _ = inclusive; // [lo, hi) and [lo, hi] coincide a.s.
                    assert!(lo < hi || (inclusive && lo == hi), "cannot sample from empty range");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    (lo as f64 + unit * (hi as f64 - lo as f64)) as $t
                }
            }
        )*};
    }
    uniform_float!(f32, f64);

    /// Range forms accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draws one uniform sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_uniform(self.start, self.end, false, rng)
        }
    }

    impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_uniform(*self.start(), *self.end(), true, rng)
        }
    }
}

/// Error produced by [`WeightedIndex::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedError {
    /// No weights were provided.
    NoItem,
    /// A weight was negative or non-finite.
    InvalidWeight,
    /// The weights sum to zero.
    AllWeightsZero,
}

impl core::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no weights provided"),
            WeightedError::InvalidWeight => write!(f, "negative or non-finite weight"),
            WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Samples indices `0..n` proportionally to a list of non-negative weights.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Builds the sampler from an iterator of weights.
    pub fn new<I>(weights: I) -> Result<WeightedIndex, WeightedError>
    where
        I: IntoIterator,
        I::Item: core::borrow::Borrow<f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = *w.borrow();
            if !(w.is_finite() && w >= 0.0) {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let target = unit * self.total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&target).expect("finite weights"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fill_bytes_via_u64;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            fill_bytes_via_u64(self, dest)
        }
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        let w = WeightedIndex::new([0.0, 1.0, 0.0]).unwrap();
        let mut rng = Lcg(9);
        for _ in 0..200 {
            assert_eq!(w.sample(&mut rng), 1);
        }
    }

    #[test]
    fn weighted_index_rejects_bad_input() {
        assert!(matches!(
            WeightedIndex::new(Vec::<f64>::new()),
            Err(WeightedError::NoItem)
        ));
        assert!(WeightedIndex::new([-1.0]).is_err());
        assert!(WeightedIndex::new([0.0, 0.0]).is_err());
    }

    #[test]
    fn weighted_index_is_roughly_proportional() {
        let w = WeightedIndex::new([1.0, 3.0]).unwrap();
        let mut rng = Lcg(11);
        let mut counts = [0usize; 2];
        for _ in 0..4000 {
            counts[w.sample(&mut rng)] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((2.0..4.5).contains(&ratio), "ratio {ratio}");
    }
}
