//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! from-scratch implementation of exactly the `rand` surface the codebase
//! uses: [`RngCore`], [`SeedableRng`], the extension trait [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`seq::SliceRandom`] (`choose`,
//! `shuffle`) and [`distributions::WeightedIndex`].
//!
//! Algorithms follow the upstream semantics (widening-multiply uniform
//! integers, 53-bit uniform floats, Fisher–Yates shuffling) but make no
//! attempt at bit-for-bit stream compatibility with upstream `rand`; the
//! workspace only relies on determinism under a fixed seed, which this
//! implementation provides.

pub mod distributions;
pub mod seq;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type, e.g. `[u8; 32]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded with SplitMix64 exactly so
    /// that distinct small seeds give unrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used only to expand `u64` seeds into full seed arrays.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Extension methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of any [`Standard`]-distributed type (`bool`, the
    /// integer primitives, `f64`/`f32`).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a half-open (`a..b`) or inclusive (`a..=b`)
    /// range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        // 53-bit uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Fills a byte slice from a `next_u64` implementation; shared by concrete
/// generators.
pub fn fill_bytes_via_u64<R: RngCore + ?Sized>(rng: &mut R, dest: &mut [u8]) {
    for chunk in dest.chunks_mut(8) {
        let word = rng.next_u64().to_le_bytes();
        let n = chunk.len();
        chunk.copy_from_slice(&word[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountRng(u64);
    impl RngCore for CountRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            fill_bytes_via_u64(self, dest)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = CountRng(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: usize = rng.gen_range(0..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = CountRng(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn dyn_rng_core_is_object_safe() {
        let mut rng = CountRng(3);
        let mut dynrng: &mut dyn RngCore = &mut rng;
        let _ = dynrng.next_u64();
        let v: bool = (&mut dynrng).gen();
        let _ = v;
    }
}
