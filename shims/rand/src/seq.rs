//! Sequence helpers: `choose` and `shuffle` on slices.

use crate::RngCore;

/// Uniform index in `0..n` for possibly-unsized RNG receivers.
fn uniform_index<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as usize
}

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_index(rng, self.len())])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_index(rng, i + 1);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fill_bytes_via_u64;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            fill_bytes_via_u64(self, dest)
        }
    }

    #[test]
    fn choose_and_shuffle_behave() {
        let mut rng = Lcg(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3, 4];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let mut v: Vec<usize> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "50 elements should not survive a shuffle intact");
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, orig);
    }
}
