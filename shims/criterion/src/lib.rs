//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Provides `Criterion`, benchmark groups, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!` macros.
//! Timing is a simple mean over `sample_size` timed samples (after one
//! warm-up run) printed to stdout — adequate for relative comparisons in an
//! offline environment, with the same source-level API as real criterion so
//! the benches compile unchanged.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (the workspace uses
/// `std::hint::black_box`, but the re-export keeps the API complete).
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; the shim treats all sizes alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.sample_size, f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Finishes the group (marker only; statistics print per benchmark).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    // Warm-up sample (discarded).
    f(&mut bencher);
    bencher.elapsed = Duration::ZERO;
    bencher.iterations = 0;
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let per_iter = if bencher.iterations > 0 {
        bencher.elapsed / bencher.iterations as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {id}: {:>12.3?} /iter ({} iters)",
        per_iter, bencher.iterations
    );
}

/// Times closures for one benchmark.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times repeated runs of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }

    /// Times `routine` on fresh inputs built by `setup` (setup not timed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("t", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn groups_and_batched_iter_work() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let mut total = 0usize;
        group.bench_function("b", |b| {
            b.iter_batched(
                || vec![1, 2, 3],
                |v| total += v.len(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(total, 9);
    }
}
