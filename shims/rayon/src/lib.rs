//! Offline shim for the subset of `rayon` this workspace uses:
//! `slice.par_iter().map(f).collect::<Vec<_>>()`.
//!
//! Unlike a sequential stub, this actually runs the mapped closure in
//! parallel: the input is split into one contiguous chunk per available core
//! and each chunk is processed on a scoped `std::thread`. Output order is
//! preserved. There is no work stealing — fitness-evaluation workloads in
//! this workspace are uniform enough that static chunking is adequate.

use std::num::NonZeroUsize;

pub mod prelude {
    //! Glob-importable API surface, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelRefIterator, ParMap, ParSlice};
}

/// Types whose references can be iterated in parallel.
pub trait IntoParallelRefIterator<'data> {
    /// Element type.
    type Item: Sync + 'data;

    /// A parallel iterator over `&Self::Item`.
    fn par_iter(&'data self) -> ParSlice<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { items: self }
    }
}

/// A parallel iterator over a slice.
#[derive(Debug, Clone, Copy)]
pub struct ParSlice<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Maps every element through `f` (in parallel at collect time).
    pub fn map<F, R>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParSlice::map`]; evaluation happens in [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Runs the map on all elements, preserving order, and collects the
    /// results.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: From<Vec<R>>,
    {
        C::from(par_map_slice(self.items, &self.f))
    }
}

fn par_map_slice<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync>(items: &'a [T], f: &F) -> Vec<R> {
    let threads = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut results: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
            .collect();
        results = handles
            .into_iter()
            .map(|h| h.join().expect("parallel map worker panicked"))
            .collect();
    });
    let mut out = Vec::with_capacity(items.len());
    for part in results {
        out.extend(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_tiny_and_empty_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [5usize];
        let out: Vec<usize> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let input: Vec<usize> = (0..256).collect();
        let _: Vec<usize> = input
            .par_iter()
            .map(|&x| {
                ids.lock().unwrap().insert(std::thread::current().id());
                x
            })
            .collect();
        let n = ids.lock().unwrap().len();
        // On a multi-core box this is > 1; on a single-core box it must be 1.
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        assert!(n >= 1 && n <= cores.max(1));
    }
}
