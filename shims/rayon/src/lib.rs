//! Offline shim for the subset of `rayon` this workspace uses:
//! `slice.par_iter().map(f).collect::<Vec<_>>()`.
//!
//! Unlike a sequential stub, this actually runs the mapped closure in
//! parallel: the input is split into one contiguous chunk per available core
//! and each chunk is processed on a scoped `std::thread`. Output order is
//! preserved. There is no work stealing — fitness-evaluation workloads in
//! this workspace are uniform enough that static chunking is adequate.

use std::cell::Cell;
use std::num::NonZeroUsize;

pub mod prelude {
    //! Glob-importable API surface, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelRefIterator, ParMap, ParSlice};
}

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`]; `0` means
    /// "no override" (use all available cores).
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The number of threads parallel operations use on the current thread:
/// the installed [`ThreadPool`]'s size, or the number of available cores
/// outside any pool. Mirrors `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    let installed = POOL_THREADS.with(Cell::get);
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Builder for a [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
///
/// The shim pool does not own worker threads: workers are scoped
/// `std::thread`s spawned per parallel call, so "building" a pool only
/// records the requested thread count.
#[derive(Debug, Clone, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type returned by [`ThreadPoolBuilder::build`] (the shim never
/// actually fails, but the `Result` keeps call sites source-compatible).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (all cores) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool's thread count; `0` means all available cores.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped parallelism level, mirroring `rayon::ThreadPool`: parallel
/// operations run inside [`ThreadPool::install`] split work across this
/// pool's thread count instead of the machine default.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        }
    }

    /// Runs `op` with this pool's thread count governing nested parallel
    /// iterators, restoring the previous setting afterwards (panic-safe).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(POOL_THREADS.with(|c| c.replace(self.num_threads)));
        op()
    }
}

/// Types whose references can be iterated in parallel.
pub trait IntoParallelRefIterator<'data> {
    /// Element type.
    type Item: Sync + 'data;

    /// A parallel iterator over `&Self::Item`.
    fn par_iter(&'data self) -> ParSlice<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { items: self }
    }
}

/// A parallel iterator over a slice.
#[derive(Debug, Clone, Copy)]
pub struct ParSlice<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Maps every element through `f` (in parallel at collect time).
    pub fn map<F, R>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParSlice::map`]; evaluation happens in [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Runs the map on all elements, preserving order, and collects the
    /// results.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: From<Vec<R>>,
    {
        C::from(par_map_slice(self.items, &self.f))
    }
}

fn par_map_slice<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync>(items: &'a [T], f: &F) -> Vec<R> {
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut results: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
            .collect();
        results = handles
            .into_iter()
            .map(|h| h.join().expect("parallel map worker panicked"))
            .collect();
    });
    let mut out = Vec::with_capacity(items.len());
    for part in results {
        out.extend(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_tiny_and_empty_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [5usize];
        let out: Vec<usize> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn thread_pool_installs_and_restores_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let before = crate::current_num_threads();
        let inside = pool.install(crate::current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(crate::current_num_threads(), before);
        // Nested installs stack and restore correctly.
        let inner_pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let (outer, inner) = pool.install(|| {
            let inner = inner_pool.install(crate::current_num_threads);
            (crate::current_num_threads(), inner)
        });
        assert_eq!((outer, inner), (3, 2));
    }

    #[test]
    fn pool_bounded_map_matches_serial() {
        let input: Vec<usize> = (0..257).collect();
        let serial: Vec<usize> = input.iter().map(|&x| x * 3 + 1).collect();
        for n in [1usize, 2, 4, 7] {
            let pool = crate::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap();
            let parallel: Vec<usize> =
                pool.install(|| input.par_iter().map(|&x| x * 3 + 1).collect());
            assert_eq!(parallel, serial, "num_threads = {n}");
        }
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let input: Vec<usize> = (0..256).collect();
        let _: Vec<usize> = input
            .par_iter()
            .map(|&x| {
                ids.lock().unwrap().insert(std::thread::current().id());
                x
            })
            .collect();
        let n = ids.lock().unwrap().len();
        // On a multi-core box this is > 1; on a single-core box it must be 1.
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        assert!(n >= 1 && n <= cores.max(1));
    }
}
