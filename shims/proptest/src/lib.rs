//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Each `proptest!` test runs `ProptestConfig::cases` random cases generated
//! from a fixed per-test seed (derived from the test's name), so failures are
//! reproducible run-to-run. Unlike real proptest there is **no shrinking**:
//! a failing case reports its case index and inputs via the panic message of
//! the underlying `assert!`.
//!
//! Supported strategy surface: integer and float ranges, `any::<T>()`,
//! `proptest::bool::ANY`, tuples of strategies, `collection::vec`, and
//! `.prop_map`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG handed to strategies.
pub type TestRng = ChaCha8Rng;

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<F, O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(S::Value) -> O, O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// The "any value" strategy for primitive types.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(core::marker::PhantomData)
}

macro_rules! any_via_standard {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen()
            }
        }
    )*};
}
any_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

pub mod bool {
    //! Boolean strategies.

    /// A fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// The fair-coin strategy, mirroring `proptest::bool::ANY`.
    pub const ANY: BoolAny = BoolAny;

    impl super::Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut super::TestRng) -> bool {
            use rand::Rng;
            rng.gen()
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!((A: 0, B: 1)(A: 0, B: 1, C: 2)(A: 0, B: 1, C: 2, D: 3));

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Accepted size specifications for [`vec`]: a fixed length, a half-open
    /// range or an inclusive range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s with random length in `len` and elements from
    /// `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// Generates vectors whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let n = rng.gen_range(self.len.lo..self.len.hi_exclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Creates the per-case RNG (used by the `proptest!` expansion so test
/// crates do not need their own `rand` dependency).
pub fn new_rng(seed: u64) -> TestRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives a stable 64-bit seed from a test name.
pub fn seed_from_name(name: &str) -> u64 {
    // FNV-1a.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Property assertion; panics (failing the test case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// The property-test entry macro: wraps each `fn` in a `#[test]` that runs
/// `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut __proptest_rng =
                    $crate::new_rng(seed ^ ((case as u64) << 32) ^ case as u64);
                $( let $pat = ($strat).generate(&mut __proptest_rng); )+
                // Run the body in a closure returning Result so user code may
                // `return Ok(())` for early case acceptance, like real proptest.
                let __proptest_outcome: ::core::result::Result<(), ::core::convert::Infallible> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                drop(__proptest_outcome);
            }
        }
    )*};
}
