//! ChaCha-based deterministic RNG for the offline `rand` shim.
//!
//! Implements the ChaCha block function (Bernstein) with 8 rounds, keyed by a
//! 32-byte seed and a 64-bit block counter. The workspace uses `ChaCha8Rng`
//! exclusively through `SeedableRng::seed_from_u64` / `from_seed` and the
//! `RngCore` word stream; stream/word-position APIs of the real crate are not
//! reproduced.

use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

const ROUNDS: usize = 8;

/// A deterministic ChaCha8 random number generator.
///
/// Serializable so that checkpoint/resume systems can persist the exact
/// stream position: a deserialized RNG continues bit-for-bit where the
/// serialized one stopped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaCha8Rng {
    /// Key (words 4..12 of the ChaCha state).
    key: [u32; 8],
    /// 64-bit block counter (words 12..14); nonce words (14..16) stay zero.
    counter: u64,
    /// Current block of output words.
    buffer: [u32; 16],
    /// Next unread index into `buffer`; 16 means "refill".
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(&initial) {
            *out = out.wrapping_add(*init);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        rand::fill_bytes_via_u64(self, dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..5 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..40 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn serde_round_trip_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..7 {
            a.next_u32(); // land mid-buffer
        }
        let json = serde_json::to_string(&a).unwrap();
        let mut b: ChaCha8Rng = serde_json::from_str(&json).unwrap();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn stream_has_no_trivial_bias() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += rng.next_u64().count_ones();
        }
        let frac = ones as f64 / 64000.0;
        assert!((0.48..0.52).contains(&frac), "bit fraction {frac}");
    }
}
