//! Offline `serde_derive` shim.
//!
//! Generates impls of the shim `serde::Serialize` / `serde::Deserialize`
//! value-tree traits for structs and enums. The input item is parsed directly
//! from the `proc_macro::TokenStream` (no `syn`/`quote` in an offline build),
//! covering the shapes used in this workspace:
//!
//! * structs with named fields, including `#[serde(skip)]` fields (skipped on
//!   serialize, `Default::default()` on deserialize),
//! * tuple/newtype structs and unit structs,
//! * enums with unit, tuple and struct variants (externally tagged, like real
//!   serde),
//! * simple generic parameters (`struct GaResult<G> { ... }`), which get a
//!   `G: serde::Serialize` / `G: serde::Deserialize` bound.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct GenParam {
    /// Full declaration text, e.g. `G`, `G: Clone`, `'a`, `const N: usize`.
    decl: String,
    /// Bare name used in type position, e.g. `G`, `'a`, `N`.
    arg: String,
    /// Whether a serde trait bound should be added (type params only).
    needs_bound: bool,
}

struct Item {
    name: String,
    generics: Vec<GenParam>,
    kind: ItemKind,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips outer attributes; returns `true` if any of them was
    /// `#[serde(skip)]`.
    fn skip_attributes(&mut self) -> bool {
        let mut has_skip = false;
        loop {
            let is_pound = matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#');
            if !is_pound {
                return has_skip;
            }
            self.pos += 1;
            if let Some(TokenTree::Group(g)) = self.next() {
                let mut inner = g.stream().into_iter();
                if let Some(TokenTree::Ident(id)) = inner.next() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.next() {
                            let text = args.stream().to_string();
                            if text.split(',').any(|part| part.trim() == "skip") {
                                has_skip = true;
                            }
                        }
                    }
                }
            }
        }
    }

    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            self.pos += 1;
            if matches!(
                self.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                self.pos += 1;
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected {what}, found {other:?}"),
        }
    }

    /// Parses `<...>` generic parameters if present.
    fn parse_generics(&mut self) -> Vec<GenParam> {
        let starts = matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<');
        if !starts {
            return Vec::new();
        }
        self.pos += 1;
        let mut depth = 1usize;
        let mut params = Vec::new();
        let mut current: Vec<TokenTree> = Vec::new();
        while depth > 0 {
            let t = self.next().expect("serde derive: unterminated generics");
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ',' if depth == 1 => {
                        params.push(make_gen_param(&current));
                        current.clear();
                        continue;
                    }
                    _ => {}
                }
            }
            current.push(t);
        }
        if !current.is_empty() {
            params.push(make_gen_param(&current));
        }
        params
    }

    /// Consumes type tokens until a top-level `,` (angle-bracket aware).
    /// Returns `true` if a comma was consumed (more items may follow).
    fn skip_type_until_comma(&mut self) -> bool {
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        self.pos += 1;
                        return true;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
        false
    }
}

fn make_gen_param(tokens: &[TokenTree]) -> GenParam {
    let decl: String = tokens
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ");
    // Lifetime: starts with a `'` punct.
    if matches!(tokens.first(), Some(TokenTree::Punct(p)) if p.as_char() == '\'') {
        let name = tokens.get(1).map(|t| t.to_string()).unwrap_or_default();
        return GenParam {
            decl,
            arg: ::std::format!("'{name}"),
            needs_bound: false,
        };
    }
    // Const parameter: `const N: usize`.
    if matches!(tokens.first(), Some(TokenTree::Ident(id)) if id.to_string() == "const") {
        let name = tokens.get(1).map(|t| t.to_string()).unwrap_or_default();
        return GenParam {
            decl,
            arg: name,
            needs_bound: false,
        };
    }
    // Plain type parameter, possibly with bounds.
    let name = tokens.first().map(|t| t.to_string()).unwrap_or_default();
    GenParam {
        decl,
        arg: name,
        needs_bound: true,
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(group);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let skip = cur.skip_attributes();
        if cur.at_end() {
            break;
        }
        cur.skip_visibility();
        let name = cur.expect_ident("field name");
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected ':' after field {name}, found {other:?}"),
        }
        fields.push(Field { name, skip });
        if !cur.skip_type_until_comma() {
            break;
        }
    }
    fields
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut cur = Cursor::new(group);
    let mut count = 0usize;
    loop {
        cur.skip_attributes();
        if cur.at_end() {
            break;
        }
        cur.skip_visibility();
        if cur.at_end() {
            break;
        }
        count += 1;
        if !cur.skip_type_until_comma() {
            break;
        }
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(group);
    let mut variants = Vec::new();
    while !cur.at_end() {
        cur.skip_attributes();
        if cur.at_end() {
            break;
        }
        let name = cur.expect_ident("variant name");
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let stream = g.stream();
                cur.pos += 1;
                Fields::Named(parse_named_fields(stream))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let stream = g.stream();
                cur.pos += 1;
                Fields::Tuple(count_tuple_fields(stream))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while let Some(t) = cur.peek() {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                cur.pos += 1;
                break;
            }
            cur.pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.skip_attributes();
    cur.skip_visibility();
    let keyword = cur.expect_ident("struct/enum keyword");
    let name = cur.expect_ident("type name");
    let generics = cur.parse_generics();
    // Skip a where clause if present (tokens until the body group).
    let kind = loop {
        match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let stream = g.stream();
                cur.pos += 1;
                break if keyword == "enum" {
                    ItemKind::Enum(parse_variants(stream))
                } else {
                    ItemKind::Struct(Fields::Named(parse_named_fields(stream)))
                };
            }
            Some(TokenTree::Group(g))
                if g.delimiter() == Delimiter::Parenthesis && keyword == "struct" =>
            {
                let stream = g.stream();
                cur.pos += 1;
                break ItemKind::Struct(Fields::Tuple(count_tuple_fields(stream)));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                cur.pos += 1;
                break ItemKind::Struct(Fields::Unit);
            }
            Some(_) => {
                cur.pos += 1;
            }
            None => panic!("serde derive: missing body for {name}"),
        }
    };
    Item {
        name,
        generics,
        kind,
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.generics.is_empty() {
        return ::std::format!("impl serde::{trait_name} for {}", item.name);
    }
    let decls: Vec<String> = item
        .generics
        .iter()
        .map(|g| {
            if g.needs_bound {
                if g.decl.contains(':') {
                    ::std::format!("{} + serde::{trait_name}", g.decl)
                } else {
                    ::std::format!("{}: serde::{trait_name}", g.decl)
                }
            } else {
                g.decl.clone()
            }
        })
        .collect();
    let args: Vec<String> = item.generics.iter().map(|g| g.arg.clone()).collect();
    ::std::format!(
        "impl<{}> serde::{trait_name} for {}<{}>",
        decls.join(", "),
        item.name,
        args.join(", ")
    )
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let mut s = ::std::string::String::from(
                "let mut map: ::std::vec::Vec<(::std::string::String, serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&::std::format!(
                    "map.push((::std::string::String::from(\"{0}\"), serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("let _ = &mut map;\nserde::Value::Map(map)");
            s
        }
        ItemKind::Struct(Fields::Tuple(1)) => "serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| ::std::format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            ::std::format!("serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        ItemKind::Struct(Fields::Unit) => "serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&::std::format!(
                            "Self::{vn} => serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                        ));
                    }
                    Fields::Tuple(1) => {
                        arms.push_str(&::std::format!(
                            "Self::{vn}(x0) => serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), \
                             serde::Serialize::to_value(x0))]),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| ::std::format!("x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| ::std::format!("serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&::std::format!(
                            "Self::{vn}({}) => serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), \
                             serde::Value::Seq(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = ::std::string::String::from(
                            "let mut inner: ::std::vec::Vec<(::std::string::String, serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields.iter().filter(|f| !f.skip) {
                            inner.push_str(&::std::format!(
                                "inner.push((::std::string::String::from(\"{0}\"), \
                                 serde::Serialize::to_value({0})));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&::std::format!(
                            "Self::{vn} {{ {} }} => {{ {inner} serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), serde::Value::Map(inner))]) }}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            ::std::format!("match self {{\n{arms}}}")
        }
    };
    ::std::format!(
        "{} {{\n fn to_value(&self) -> serde::Value {{\n{body}\n}}\n}}",
        impl_header(item, "Serialize")
    )
}

fn named_fields_ctor(fields: &[Field], map_expr: &str, type_name: &str) -> String {
    let mut s = String::new();
    for f in fields {
        if f.skip {
            s.push_str(&::std::format!(
                "{}: ::core::default::Default::default(),\n",
                f.name
            ));
        } else {
            s.push_str(&::std::format!(
                "{0}: serde::Deserialize::from_value(serde::get_field({map_expr}, \"{0}\")\
                 .ok_or_else(|| serde::DeError::custom(\
                 \"missing field {0} in {type_name}\"))?)?,\n",
                f.name
            ));
        }
    }
    s
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            ::std::format!(
                "let map = v.as_map().ok_or_else(|| serde::DeError::custom(\
                 \"expected map for {name}\"))?;\n::core::result::Result::Ok(Self {{\n{}\n}})",
                named_fields_ctor(fields, "map", name)
            )
        }
        ItemKind::Struct(Fields::Tuple(1)) => {
            "::core::result::Result::Ok(Self(serde::Deserialize::from_value(v)?))".to_string()
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| ::std::format!("serde::Deserialize::from_value(&seq[{i}])?"))
                .collect();
            ::std::format!(
                "let seq = v.as_seq().ok_or_else(|| serde::DeError::custom(\
                 \"expected sequence for {name}\"))?;\n\
                 if seq.len() != {n} {{ return ::core::result::Result::Err(serde::DeError::custom(\
                 \"wrong tuple arity for {name}\")); }}\n\
                 ::core::result::Result::Ok(Self({}))",
                items.join(", ")
            )
        }
        ItemKind::Struct(Fields::Unit) => "::core::result::Result::Ok(Self)".to_string(),
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&::std::format!(
                            "\"{vn}\" => ::core::result::Result::Ok(Self::{vn}),\n"
                        ));
                    }
                    Fields::Tuple(1) => {
                        tagged_arms.push_str(&::std::format!(
                            "\"{vn}\" => ::core::result::Result::Ok(Self::{vn}(serde::Deserialize::from_value(payload)?)),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| ::std::format!("serde::Deserialize::from_value(&seq[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&::std::format!(
                            "\"{vn}\" => {{ let seq = payload.as_seq().ok_or_else(|| \
                             serde::DeError::custom(\"expected sequence for {name}::{vn}\"))?;\n\
                             if seq.len() != {n} {{ return ::core::result::Result::Err(serde::DeError::custom(\
                             \"wrong arity for {name}::{vn}\")); }}\n\
                             ::core::result::Result::Ok(Self::{vn}({})) }}\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        tagged_arms.push_str(&::std::format!(
                            "\"{vn}\" => {{ let map = payload.as_map().ok_or_else(|| \
                             serde::DeError::custom(\"expected map for {name}::{vn}\"))?;\n\
                             ::core::result::Result::Ok(Self::{vn} {{\n{}\n}}) }}\n",
                            named_fields_ctor(fields, "map", &::std::format!("{name}::{vn}"))
                        ));
                    }
                }
            }
            ::std::format!(
                "match v {{\n\
                 serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::core::result::Result::Err(serde::DeError::custom(::std::format!(\
                 \"unknown variant {{other}} of {name}\"))),\n}},\n\
                 serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = &entries[0];\nlet _ = payload;\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 other => ::core::result::Result::Err(serde::DeError::custom(::std::format!(\
                 \"unknown variant {{other}} of {name}\"))),\n}}\n}},\n\
                 _ => ::core::result::Result::Err(serde::DeError::custom(\"expected variant of {name}\")),\n}}"
            )
        }
    };
    ::std::format!(
        "{} {{\n fn from_value(v: &serde::Value) -> ::core::result::Result<Self, serde::DeError> {{\n\
         let _ = v;\n{body}\n}}\n}}",
        impl_header(item, "Deserialize")
    )
}

/// Derives the shim `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde derive: generated invalid Serialize impl")
}

/// Derives the shim `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde derive: generated invalid Deserialize impl")
}
