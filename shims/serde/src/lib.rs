//! Offline shim for `serde`.
//!
//! Instead of serde's visitor-based zero-copy architecture, this shim uses a
//! simple owned value tree ([`Value`]): `Serialize` renders a type into a
//! [`Value`] and `Deserialize` rebuilds the type from one. The companion
//! `serde_json` shim converts between [`Value`] and JSON text. The derive
//! macros (re-exported from `serde_derive`) generate these impls for structs
//! and enums, including `#[serde(skip)]` fields and externally tagged enum
//! variants, which is exactly the shape of every serializable type in this
//! workspace.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;

/// Serialization data model: a JSON-shaped owned tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (negative values).
    Int(i128),
    /// Unsigned integer.
    UInt(u128),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key-ordered map (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up a field in a map value (helper for derived code).
pub fn get_field<'a>(map: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` into the data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u128 = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u128,
                    other => return Err(DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                <$t>::try_from(n).map_err(|_| DeError::custom(
                    concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i128;
                if n >= 0 { Value::UInt(n as u128) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i128 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i128::try_from(*n).map_err(|_| {
                        DeError::custom("integer too large for signed type")
                    })?,
                    other => return Err(DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                <$t>::try_from(n).map_err(|_| DeError::custom(
                    concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    other => Err(DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::custom(format!("expected char, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|got| DeError::custom(format!("expected array of {N}, got {}", got.len())))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let seq = v.as_seq().ok_or_else(|| DeError::custom("expected tuple sequence"))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expected}, got {}", seq.len())));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple!((A: 0)(A: 0, B: 1)(A: 0, B: 1, C: 2)(A: 0, B: 1, C: 2, D: 3));

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Maps with non-string keys serialize as entry sequences; maps are
        // only used in skipped fields in this workspace, so ordering is not
        // significant.
        let mut entries: Vec<Value> = self
            .iter()
            .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
            .collect();
        entries.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Seq(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(u64::from_value(&7u64.to_value()), Ok(7));
        assert_eq!(i32::from_value(&(-3i32).to_value()), Ok(-3));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u8>::from_value(&Value::UInt(3)), Ok(Some(3)));
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()), Ok(v));
        let arr = [1.0f64, 2.0];
        assert_eq!(<[f64; 2]>::from_value(&arr.to_value()), Ok(arr));
        let pair = (1usize, true);
        assert_eq!(<(usize, bool)>::from_value(&pair.to_value()), Ok(pair));
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(bool::from_value(&Value::UInt(1)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(Vec::<u8>::from_value(&Value::Bool(true)).is_err());
    }
}
