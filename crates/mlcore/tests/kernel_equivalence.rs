//! The blocked-kernel contract: `Matrix::matmul` / `matmul_tn` / `matmul_nt`
//! (cache-blocked, register-tiled) are **bit-for-bit** equal to the naive
//! reference loops for every shape — compared with `f64::to_bits`, so even a
//! signed-zero difference would fail. Shapes range over degenerate 0/1-dim
//! cases up to sizes that straddle the `NR`/`MC` register and row tiles; a
//! dedicated case crosses the `KC`/`NC` panel boundaries.

use autolock_mlcore::{kernels, Matrix};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Matrix::random(rows, cols, 1.0, &mut rng)
}

fn assert_bits_eq(blocked: &Matrix, naive: &Matrix) {
    assert_eq!(blocked.rows(), naive.rows());
    assert_eq!(blocked.cols(), naive.cols());
    for (i, (b, n)) in blocked.data().iter().zip(naive.data()).enumerate() {
        assert_eq!(
            b.to_bits(),
            n.to_bits(),
            "element {i} diverged: blocked {b} vs naive {n}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `A·B` blocked vs naive over random shapes, including 0- and 1-dim
    /// degenerate cases (empty operands, single rows/columns).
    fn blocked_matmul_matches_naive_bitwise(
        m in 0usize..36,
        k in 0usize..36,
        n in 0usize..36,
        seed in proptest::any::<u64>(),
    ) {
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, n, seed ^ 0x9e37_79b9_7f4a_7c15);
        assert_bits_eq(&a.matmul(&b), &a.matmul_naive(&b));
    }

    /// `Aᵀ·B` blocked (packed transpose + nn kernel) vs the naive
    /// implicit-transpose loop.
    fn blocked_matmul_tn_matches_naive_bitwise(
        k in 0usize..36,
        m in 0usize..36,
        n in 0usize..36,
        seed in proptest::any::<u64>(),
    ) {
        let a = random_matrix(k, m, seed);
        let b = random_matrix(k, n, seed ^ 0x51a9_b0c3);
        assert_bits_eq(&a.matmul_tn(&b), &a.matmul_tn_naive(&b));
    }

    /// `A·Bᵀ` blocked (interleaved B panel, NR simultaneous dot products)
    /// vs the naive per-element dot product.
    fn blocked_matmul_nt_matches_naive_bitwise(
        m in 0usize..36,
        k in 0usize..36,
        n in 0usize..36,
        seed in proptest::any::<u64>(),
    ) {
        let a = random_matrix(m, k, seed);
        let b = random_matrix(n, k, seed ^ 0xabc_def);
        assert_bits_eq(&a.matmul_nt(&b), &a.matmul_nt_naive(&b));
    }
}

/// Shapes that cross every blocking boundary at once (`KC`/`NC` panels,
/// `MC` row tiles, `NR` register tiles, plus odd remainders): the
/// proptest shapes above stay small for speed, so this pins the panel
/// loops explicitly.
#[test]
fn blocked_kernels_match_naive_across_panel_boundaries() {
    let (m, k, n) = (
        kernels::MC + 7,
        kernels::KC + 13,
        kernels::NC + kernels::NR + 3,
    );
    let a = random_matrix(m, k, 1);
    let b = random_matrix(k, n, 2);
    assert_bits_eq(&a.matmul(&b), &a.matmul_naive(&b));

    let at = random_matrix(k, m, 3);
    assert_bits_eq(&at.matmul_tn(&b), &at.matmul_tn_naive(&b));

    let bt = random_matrix(n, k, 4);
    assert_bits_eq(&a.matmul_nt(&bt), &a.matmul_nt_naive(&bt));
}

/// The dropped zero-skip branch must not resurface: a left operand riddled
/// with exact zeros still produces bit-identical results (the IEEE edge the
/// old skip silently changed: `acc + (-0.0)` and `0.0 * negative`).
#[test]
fn zero_heavy_operands_stay_bitwise_equal() {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut a = Matrix::random(33, 17, 1.0, &mut rng);
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            if (r + c) % 3 != 0 {
                a.set(r, c, 0.0);
            }
        }
    }
    let b = Matrix::random(17, 21, 1.0, &mut rng);
    assert_bits_eq(&a.matmul(&b), &a.matmul_naive(&b));
    let b_tn = Matrix::random(33, 21, 1.0, &mut rng);
    assert_bits_eq(&a.matmul_tn(&b_tn), &a.matmul_tn_naive(&b_tn));
    let b_nt = Matrix::random(21, 17, 1.0, &mut rng);
    assert_bits_eq(&a.matmul_nt(&b_nt), &a.matmul_nt_naive(&b_nt));
}
