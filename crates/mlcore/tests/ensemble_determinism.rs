//! The MLP-ensemble parallelism/determinism contract, mirroring
//! `crates/gnn/tests/determinism.rs`: for a fixed master seed, a bagged
//! ensemble trained with any `threads` value — serial, any fixed count, or
//! "all cores" — has bit-for-bit identical members and predictions, because
//! per-member RNGs are seeded up front in member order and predictions are
//! reduced in fixed member order.

use autolock_mlcore::{Dataset, MlpConfig, MlpEnsemble, MlpEnsembleConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Extra thread count folded into the compared set, from the CI
/// thread-matrix leg's `AUTOLOCK_THREADS` (the multi-core runners are the
/// only machines where `n > 1` workers actually exist).
fn env_threads() -> Option<usize> {
    std::env::var("AUTOLOCK_THREADS").ok()?.parse().ok()
}

/// Two noisy Gaussian-ish blobs, linearly separable on average.
fn blob_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let label = f64::from(i % 2 == 0);
        let base = if label > 0.5 { 1.0 } else { -1.0 };
        rows.push(vec![
            base + rng.gen_range(-0.6..0.6),
            -base + rng.gen_range(-0.6..0.6),
            rng.gen_range(-1.0..1.0),
        ]);
        labels.push(label);
    }
    Dataset::from_rows(rows, labels).unwrap()
}

fn config(threads: usize) -> MlpEnsembleConfig {
    MlpEnsembleConfig {
        mlp: MlpConfig {
            input_dim: 3,
            hidden: vec![6, 4],
            epochs: 12,
            ..Default::default()
        },
        members: 6,
        threads,
    }
}

fn train_with_threads(threads: usize, data: &Dataset) -> MlpEnsemble {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    MlpEnsemble::train(config(threads), data, &mut rng)
}

/// The headline guarantee: any thread count (including "all cores") vs
/// serial — identical trained members and identical predictions, compared
/// with exact equality, no tolerance.
#[test]
fn training_is_bit_identical_across_thread_counts() {
    let data = blob_dataset(48, 7);
    let probes: Vec<Vec<f64>> = (0..10)
        .map(|i| {
            let mut rng = ChaCha8Rng::seed_from_u64(500 + i);
            (0..3).map(|_| rng.gen_range(-1.5..1.5)).collect()
        })
        .collect();
    let serial = train_with_threads(1, &data);
    let serial_scores: Vec<u64> = probes.iter().map(|p| serial.predict(p).to_bits()).collect();
    for threads in [2, 3, 4, 0].into_iter().chain(env_threads()) {
        let parallel = train_with_threads(threads, &data);
        assert_eq!(
            parallel.members(),
            serial.members(),
            "trained members diverged at threads = {threads}"
        );
        let scores: Vec<u64> = probes
            .iter()
            .map(|p| parallel.predict(p).to_bits())
            .collect();
        assert_eq!(
            scores, serial_scores,
            "predictions diverged at threads = {threads}"
        );
    }
}

/// Parallel batch scoring must equal the serial per-row prediction loop
/// exactly, for the same trained ensemble.
#[test]
fn predict_batch_matches_serial_predictions_exactly() {
    let data = blob_dataset(32, 3);
    let ensemble = train_with_threads(4, &data);
    let rows: Vec<Vec<f64>> = (0..data.len())
        .map(|i| data.features_of(i).to_vec())
        .collect();
    let serial: Vec<f64> = rows.iter().map(|r| ensemble.predict(r)).collect();
    assert_eq!(ensemble.predict_batch(&rows), serial);
    assert!(ensemble.predict_batch(&[]).is_empty());
}

/// The same master seed reproduces the same ensemble; a different seed
/// produces a different one (the seeds really reach the members).
#[test]
fn master_seed_controls_the_ensemble() {
    let data = blob_dataset(32, 5);
    let run = |seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        MlpEnsemble::train(config(1), &data, &mut rng)
    };
    assert_eq!(run(11).members(), run(11).members());
    assert_ne!(run(11).members(), run(12).members());
}
