//! Property-based tests for the ML substrate.

use autolock_mlcore::metrics::{roc_auc, BinaryMetrics};
use autolock_mlcore::{Dataset, LogisticConfig, LogisticRegression, Matrix};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn predictions_and_labels() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    proptest::collection::vec((0.0f64..1.0, proptest::bool::ANY), 1..60).prop_map(|pairs| {
        let (p, l): (Vec<f64>, Vec<bool>) = pairs.into_iter().unzip();
        (p, l.into_iter().map(f64::from).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// All confusion-matrix derived metrics stay in [0, 1] and the counts add
    /// up to the number of examples.
    #[test]
    fn metrics_are_bounded_and_consistent((preds, labels) in predictions_and_labels()) {
        let m = BinaryMetrics::from_predictions(&preds, &labels);
        prop_assert_eq!(m.total(), preds.len());
        for value in [m.accuracy(), m.precision(), m.recall(), m.f1()] {
            prop_assert!((0.0..=1.0).contains(&value), "metric out of range: {value}");
        }
        let auc = roc_auc(&preds, &labels);
        prop_assert!((0.0..=1.0).contains(&auc));
    }

    /// ROC-AUC is invariant under strictly monotone transformations of the
    /// prediction scores.
    #[test]
    fn auc_is_rank_invariant((preds, labels) in predictions_and_labels()) {
        let auc = roc_auc(&preds, &labels);
        let transformed: Vec<f64> = preds.iter().map(|p| (p * 3.0 + 0.1).tanh()).collect();
        let auc_t = roc_auc(&transformed, &labels);
        prop_assert!((auc - auc_t).abs() < 1e-9, "{auc} vs {auc_t}");
    }

    /// Inverting predictions mirrors the AUC around 0.5.
    #[test]
    fn auc_inversion_symmetry((preds, labels) in predictions_and_labels()) {
        let auc = roc_auc(&preds, &labels);
        let inverted: Vec<f64> = preds.iter().map(|p| 1.0 - p).collect();
        let auc_inv = roc_auc(&inverted, &labels);
        prop_assert!((auc + auc_inv - 1.0).abs() < 1e-9);
    }

    /// Dataset splitting partitions the examples: sizes add up and the split
    /// respects the requested fraction within one example.
    #[test]
    fn dataset_split_partitions(
        n in 2usize..80,
        dim in 1usize..6,
        frac in 0.1f64..0.9,
        seed in 0u64..1000,
    ) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| (0..dim).map(|j| (i * j) as f64).collect()).collect();
        let labels: Vec<f64> = (0..n).map(|i| f64::from(i % 2 == 0)).collect();
        let data = Dataset::from_rows(rows, labels).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (train, val) = data.split(frac, &mut rng);
        prop_assert_eq!(train.len() + val.len(), n);
        prop_assert!(!train.is_empty());
        prop_assert!(!val.is_empty());
        prop_assert_eq!(train.dim(), dim);
        prop_assert_eq!(val.dim(), dim);
    }

    /// Standardizing with the dataset's own statistics yields (near-)zero mean
    /// per feature, and standardize_row agrees with the bulk path.
    #[test]
    fn standardization_consistency(
        n in 2usize..40,
        dim in 1usize..5,
        scale in 1.0f64..100.0,
    ) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..dim).map(|j| scale * ((i + j * 3) as f64).sin()).collect())
            .collect();
        let labels = vec![0.0; n];
        let data = Dataset::from_rows(rows.clone(), labels).unwrap();
        let (mean, std) = data.feature_stats();
        let standardized = data.standardized(&mean, &std);
        let (mean2, _) = standardized.feature_stats();
        for m in mean2 {
            prop_assert!(m.abs() < 1e-6);
        }
        for (i, row) in rows.iter().enumerate() {
            let single = Dataset::standardize_row(row, &mean, &std);
            for (a, b) in single.iter().zip(standardized.features_of(i)) {
                prop_assert!((a - b).abs() < 1e-12);
            }
        }
    }

    /// Matrix matvec distributes over vector addition.
    #[test]
    fn matvec_is_linear(
        rows in 1usize..6,
        cols in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let m = Matrix::random(rows, cols, 2.0, &mut rng);
        let x = Matrix::random(1, cols, 2.0, &mut rng);
        let y = Matrix::random(1, cols, 2.0, &mut rng);
        let sum: Vec<f64> = x.row(0).iter().zip(y.row(0)).map(|(a, b)| a + b).collect();
        let lhs = m.matvec(&sum);
        let rhs: Vec<f64> = m
            .matvec(x.row(0))
            .iter()
            .zip(m.matvec(y.row(0)))
            .map(|(a, b)| a + b)
            .collect();
        for (a, b) in lhs.iter().zip(&rhs) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}

#[test]
fn logistic_regression_separates_shifted_gaussians() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    use rand::Rng;
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for _ in 0..300 {
        let class = rng.gen_bool(0.5);
        let center = if class { 1.5 } else { -1.5 };
        rows.push(vec![
            center + rng.gen_range(-1.0..1.0),
            center + rng.gen_range(-1.0..1.0),
        ]);
        labels.push(f64::from(class));
    }
    let data = Dataset::from_rows(rows, labels).unwrap();
    let mut model = LogisticRegression::new(LogisticConfig {
        input_dim: 2,
        epochs: 120,
        learning_rate: 0.3,
        ..Default::default()
    });
    model.train(&data, &mut rng);
    let preds: Vec<f64> = (0..data.len())
        .map(|i| model.predict(data.features_of(i)))
        .collect();
    let metrics = BinaryMetrics::from_predictions(&preds, data.labels());
    assert!(metrics.accuracy() > 0.9, "accuracy {}", metrics.accuracy());
    assert!(roc_auc(&preds, data.labels()) > 0.95);
}
