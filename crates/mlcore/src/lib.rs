//! Minimal machine-learning substrate.
//!
//! The published MuxLink attack trains a deep graph neural network with
//! PyTorch. This repository re-creates the attack's decision problem (score
//! candidate links from features of their enclosing subgraphs) with a
//! self-contained, dependency-free learner:
//!
//! * [`Matrix`] — small dense row-major matrix with the handful of BLAS-like
//!   operations the learners need,
//! * [`Dataset`] — feature matrix + binary labels, with train/validation
//!   splitting and feature standardization,
//! * [`LogisticRegression`] — linear baseline classifier,
//! * [`Mlp`] — multi-layer perceptron (ReLU hidden layers, sigmoid output)
//!   trained with mini-batch Adam,
//! * [`MlpEnsemble`] — bagged MLP ensemble, trained and scored in parallel
//!   with bit-for-bit thread-count determinism (see `README.md`),
//! * [`kernels`] — cache-blocked, register-tiled dense matmul kernels behind
//!   [`Matrix::matmul`] and friends, bit-identical to the naive loops,
//! * [`metrics`] — binary-classification metrics (accuracy, precision,
//!   recall, F1, ROC-AUC).
//!
//! ```
//! use autolock_mlcore::{Dataset, Mlp, MlpConfig};
//! use rand::SeedableRng;
//!
//! // Learn XOR of two inputs.
//! let features = vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
//! let labels = vec![0.0, 1.0, 1.0, 0.0];
//! let data = Dataset::from_rows(features, labels).unwrap();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let mut mlp = Mlp::new(MlpConfig { input_dim: 2, hidden: vec![8, 8], ..Default::default() }, &mut rng);
//! mlp.train(&data, &mut rng);
//! assert!(mlp.predict(&[1.0, 0.0]) > 0.5);
//! assert!(mlp.predict(&[1.0, 1.0]) < 0.5);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod dataset;
mod ensemble;
pub mod kernels;
mod logistic;
mod matrix;
pub mod metrics;
mod mlp;
pub mod optim;
pub mod parallel;
pub mod scratch;

pub use dataset::Dataset;
pub use ensemble::{MlpEnsemble, MlpEnsembleConfig};
pub use logistic::{LogisticConfig, LogisticRegression};
pub use matrix::Matrix;
pub use mlp::{Mlp, MlpConfig};
pub use optim::{AdamParams, AdamState, AdamVecState};

/// Errors produced by the ML substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// Feature rows have inconsistent lengths or do not match label count.
    ShapeMismatch {
        /// Explanation of the mismatch.
        message: String,
    },
    /// The dataset is empty.
    EmptyDataset,
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::ShapeMismatch { message } => write!(f, "shape mismatch: {message}"),
            MlError::EmptyDataset => write!(f, "dataset is empty"),
        }
    }
}

impl std::error::Error for MlError {}

/// Numerically stable sigmoid.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(50.0) > 0.999);
        assert!(sigmoid(-50.0) < 0.001);
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
        // Symmetry: sigmoid(-x) = 1 - sigmoid(x)
        for x in [-3.0, -1.0, 0.5, 2.0] {
            assert!((sigmoid(-x) - (1.0 - sigmoid(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn error_display() {
        let e = MlError::ShapeMismatch {
            message: "row 3 has 5 features, expected 4".into(),
        };
        assert!(e.to_string().contains("row 3"));
        assert!(MlError::EmptyDataset.to_string().contains("empty"));
    }
}
