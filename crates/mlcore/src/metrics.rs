//! Binary-classification metrics.

use serde::{Deserialize, Serialize};

/// Confusion-matrix based summary of a binary classifier's predictions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinaryMetrics {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl BinaryMetrics {
    /// Computes the confusion matrix of `predictions` (probabilities) against
    /// 0/1 `labels` at the 0.5 threshold.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_predictions(predictions: &[f64], labels: &[f64]) -> Self {
        Self::from_predictions_with_threshold(predictions, labels, 0.5)
    }

    /// Computes the confusion matrix at an explicit threshold.
    pub fn from_predictions_with_threshold(
        predictions: &[f64],
        labels: &[f64],
        threshold: f64,
    ) -> Self {
        assert_eq!(predictions.len(), labels.len(), "length mismatch");
        let mut m = BinaryMetrics {
            tp: 0,
            fp: 0,
            tn: 0,
            fn_: 0,
        };
        for (&p, &y) in predictions.iter().zip(labels) {
            let pred_pos = p >= threshold;
            let actual_pos = y >= 0.5;
            match (pred_pos, actual_pos) {
                (true, true) => m.tp += 1,
                (true, false) => m.fp += 1,
                (false, false) => m.tn += 1,
                (false, true) => m.fn_ += 1,
            }
        }
        m
    }

    /// Total number of examples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Accuracy = (TP + TN) / total.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// Precision = TP / (TP + FP); 0 when no positive predictions were made.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// Recall = TP / (TP + FN); 0 when there are no positive labels.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// F1 score (harmonic mean of precision and recall).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Area under the ROC curve computed by the rank-sum (Mann–Whitney) method.
///
/// Returns 0.5 for degenerate inputs (all labels identical).
pub fn roc_auc(predictions: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    let mut pairs: Vec<(f64, bool)> = predictions
        .iter()
        .zip(labels)
        .map(|(&p, &y)| (p, y >= 0.5))
        .collect();
    let n_pos = pairs.iter().filter(|(_, y)| *y).count();
    let n_neg = pairs.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite predictions"));
    // Assign average ranks to ties.
    let mut ranks = vec![0.0; pairs.len()];
    let mut i = 0;
    while i < pairs.len() {
        let mut j = i;
        while j + 1 < pairs.len() && pairs[j + 1].0 == pairs[i].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = pairs
        .iter()
        .zip(&ranks)
        .filter(|((_, y), _)| *y)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos * n_neg) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrix_counts() {
        let preds = [0.9, 0.8, 0.2, 0.4, 0.6];
        let labels = [1.0, 0.0, 0.0, 1.0, 1.0];
        let m = BinaryMetrics::from_predictions(&preds, &labels);
        assert_eq!(m.tp, 2);
        assert_eq!(m.fp, 1);
        assert_eq!(m.tn, 1);
        assert_eq!(m.fn_, 1);
        assert_eq!(m.total(), 5);
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!(m.f1() > 0.6);
    }

    #[test]
    fn perfect_and_worst_predictions() {
        let labels = [1.0, 0.0, 1.0, 0.0];
        let perfect = BinaryMetrics::from_predictions(&[0.9, 0.1, 0.8, 0.2], &labels);
        assert_eq!(perfect.accuracy(), 1.0);
        assert_eq!(perfect.f1(), 1.0);
        let worst = BinaryMetrics::from_predictions(&[0.1, 0.9, 0.2, 0.8], &labels);
        assert_eq!(worst.accuracy(), 0.0);
        assert_eq!(worst.f1(), 0.0);
    }

    #[test]
    fn degenerate_cases_do_not_divide_by_zero() {
        let m = BinaryMetrics::from_predictions(&[], &[]);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn auc_perfect_random_and_inverted() {
        let labels = [1.0, 1.0, 0.0, 0.0];
        assert!((roc_auc(&[0.9, 0.8, 0.2, 0.1], &labels) - 1.0).abs() < 1e-12);
        assert!((roc_auc(&[0.1, 0.2, 0.8, 0.9], &labels) - 0.0).abs() < 1e-12);
        // All equal predictions → ties → 0.5.
        assert!((roc_auc(&[0.5, 0.5, 0.5, 0.5], &labels) - 0.5).abs() < 1e-12);
        // Single-class labels → 0.5 by convention.
        assert_eq!(roc_auc(&[0.3, 0.4], &[1.0, 1.0]), 0.5);
    }

    #[test]
    fn threshold_variant() {
        let preds = [0.4, 0.3];
        let labels = [1.0, 0.0];
        let strict = BinaryMetrics::from_predictions_with_threshold(&preds, &labels, 0.35);
        assert_eq!(strict.tp, 1);
        assert_eq!(strict.tn, 1);
    }
}
