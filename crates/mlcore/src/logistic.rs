//! Logistic-regression classifier.

use crate::{sigmoid, Dataset};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of [`LogisticRegression`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticConfig {
    /// Number of input features.
    pub input_dim: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        LogisticConfig {
            input_dim: 1,
            learning_rate: 0.05,
            l2: 1e-4,
            epochs: 80,
            batch_size: 32,
        }
    }
}

/// Binary logistic-regression model trained with mini-batch SGD.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    config: LogisticConfig,
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticRegression {
    /// Creates an untrained model with zero weights.
    pub fn new(config: LogisticConfig) -> Self {
        let weights = vec![0.0; config.input_dim];
        LogisticRegression {
            config,
            weights,
            bias: 0.0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LogisticConfig {
        &self.config
    }

    /// The learned weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Predicted probability that `features` belongs to the positive class.
    ///
    /// # Panics
    ///
    /// Panics if the feature length does not match the configured dimension.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.weights.len(),
            "feature dimension mismatch"
        );
        let z: f64 = self
            .weights
            .iter()
            .zip(features)
            .map(|(w, x)| w * x)
            .sum::<f64>()
            + self.bias;
        sigmoid(z)
    }

    /// Trains on `data`, returning the mean training loss of the final epoch.
    pub fn train<R: Rng + ?Sized>(&mut self, data: &Dataset, rng: &mut R) -> f64 {
        assert_eq!(
            data.dim(),
            self.config.input_dim,
            "dataset dimension mismatch"
        );
        let n = data.len();
        let mut indices: Vec<usize> = (0..n).collect();
        let mut last_loss = f64::INFINITY;
        for _ in 0..self.config.epochs {
            indices.shuffle(rng);
            let mut epoch_loss = 0.0;
            for batch in indices.chunks(self.config.batch_size.max(1)) {
                let mut grad_w = vec![0.0; self.weights.len()];
                let mut grad_b = 0.0;
                for &i in batch {
                    let x = data.features_of(i);
                    let y = data.label_of(i);
                    let p = self.predict(x);
                    let err = p - y;
                    for (g, xv) in grad_w.iter_mut().zip(x) {
                        *g += err * xv;
                    }
                    grad_b += err;
                    epoch_loss += binary_cross_entropy(p, y);
                }
                let scale = self.config.learning_rate / batch.len() as f64;
                for (w, g) in self.weights.iter_mut().zip(&grad_w) {
                    *w -= scale * (g + self.config.l2 * *w);
                }
                self.bias -= scale * grad_b;
            }
            last_loss = epoch_loss / n as f64;
        }
        last_loss
    }
}

/// Binary cross-entropy of a prediction `p` against a 0/1 label `y`, clamped
/// for numerical stability.
pub fn binary_cross_entropy(p: f64, y: f64) -> f64 {
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn learns_linearly_separable_data() {
        // Positive iff x0 + x1 > 1.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..200 {
            let x0: f64 = rng.gen_range(0.0..1.0);
            let x1: f64 = rng.gen_range(0.0..1.0);
            rows.push(vec![x0, x1]);
            labels.push(if x0 + x1 > 1.0 { 1.0 } else { 0.0 });
        }
        let data = Dataset::from_rows(rows, labels).unwrap();
        let mut model = LogisticRegression::new(LogisticConfig {
            input_dim: 2,
            epochs: 200,
            learning_rate: 0.5,
            ..Default::default()
        });
        let loss = model.train(&data, &mut rng);
        assert!(loss < 0.3, "final loss too high: {loss}");
        assert!(model.predict(&[0.9, 0.9]) > 0.7);
        assert!(model.predict(&[0.1, 0.1]) < 0.3);
    }

    #[test]
    fn untrained_model_predicts_half() {
        let model = LogisticRegression::new(LogisticConfig {
            input_dim: 3,
            ..Default::default()
        });
        assert!((model.predict(&[1.0, -2.0, 0.5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_is_low_for_confident_correct_predictions() {
        assert!(binary_cross_entropy(0.99, 1.0) < 0.05);
        assert!(binary_cross_entropy(0.01, 0.0) < 0.05);
        assert!(binary_cross_entropy(0.01, 1.0) > 2.0);
        assert!(binary_cross_entropy(1.0, 0.0).is_finite());
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn wrong_feature_length_panics() {
        let model = LogisticRegression::new(LogisticConfig {
            input_dim: 2,
            ..Default::default()
        });
        model.predict(&[1.0]);
    }
}
