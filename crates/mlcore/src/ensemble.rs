//! Bagged MLP ensembles with deterministic rayon-parallel training.
//!
//! The MuxLink MLP backend averages a handful of independently initialized
//! MLPs to drain the variance a single small network shows on a few hundred
//! training links. Members are independent by construction, which makes the
//! ensemble the natural parallel fan-out *above* the dense kernels — but the
//! seed implementation threaded one RNG through member after member, which
//! serialized training. This module decouples the members:
//!
//! 1. one `u64` seed per member is drawn **serially, in member order** from
//!    the caller's RNG — the only coupling to the caller's stream;
//! 2. each member derives its own `ChaCha8Rng` from its seed and trains
//!    (bootstrap resample, init, epoch shuffling) entirely from it;
//! 3. member training fans out across a rayon pool sized by
//!    [`MlpEnsembleConfig::threads`], order-preserving;
//! 4. predictions are reduced **in fixed member order** (mean), and batch
//!    scoring fans rows — never members — so the floating-point reduction
//!    order is independent of thread scheduling.
//!
//! Consequently the trained ensemble and every score are **bit-for-bit
//! identical for every `threads` value** — the same contract
//! `crates/gnn/README.md` documents for the DGCNN, enforced here by
//! `tests/ensemble_determinism.rs`.

use crate::parallel::pooled_map;
use crate::{Dataset, Mlp, MlpConfig};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of an [`MlpEnsemble`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpEnsembleConfig {
    /// Per-member MLP hyper-parameters.
    pub mlp: MlpConfig,
    /// Number of members; values below 1 are clamped to 1. Member 0 trains
    /// on the full dataset, every later member on a bootstrap resample
    /// (bagging).
    pub members: usize,
    /// Worker threads for member training and batch scoring: `0` = all
    /// available cores, `1` = serial, `n` = exactly `n`. Purely a wall-clock
    /// knob — results are bit-for-bit identical for every value.
    pub threads: usize,
}

impl Default for MlpEnsembleConfig {
    fn default() -> Self {
        MlpEnsembleConfig {
            mlp: MlpConfig::default(),
            members: 5,
            threads: 0,
        }
    }
}

/// A bagged ensemble of [`Mlp`]s; scores are the mean member prediction,
/// always reduced in member order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpEnsemble {
    members: Vec<Mlp>,
    threads: usize,
}

impl MlpEnsemble {
    /// Trains the ensemble on `data`. All randomness derives from per-member
    /// seeds drawn from `rng` up front (in member order), so the result does
    /// not depend on `threads`.
    pub fn train<R: RngCore + ?Sized>(
        config: MlpEnsembleConfig,
        data: &Dataset,
        rng: &mut R,
    ) -> Self {
        let count = config.members.max(1);
        let seeds: Vec<(usize, u64)> = (0..count).map(|i| (i, rng.next_u64())).collect();
        let mlp_config = &config.mlp;
        let train_one = |&(member, seed): &(usize, u64)| -> Mlp {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            // Bagging: each member after the first trains on a bootstrap
            // resample, so the ensemble averages out data-sampling noise in
            // addition to initialization noise.
            let train = if member == 0 {
                data.clone()
            } else {
                data.bootstrap_sample(&mut rng)
            };
            let mut mlp = Mlp::new(mlp_config.clone(), &mut rng);
            mlp.train(&train, &mut rng);
            mlp
        };
        MlpEnsemble {
            members: pooled_map(config.threads, &seeds, train_one),
            threads: config.threads,
        }
    }

    /// The trained members, in training order.
    pub fn members(&self) -> &[Mlp] {
        &self.members
    }

    /// Mean member probability that `features` is a positive example,
    /// reduced in member order.
    ///
    /// # Panics
    ///
    /// Panics if the feature length does not match the members' `input_dim`.
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.members
            .iter()
            .map(|m| m.predict(features))
            .sum::<f64>()
            / self.members.len() as f64
    }

    /// Scores a batch of feature rows, fanning rows (never members) across
    /// the configured thread pool; `out[i]` answers `rows[i]` and equals the
    /// serial [`MlpEnsemble::predict`] loop exactly.
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        pooled_map(self.threads, rows, |r| self.predict(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn blob_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = f64::from(i % 2 == 0);
            let base = if label > 0.5 { 1.0 } else { -1.0 };
            rows.push(vec![
                base + rng.gen_range(-0.4..0.4),
                -base + rng.gen_range(-0.4..0.4),
            ]);
            labels.push(label);
        }
        Dataset::from_rows(rows, labels).unwrap()
    }

    fn small_config(threads: usize) -> MlpEnsembleConfig {
        MlpEnsembleConfig {
            mlp: MlpConfig {
                input_dim: 2,
                hidden: vec![4],
                epochs: 8,
                ..Default::default()
            },
            members: 4,
            threads,
        }
    }

    #[test]
    fn ensemble_learns_separable_blobs() {
        let data = blob_dataset(64, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ensemble = MlpEnsemble::train(small_config(1), &data, &mut rng);
        assert_eq!(ensemble.members().len(), 4);
        assert!(ensemble.predict(&[1.0, -1.0]) > 0.5);
        assert!(ensemble.predict(&[-1.0, 1.0]) < 0.5);
    }

    #[test]
    fn members_clamped_to_at_least_one() {
        let data = blob_dataset(16, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut config = small_config(1);
        config.members = 0;
        let ensemble = MlpEnsemble::train(config, &data, &mut rng);
        assert_eq!(ensemble.members().len(), 1);
        assert!(ensemble.predict(&[0.0, 0.0]).is_finite());
    }

    #[test]
    fn bagged_members_differ() {
        let data = blob_dataset(48, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let ensemble = MlpEnsemble::train(small_config(1), &data, &mut rng);
        // Different seeds + bootstrap resamples must yield distinct members;
        // identical members would mean the bagging plumbing collapsed.
        assert_ne!(ensemble.members()[0], ensemble.members()[1]);
    }
}
