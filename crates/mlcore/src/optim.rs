//! Reusable first-order optimizers.
//!
//! [`Mlp`](crate::Mlp) keeps its historical inline Adam update (so its
//! training trajectories stay byte-stable); new learners — in particular the
//! DGCNN in `autolock_gnn` — share this implementation instead of re-rolling
//! the moment bookkeeping per parameter tensor.

use crate::Matrix;
use serde::{Deserialize, Serialize};

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamParams {
    /// Step size.
    pub learning_rate: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Denominator fuzz.
    pub epsilon: f64,
    /// L2 regularization strength, folded into the gradient before the
    /// moment updates (classic coupled L2, not AdamW-style decoupled decay).
    pub l2: f64,
}

impl Default for AdamParams {
    fn default() -> Self {
        AdamParams {
            learning_rate: 0.01,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            l2: 0.0,
        }
    }
}

/// Adam state for one matrix-shaped parameter tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdamState {
    m: Matrix,
    v: Matrix,
    t: u64,
}

impl AdamState {
    /// Fresh state for a `rows x cols` parameter.
    pub fn new(rows: usize, cols: usize) -> Self {
        AdamState {
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
            t: 0,
        }
    }

    /// Applies one Adam update to `params` given the loss gradient `grad`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes of `params`, `grad` and the state disagree.
    pub fn step(&mut self, params: &mut Matrix, grad: &Matrix, hp: &AdamParams) {
        assert_eq!(params.rows(), self.m.rows(), "Adam state shape mismatch");
        assert_eq!(params.cols(), self.m.cols(), "Adam state shape mismatch");
        assert_eq!(params.rows(), grad.rows(), "Adam gradient shape mismatch");
        assert_eq!(params.cols(), grad.cols(), "Adam gradient shape mismatch");
        self.t += 1;
        // One pass over the flat row-major storage: params, grad and both
        // moment tensors share the same layout, so the update is four
        // streamed arrays instead of per-element (row, col) indexing.
        adam_step_flat(
            params.data_mut(),
            grad.data(),
            self.m.data_mut(),
            self.v.data_mut(),
            self.t,
            hp,
        );
    }
}

/// Adam state for a vector-shaped parameter (e.g. a bias).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdamVecState {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl AdamVecState {
    /// Fresh state for a length-`n` parameter.
    pub fn new(n: usize) -> Self {
        AdamVecState {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// Applies one Adam update to `params` given the loss gradient `grad`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths disagree.
    pub fn step(&mut self, params: &mut [f64], grad: &[f64], hp: &AdamParams) {
        assert_eq!(params.len(), self.m.len(), "Adam state length mismatch");
        assert_eq!(params.len(), grad.len(), "Adam gradient length mismatch");
        self.t += 1;
        adam_step_flat(params, grad, &mut self.m, &mut self.v, self.t, hp);
    }
}

/// The shared flat-slice Adam kernel behind [`AdamState`] and
/// [`AdamVecState`]: identical arithmetic per element, applied in storage
/// order (which keeps updates deterministic and cache-friendly for
/// row-major tensors).
fn adam_step_flat(
    params: &mut [f64],
    grad: &[f64],
    m: &mut [f64],
    v: &mut [f64],
    t: u64,
    hp: &AdamParams,
) {
    let t = t as f64;
    let bc1 = 1.0 - hp.beta1.powf(t);
    let bc2 = 1.0 - hp.beta2.powf(t);
    for (((p, &g0), m), v) in params.iter_mut().zip(grad).zip(m).zip(v) {
        let g = g0 + hp.l2 * *p;
        *m = hp.beta1 * *m + (1.0 - hp.beta1) * g;
        *v = hp.beta2 * *v + (1.0 - hp.beta2) * g * g;
        let step = hp.learning_rate * (*m / bc1) / ((*v / bc2).sqrt() + hp.epsilon);
        *p -= step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_a_quadratic() {
        // minimize f(x) = (x - 3)^2 elementwise
        let mut x = Matrix::zeros(2, 2);
        let mut state = AdamState::new(2, 2);
        let hp = AdamParams {
            learning_rate: 0.1,
            ..Default::default()
        };
        for _ in 0..500 {
            let grad = x.map(|v| 2.0 * (v - 3.0));
            state.step(&mut x, &grad, &hp);
        }
        for r in 0..2 {
            for c in 0..2 {
                assert!((x.get(r, c) - 3.0).abs() < 1e-3, "{}", x.get(r, c));
            }
        }
    }

    #[test]
    fn adam_vec_minimizes_a_quadratic() {
        let mut x = vec![0.0; 3];
        let mut state = AdamVecState::new(3);
        let hp = AdamParams {
            learning_rate: 0.1,
            ..Default::default()
        };
        for _ in 0..500 {
            let grad: Vec<f64> = x.iter().map(|&v| 2.0 * (v + 1.0)).collect();
            state.step(&mut x, &grad, &hp);
        }
        for v in x {
            assert!((v + 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn l2_pulls_parameters_toward_zero() {
        let mut x = Matrix::from_vec(1, 1, vec![5.0]);
        let mut state = AdamState::new(1, 1);
        let hp = AdamParams {
            learning_rate: 0.05,
            l2: 1.0,
            ..Default::default()
        };
        for _ in 0..400 {
            let grad = Matrix::zeros(1, 1); // no data gradient, only decay
            state.step(&mut x, &grad, &hp);
        }
        assert!(x.get(0, 0).abs() < 0.5);
    }
}
