//! Cache-blocked, register-tiled dense matmul kernels.
//!
//! Every learned model in this workspace (the bagged-MLP MuxLink backend,
//! the DGCNN conv/dense layers, the logistic probe) funnels through the
//! three `Matrix::matmul*` products, so this module is the shared hot core.
//! It implements the classic GEBP decomposition: the B operand is packed
//! into contiguous panels, the output is swept in m/n tiles, and an
//! unrolled `NR`-wide column block accumulates in registers so the compiler
//! auto-vectorizes the inner loop. No explicit SIMD intrinsics are used —
//! the fixed-size `[f64; NR]` accumulator arrays are enough for LLVM to emit
//! packed adds/muls on any target.
//!
//! # Bit-for-bit contract
//!
//! Blocked results are **bit-for-bit identical** to the naive reference
//! loops (`*_naive` below), enforced by the proptests in
//! `tests/kernel_equivalence.rs`. The invariant that makes this possible:
//! for every output element, partial products are accumulated **in strictly
//! increasing k order, into a single accumulator, starting from `0.0`** —
//! exactly the order the naive triple loop uses. Blocking is therefore only
//! allowed along dimensions that do not reorder a single element's
//! accumulation chain:
//!
//! * m/n tiling picks *which* output elements a pass computes — always safe;
//! * k panels are processed in increasing order and the micro-kernel resumes
//!   from the partial value already stored in the output, so the chain
//!   `((0 + a₀b₀) + a₁b₁) + …` is preserved term for term;
//! * packing only copies operands; it performs no arithmetic;
//! * Rust never contracts `mul` + `add` into an FMA without an explicit
//!   `mul_add`, so the rounding of every term is unchanged.
//!
//! The old naive loops carried an `if a == 0.0 { continue; }` zero-skip; it
//! cost a branch per inner-loop element in the (overwhelmingly common) dense
//! case and is dropped here. Panel-level sparsity skipping was measured and
//! rejected: the operands these kernels see (He-initialised weights,
//! standardized features, conv aggregates) are dense, and a skipped
//! `acc += 0.0 * b` is not even a bitwise no-op in IEEE 754 (`-0.0 + 0.0`
//! flips sign; `0.0 * inf` is NaN), so skipping would break the contract.
//!
//! # Tuning
//!
//! Block sizes live in the constants below; see `crates/mlcore/README.md`
//! for how they map onto the cache hierarchy and how to retune them. They
//! only affect wall clock, never results.

/// Output columns each register micro-kernel accumulates at once. Eight
/// `f64` accumulators span two AVX2 (or four SSE2) vector registers and
/// leave room for the broadcast `a` value; the compiler unrolls the
/// fixed-size loops over `[f64; NR]` completely.
pub const NR: usize = 8;

/// Depth (shared-k extent) of one packed B panel: `KC × NR` panel columns
/// must stay L1-resident while a row of A streams against them.
pub const KC: usize = 128;

/// Width (output columns) of one packed B panel: a `KC × NC` panel is
/// `128 KiB` and sits in L2 while every row of A is swept over it.
pub const NC: usize = 128;

/// Rows of A swept per tile before moving to the next panel; bounds the
/// working set of partially-accumulated output rows.
pub const MC: usize = 64;

/// Rows of A each register micro-kernel accumulates simultaneously. An
/// `MR × NR` accumulator block amortizes every packed-panel load over `MR`
/// rows; `4 × 8` doubles are 16 vector registers of accumulators on AVX2,
/// leaving the rest for the broadcast A column and the B panel row.
pub const MR: usize = 4;

#[inline]
fn check_dims(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &[f64]) {
    debug_assert_eq!(a.len(), m * k, "A must be m*k");
    debug_assert_eq!(b.len(), k * n, "B must be k*n");
    debug_assert_eq!(out.len(), m * n, "out must be m*n");
}

/// Blocked `out += A · B` for row-major `A (m×k)`, `B (k×n)`, `out (m×n)`.
///
/// `out` must be zeroed (or hold a partial sum over a k-prefix) on entry;
/// [`crate::Matrix::matmul`] always passes a fresh zero matrix.
pub fn matmul_nn(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    check_dims(m, k, n, a, b, out);
    gebp(
        m,
        k,
        n,
        #[inline(always)]
        |r, kk| a[r * k + kk],
        b,
        out,
    );
}

/// The shared GEBP driver behind [`matmul_nn`] and [`matmul_tn`]:
/// `out += A' · B` where `a_at(r, kk)` reads the logical (possibly
/// transposed) left operand `A'[r][kk]`. The accessor is only used while
/// packing the `MR`-row A block (a pure copy), so a strided accessor costs
/// one gather per packed element, never per multiply.
#[inline]
fn gebp(
    m: usize,
    k: usize,
    n: usize,
    a_at: impl Fn(usize, usize) -> f64,
    b: &[f64],
    out: &mut [f64],
) {
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let mut panel = vec![0.0f64; KC.min(k) * NC.min(n)];
    let mut apack = vec![0.0f64; KC.min(k) * MR];
    for j0 in (0..n).step_by(NC) {
        let jn = NC.min(n - j0);
        // k panels in increasing order: the micro-kernel resumes from the
        // partial sums already in `out`, so each element's accumulation
        // chain stays in global k order.
        for k0 in (0..k).step_by(KC) {
            let kn = KC.min(k - k0);
            // Pack the B panel as NR-wide column strips, each strip a
            // contiguous kn×w block (`panel[js·kn + kk·w + t] =
            // B[k0+kk][j0+js+t]`): the micro-kernel then streams the panel
            // strictly sequentially instead of striding by `jn`.
            let mut js = 0;
            while js < jn {
                let w = NR.min(jn - js);
                let strip = &mut panel[js * kn..(js + w) * kn];
                for kk in 0..kn {
                    let src = (k0 + kk) * n + j0 + js;
                    strip[kk * w..kk * w + w].copy_from_slice(&b[src..src + w]);
                }
                js += w;
            }
            let panel = &panel[..kn * jn];
            for r0 in (0..m).step_by(MC) {
                let r1 = (r0 + MC).min(m);
                let mut r = r0;
                while r + MR <= r1 {
                    // Pack the MR-row A block interleaved
                    // (`apack[kk·MR + i] = A'[r+i][k0+kk]`) so the micro-
                    // kernel reads one contiguous MR-vector per k step.
                    for kk in 0..kn {
                        for i in 0..MR {
                            apack[kk * MR + i] = a_at(r + i, k0 + kk);
                        }
                    }
                    accumulate_row_block(&apack[..kn * MR], panel, kn, jn, r, n, j0, out);
                    r += MR;
                }
                while r < r1 {
                    for (kk, slot) in apack[..kn].iter_mut().enumerate() {
                        *slot = a_at(r, k0 + kk);
                    }
                    let out_row = &mut out[r * n + j0..r * n + j0 + jn];
                    accumulate_row(&apack[..kn], panel, kn, jn, out_row);
                    r += 1;
                }
            }
        }
    }
}

/// The `MR × NR` register micro-kernel: accumulates
/// `out[r+i][j0+js] += Σ_kk apack[kk, i] · strip[kk, t]` for an `MR`-row
/// block, one NR-wide B strip at a time, streaming both packed operands
/// sequentially. Every output element still owns a single accumulator fed
/// in increasing k order, so blocking rows changes nothing bitwise — it
/// only amortizes each strip load over `MR` rows.
#[inline]
#[allow(clippy::too_many_arguments)] // a micro-kernel's geometry really is 8 scalars
fn accumulate_row_block(
    apack: &[f64],
    panel: &[f64],
    kn: usize,
    jn: usize,
    r: usize,
    n: usize,
    j0: usize,
    out: &mut [f64],
) {
    let mut js = 0;
    while js < jn {
        let w = NR.min(jn - js);
        let strip = &panel[js * kn..(js + w) * kn];
        let mut acc = [[0.0f64; NR]; MR];
        for (i, acc_row) in acc.iter_mut().enumerate() {
            acc_row[..w].copy_from_slice(&out[(r + i) * n + j0 + js..][..w]);
        }
        if w == NR {
            for (p, a_col) in strip.chunks_exact(NR).zip(apack.chunks_exact(MR)) {
                for (i, acc_row) in acc.iter_mut().enumerate() {
                    let av = a_col[i];
                    for t in 0..NR {
                        acc_row[t] += av * p[t];
                    }
                }
            }
        } else {
            for (p, a_col) in strip.chunks_exact(w).zip(apack.chunks_exact(MR)) {
                for (i, acc_row) in acc.iter_mut().enumerate() {
                    let av = a_col[i];
                    for (t, &pv) in p.iter().enumerate() {
                        acc_row[t] += av * pv;
                    }
                }
            }
        }
        for (i, acc_row) in acc.iter().enumerate() {
            out[(r + i) * n + j0 + js..][..w].copy_from_slice(&acc_row[..w]);
        }
        js += w;
    }
}

/// Single-row variant of the micro-kernel for the `m % MR` remainder rows:
/// `out_row[js+t] += Σ_kk a_row[kk] · strip[kk, t]`, k in order.
#[inline]
fn accumulate_row(a_row: &[f64], panel: &[f64], kn: usize, jn: usize, out_row: &mut [f64]) {
    let mut js = 0;
    while js < jn {
        let w = NR.min(jn - js);
        let strip = &panel[js * kn..(js + w) * kn];
        let mut acc = [0.0f64; NR];
        acc[..w].copy_from_slice(&out_row[js..js + w]);
        if w == NR {
            for (p, &av) in strip.chunks_exact(NR).zip(a_row) {
                for t in 0..NR {
                    acc[t] += av * p[t];
                }
            }
        } else {
            for (p, &av) in strip.chunks_exact(w).zip(a_row) {
                for (t, &pv) in p.iter().enumerate() {
                    acc[t] += av * pv;
                }
            }
        }
        out_row[js..js + w].copy_from_slice(&acc[..w]);
        js += w;
    }
}

/// Blocked `out += Aᵀ · B` for row-major `A (k×m)`, `B (k×n)`, `out (m×n)`.
/// Like [`matmul_nn`], `out` must be zeroed on entry for a plain product
/// ([`crate::Matrix::matmul_tn`] always passes fresh zeros).
///
/// Reuses the [`gebp`] driver with a strided accessor: the transpose never
/// materializes — the A-block packing step gathers the needed column
/// entries directly. Per-element accumulation runs in shared-k order either
/// way, so the result is bit-identical to the naive implicit-transpose loop.
pub fn matmul_tn(k: usize, m: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), k * m, "A must be k*m");
    debug_assert_eq!(b.len(), k * n, "B must be k*n");
    debug_assert_eq!(out.len(), m * n, "out must be m*n");
    gebp(
        m,
        k,
        n,
        #[inline(always)]
        |r, kk| a[kk * m + r],
        b,
        out,
    );
}

/// Blocked `out = A · Bᵀ` for row-major `A (m×k)`, `B (n×k)`, `out (m×n)`.
///
/// Packs `NR` rows of B interleaved (`panel[kk·w + t] = B[c0+t][kk]`) so the
/// micro-kernel reads both operands contiguously while computing `NR`
/// dot products at once; each product accumulates k in order from `0.0`,
/// matching the naive dot-product loop bit for bit.
pub fn matmul_nt(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k, "A must be m*k");
    debug_assert_eq!(b.len(), n * k, "B must be n*k");
    debug_assert_eq!(out.len(), m * n, "out must be m*n");
    if m == 0 || n == 0 {
        return; // k == 0 leaves the zeroed output: every dot product is empty
    }
    let mut panel = vec![0.0f64; k * NR];
    for c0 in (0..n).step_by(NR) {
        let w = NR.min(n - c0);
        for t in 0..w {
            for (kk, &v) in b[(c0 + t) * k..(c0 + t + 1) * k].iter().enumerate() {
                panel[kk * w + t] = v;
            }
        }
        let panel = &panel[..k * w];
        // No row blocking here: there is no k-panelling, so the packed B
        // strip is reused identically by every row — MC would be a no-op.
        for r in 0..m {
            let a_row = &a[r * k..(r + 1) * k];
            let out_row = &mut out[r * n + c0..r * n + c0 + w];
            if w == NR {
                let mut acc = [0.0f64; NR];
                for (kk, &av) in a_row.iter().enumerate() {
                    let p = &panel[kk * NR..(kk + 1) * NR];
                    for t in 0..NR {
                        acc[t] += av * p[t];
                    }
                }
                out_row.copy_from_slice(&acc);
            } else {
                let mut acc = [0.0f64; NR];
                for (kk, &av) in a_row.iter().enumerate() {
                    for (t, &pv) in panel[kk * w..(kk + 1) * w].iter().enumerate() {
                        acc[t] += av * pv;
                    }
                }
                out_row.copy_from_slice(&acc[..w]);
            }
        }
    }
}

/// Reference `out += A · B`: the seed's triple loop (minus its zero-skip
/// branch). Kept public for the equivalence proptests and the
/// `matmul_kernels` bench.
pub fn matmul_nn_naive(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    check_dims(m, k, n, a, b, out);
    for r in 0..m {
        let out_row = &mut out[r * n..(r + 1) * n];
        for (kk, &av) in a[r * k..(r + 1) * k].iter().enumerate() {
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Reference `out += Aᵀ · B` without materializing the transpose (`out`
/// zeroed on entry for a plain product, like [`matmul_nn_naive`]).
pub fn matmul_tn_naive(k: usize, m: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), k * m, "A must be k*m");
    for kk in 0..k {
        let a_row = &a[kk * m..(kk + 1) * m];
        let b_row = &b[kk * n..(kk + 1) * n];
        for (r, &av) in a_row.iter().enumerate() {
            let out_row = &mut out[r * n..(r + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Reference `out = A · Bᵀ`: one scalar dot product per output element.
pub fn matmul_nt_naive(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k, "A must be m*k");
    debug_assert_eq!(b.len(), n * k, "B must be n*k");
    for r in 0..m {
        let a_row = &a[r * k..(r + 1) * k];
        for c in 0..n {
            let b_row = &b[c * k..(c + 1) * k];
            let mut acc = 0.0;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            out[r * n + c] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(len: usize, start: f64) -> Vec<f64> {
        (0..len).map(|i| start + i as f64 * 0.37 - 3.1).collect()
    }

    fn bits_eq(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn nn_matches_naive_across_all_block_boundaries() {
        // Straddles NR, MC, KC and NC in every dimension.
        for (m, k, n) in [(1, 1, 1), (7, 5, 9), (65, 129, 131), (3, 300, 17)] {
            let a = seq(m * k, 0.0);
            let b = seq(k * n, 1.0);
            let mut blocked = vec![0.0; m * n];
            let mut naive = vec![0.0; m * n];
            matmul_nn(m, k, n, &a, &b, &mut blocked);
            matmul_nn_naive(m, k, n, &a, &b, &mut naive);
            bits_eq(&blocked, &naive);
        }
    }

    #[test]
    fn tn_and_nt_match_naive() {
        let (k, m, n) = (67, 33, 41);
        let a = seq(k * m, 0.5);
        let b = seq(k * n, -0.5);
        let mut blocked = vec![0.0; m * n];
        let mut naive = vec![0.0; m * n];
        matmul_tn(k, m, n, &a, &b, &mut blocked);
        matmul_tn_naive(k, m, n, &a, &b, &mut naive);
        bits_eq(&blocked, &naive);

        let (m2, k2, n2) = (21, 130, 13);
        let a = seq(m2 * k2, 0.2);
        let b = seq(n2 * k2, 0.9);
        let mut blocked = vec![0.0; m2 * n2];
        let mut naive = vec![0.0; m2 * n2];
        matmul_nt(m2, k2, n2, &a, &b, &mut blocked);
        matmul_nt_naive(m2, k2, n2, &a, &b, &mut naive);
        bits_eq(&blocked, &naive);
    }

    #[test]
    fn degenerate_dims_are_noops() {
        for (m, k, n) in [(0, 4, 4), (4, 0, 4), (4, 4, 0), (0, 0, 0)] {
            let a = vec![1.0; m * k];
            let b = vec![1.0; k * n];
            let mut out = vec![0.0; m * n];
            matmul_nn(m, k, n, &a, &b, &mut out);
            assert!(out.iter().all(|&v| v == 0.0));
            let b_nt = vec![1.0; n * k];
            let mut out = vec![0.0; m * n];
            matmul_nt(m, k, n, &a, &b_nt, &mut out);
            assert!(out.iter().all(|&v| v == 0.0));
        }
    }
}
