//! Multi-layer perceptron for binary classification.

use crate::logistic::binary_cross_entropy;
use crate::{sigmoid, Dataset, Matrix};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of an [`Mlp`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Number of input features.
    pub input_dim: usize,
    /// Sizes of the hidden layers (ReLU activations).
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Number of training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Early-stopping patience measured in epochs without validation-loss
    /// improvement (only used by [`Mlp::train_with_validation`]).
    pub patience: usize,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            input_dim: 1,
            hidden: vec![16],
            learning_rate: 0.01,
            l2: 1e-4,
            epochs: 120,
            batch_size: 32,
            patience: 15,
        }
    }
}

/// One fully-connected layer with Adam state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Layer {
    weights: Matrix,
    bias: Vec<f64>,
    // Adam first/second moment estimates.
    m_w: Matrix,
    v_w: Matrix,
    m_b: Vec<f64>,
    v_b: Vec<f64>,
}

impl Layer {
    fn new<R: Rng + ?Sized>(inputs: usize, outputs: usize, rng: &mut R) -> Self {
        // He-uniform initialization: U(-b, b) with b = sqrt(6 / fan_in) has
        // the He variance 2 / fan_in (a uniform bound of sqrt(2 / fan_in)
        // would under-scale the weights by 3x in variance and starves deep
        // ReLU stacks of gradient).
        let scale = (6.0 / inputs as f64).sqrt();
        Layer {
            weights: Matrix::random(outputs, inputs, scale, rng),
            bias: vec![0.0; outputs],
            m_w: Matrix::zeros(outputs, inputs),
            v_w: Matrix::zeros(outputs, inputs),
            m_b: vec![0.0; outputs],
            v_b: vec![0.0; outputs],
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut z = self.weights.matvec(x);
        for (zi, b) in z.iter_mut().zip(&self.bias) {
            *zi += b;
        }
        z
    }
}

/// Multi-layer perceptron: ReLU hidden layers, a single sigmoid output unit,
/// trained with mini-batch Adam on binary cross-entropy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    config: MlpConfig,
    layers: Vec<Layer>,
    adam_t: u64,
}

impl Mlp {
    /// Creates a randomly initialized network.
    pub fn new<R: Rng + ?Sized>(config: MlpConfig, rng: &mut R) -> Self {
        let mut dims = vec![config.input_dim];
        dims.extend(&config.hidden);
        dims.push(1);
        let layers = dims
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], rng))
            .collect();
        Mlp {
            config,
            layers,
            adam_t: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Probability that `features` is a positive example.
    ///
    /// # Panics
    ///
    /// Panics if the feature length does not match `config.input_dim`.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.config.input_dim,
            "feature dimension mismatch"
        );
        let (activations, _) = self.forward(features);
        sigmoid(activations.last().expect("output layer exists")[0])
    }

    /// Forward pass. Returns (pre-activations per layer, post-activations per
    /// layer input); `post[0]` is the input itself.
    #[allow(clippy::type_complexity)]
    fn forward(&self, x: &[f64]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut pre = Vec::with_capacity(self.layers.len());
        let mut post = Vec::with_capacity(self.layers.len() + 1);
        post.push(x.to_vec());
        for (i, layer) in self.layers.iter().enumerate() {
            let z = layer.forward(post.last().expect("non-empty"));
            let a = if i + 1 == self.layers.len() {
                z.clone() // output layer stays linear; sigmoid applied by caller
            } else {
                z.iter().map(|&v| v.max(0.0)).collect()
            };
            pre.push(z);
            post.push(a);
        }
        (pre, post)
    }

    /// Trains on the full dataset for `config.epochs` epochs. Returns the mean
    /// training loss of the final epoch.
    pub fn train<R: Rng + ?Sized>(&mut self, data: &Dataset, rng: &mut R) -> f64 {
        let mut last = f64::INFINITY;
        for _ in 0..self.config.epochs {
            last = self.train_epoch(data, rng);
        }
        last
    }

    /// Trains with early stopping on a validation set. Returns
    /// `(best_validation_loss, epochs_run)`.
    pub fn train_with_validation<R: Rng + ?Sized>(
        &mut self,
        train: &Dataset,
        validation: &Dataset,
        rng: &mut R,
    ) -> (f64, usize) {
        let mut best_loss = f64::INFINITY;
        let mut best_state: Option<Vec<Layer>> = None;
        let mut since_best = 0usize;
        let mut epochs_run = 0usize;
        for _ in 0..self.config.epochs {
            self.train_epoch(train, rng);
            epochs_run += 1;
            let val_loss = self.mean_loss(validation);
            if val_loss + 1e-9 < best_loss {
                best_loss = val_loss;
                best_state = Some(self.layers.clone());
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= self.config.patience {
                    break;
                }
            }
        }
        if let Some(state) = best_state {
            self.layers = state;
        }
        (best_loss, epochs_run)
    }

    /// Mean binary cross-entropy over a dataset.
    pub fn mean_loss(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for i in 0..data.len() {
            let p = self.predict(data.features_of(i));
            total += binary_cross_entropy(p, data.label_of(i));
        }
        total / data.len() as f64
    }

    fn train_epoch<R: Rng + ?Sized>(&mut self, data: &Dataset, rng: &mut R) -> f64 {
        assert_eq!(
            data.dim(),
            self.config.input_dim,
            "dataset dimension mismatch"
        );
        let n = data.len();
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(rng);
        let mut epoch_loss = 0.0;
        for batch in indices.chunks(self.config.batch_size.max(1)) {
            epoch_loss += self.train_batch(data, batch);
        }
        epoch_loss / n as f64
    }

    fn train_batch(&mut self, data: &Dataset, batch: &[usize]) -> f64 {
        // Accumulate gradients over the batch.
        let mut grad_w: Vec<Matrix> = self
            .layers
            .iter()
            .map(|l| Matrix::zeros(l.weights.rows(), l.weights.cols()))
            .collect();
        let mut grad_b: Vec<Vec<f64>> = self
            .layers
            .iter()
            .map(|l| vec![0.0; l.bias.len()])
            .collect();
        let mut batch_loss = 0.0;

        for &i in batch {
            let x = data.features_of(i);
            let y = data.label_of(i);
            let (pre, post) = self.forward(x);
            let out = pre.last().expect("output layer")[0];
            let p = sigmoid(out);
            batch_loss += binary_cross_entropy(p, y);

            // Backward pass.
            // delta of output layer (dL/dz_out) = p - y
            let mut delta = vec![p - y];
            for layer_idx in (0..self.layers.len()).rev() {
                let input = &post[layer_idx];
                grad_w[layer_idx].add_outer(1.0, &delta, input);
                for (g, d) in grad_b[layer_idx].iter_mut().zip(&delta) {
                    *g += d;
                }
                if layer_idx > 0 {
                    // Propagate: delta_prev = W^T delta ⊙ relu'(pre_prev)
                    let back = self.layers[layer_idx].weights.matvec_t(&delta);
                    let prev_pre = &pre[layer_idx - 1];
                    delta = back
                        .iter()
                        .zip(prev_pre)
                        .map(|(&b, &z)| if z > 0.0 { b } else { 0.0 })
                        .collect();
                }
            }
        }

        // Adam update.
        self.adam_t += 1;
        let t = self.adam_t as f64;
        let (beta1, beta2, eps) = (0.9, 0.999, 1e-8);
        let lr = self.config.learning_rate;
        let l2 = self.config.l2;
        let scale = 1.0 / batch.len() as f64;
        for (layer, (gw, gb)) in self.layers.iter_mut().zip(grad_w.iter().zip(&grad_b)) {
            for r in 0..layer.weights.rows() {
                for c in 0..layer.weights.cols() {
                    let g = gw.get(r, c) * scale + l2 * layer.weights.get(r, c);
                    let m = beta1 * layer.m_w.get(r, c) + (1.0 - beta1) * g;
                    let v = beta2 * layer.v_w.get(r, c) + (1.0 - beta2) * g * g;
                    layer.m_w.set(r, c, m);
                    layer.v_w.set(r, c, v);
                    let m_hat = m / (1.0 - beta1.powf(t));
                    let v_hat = v / (1.0 - beta2.powf(t));
                    let step = lr * m_hat / (v_hat.sqrt() + eps);
                    layer.weights.set(r, c, layer.weights.get(r, c) - step);
                }
            }
            for (j, &gbj) in gb.iter().enumerate().take(layer.bias.len()) {
                let g = gbj * scale;
                layer.m_b[j] = beta1 * layer.m_b[j] + (1.0 - beta1) * g;
                layer.v_b[j] = beta2 * layer.v_b[j] + (1.0 - beta2) * g * g;
                let m_hat = layer.m_b[j] / (1.0 - beta1.powf(t));
                let v_hat = layer.v_b[j] / (1.0 - beta2.powf(t));
                layer.bias[j] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        }
        batch_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn xor_dataset() -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for a in [0.0, 1.0] {
            for b in [0.0, 1.0] {
                // replicate to give SGD something to chew on
                for _ in 0..8 {
                    rows.push(vec![a, b]);
                    labels.push(if (a > 0.5) ^ (b > 0.5) { 1.0 } else { 0.0 });
                }
            }
        }
        Dataset::from_rows(rows, labels).unwrap()
    }

    #[test]
    fn learns_xor() {
        let data = xor_dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut mlp = Mlp::new(
            MlpConfig {
                input_dim: 2,
                hidden: vec![8, 8],
                epochs: 300,
                learning_rate: 0.02,
                ..Default::default()
            },
            &mut rng,
        );
        let loss = mlp.train(&data, &mut rng);
        assert!(loss < 0.2, "loss {loss}");
        assert!(mlp.predict(&[0.0, 1.0]) > 0.8);
        assert!(mlp.predict(&[1.0, 0.0]) > 0.8);
        assert!(mlp.predict(&[0.0, 0.0]) < 0.2);
        assert!(mlp.predict(&[1.0, 1.0]) < 0.2);
    }

    #[test]
    fn early_stopping_stops_before_epoch_limit_on_tiny_data() {
        let data = xor_dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (train, val) = data.split(0.25, &mut rng);
        let mut mlp = Mlp::new(
            MlpConfig {
                input_dim: 2,
                hidden: vec![4],
                epochs: 500,
                patience: 5,
                ..Default::default()
            },
            &mut rng,
        );
        let (best, epochs) = mlp.train_with_validation(&train, &val, &mut rng);
        assert!(best.is_finite());
        assert!(epochs <= 500);
    }

    #[test]
    fn prediction_is_deterministic_after_training() {
        let data = xor_dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut mlp = Mlp::new(
            MlpConfig {
                input_dim: 2,
                hidden: vec![4],
                epochs: 10,
                ..Default::default()
            },
            &mut rng,
        );
        mlp.train(&data, &mut rng);
        assert_eq!(mlp.predict(&[1.0, 0.0]), mlp.predict(&[1.0, 0.0]));
    }

    #[test]
    fn seeded_training_is_reproducible() {
        let data = xor_dataset();
        let build = || {
            let mut rng = ChaCha8Rng::seed_from_u64(17);
            let mut mlp = Mlp::new(
                MlpConfig {
                    input_dim: 2,
                    hidden: vec![6],
                    epochs: 30,
                    ..Default::default()
                },
                &mut rng,
            );
            mlp.train(&data, &mut rng);
            mlp.predict(&[0.0, 1.0])
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn wrong_dim_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mlp = Mlp::new(
            MlpConfig {
                input_dim: 4,
                ..Default::default()
            },
            &mut rng,
        );
        mlp.predict(&[1.0]);
    }
}
