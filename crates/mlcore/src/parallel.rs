//! The one order-preserving pooled map every deterministic fan-out uses.
//!
//! The workspace's bit-for-bit thread-count contract (see `README.md` and
//! `crates/gnn/README.md`) rests on a single pattern: fan independent items
//! across a bounded rayon pool with slot `i` of the output always answering
//! item `i`, and keep every floating-point *reduction* serial and in fixed
//! order at the call site. This module holds the pattern once so the
//! ensemble, the attack-level fan-outs and the experiment drivers cannot
//! drift apart.

use rayon::prelude::*;

/// Order-preserving parallel map across a pool of `threads` workers
/// (`0` = all available cores, `1` = serial): `out[i]` answers `items[i]`
/// no matter which thread computed it, so any fixed-order reduction over
/// the result is identical to the serial loop. Serial for `threads == 1`
/// and for singleton/empty batches (not worth a pool).
///
/// Building the pool per call is free with the vendored rayon shim (its
/// `ThreadPool` owns no threads — workers are scoped threads spawned per
/// parallel call). If the workspace ever swaps in real rayon, hot callers
/// should hold one pool and `install` their batches into it instead.
pub fn pooled_map<T: Sync, R: Send>(
    threads: usize,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    if threads == 1 || items.len() <= 1 {
        items.iter().map(f).collect()
    } else {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("failed to build rayon thread pool")
            .install(|| items.par_iter().map(&f).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_for_every_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        let expect: Vec<usize> = items.iter().map(|i| i * i).collect();
        for threads in [0, 1, 2, 3, 8] {
            assert_eq!(pooled_map(threads, &items, |&i| i * i), expect);
        }
    }

    #[test]
    fn empty_and_singleton_batches_stay_serial() {
        let empty: Vec<u32> = Vec::new();
        assert!(pooled_map(0, &empty, |&v| v).is_empty());
        assert_eq!(pooled_map(0, &[9u32], |&v| v + 1), vec![10]);
    }
}
