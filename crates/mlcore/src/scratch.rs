//! A bounded recycler of flat buffers for streamed per-example pipelines.
//!
//! The streamed DGCNN training path (`autolock_gnn`) builds one subgraph
//! tensor per training example per epoch instead of materializing the whole
//! training set. Without reuse, that is one fresh `Vec<f64>` feature matrix
//! plus two CSR arrays per example per epoch — tens of thousands of
//! short-lived heap allocations on an ISCAS-sized attack. [`ScratchPool`]
//! keeps those buffers alive between examples: a worker takes a buffer,
//! overwrites every element, wraps it into a tensor, and returns the storage
//! to the pool when the example's gradients have been reduced.
//!
//! Determinism: a recycled buffer is returned **fully overwritten** by the
//! taker (`take_f64` additionally clears to zero, because tensor assembly
//! scatters into it), so no value ever depends on which buffer a thread
//! happened to grab. The pool therefore cannot break the workspace's
//! bit-for-bit thread-count contract — it only recycles capacity, never
//! contents.
//!
//! The pool is bounded ([`ScratchPool::MAX_RETAINED`] buffers per kind);
//! overflow buffers are simply dropped, so a burst of large examples cannot
//! pin their memory forever.

use parking_lot::Mutex;

/// A thread-safe, bounded pool of reusable `Vec<f64>` / `Vec<usize>`
/// buffers. See the [module documentation](self).
#[derive(Debug, Default)]
pub struct ScratchPool {
    f64s: Mutex<Vec<Vec<f64>>>,
    usizes: Mutex<Vec<Vec<usize>>>,
}

impl ScratchPool {
    /// Maximum buffers retained per element kind; returns beyond this are
    /// dropped instead of pooled.
    pub const MAX_RETAINED: usize = 64;

    /// Creates an empty pool.
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// A zeroed `f64` buffer of exactly `len` elements, recycled from the
    /// pool when one is available.
    pub fn take_f64(&self, len: usize) -> Vec<f64> {
        let mut v = self.f64s.lock().pop().unwrap_or_default();
        v.clear();
        v.resize(len, 0.0);
        v
    }

    /// A `usize` buffer of exactly `len` elements (zero-filled), recycled
    /// from the pool when one is available.
    pub fn take_usize(&self, len: usize) -> Vec<usize> {
        let mut v = self.usizes.lock().pop().unwrap_or_default();
        v.clear();
        v.resize(len, 0);
        v
    }

    /// Returns an `f64` buffer's storage to the pool.
    pub fn put_f64(&self, v: Vec<f64>) {
        let mut pool = self.f64s.lock();
        if pool.len() < Self::MAX_RETAINED {
            pool.push(v);
        }
    }

    /// Returns a `usize` buffer's storage to the pool.
    pub fn put_usize(&self, v: Vec<usize>) {
        let mut pool = self.usizes.lock();
        if pool.len() < Self::MAX_RETAINED {
            pool.push(v);
        }
    }

    /// Number of buffers currently retained (both kinds; for tests and
    /// memory accounting).
    pub fn retained(&self) -> usize {
        self.f64s.lock().len() + self.usizes.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_recycled_and_zeroed() {
        let pool = ScratchPool::new();
        let mut a = pool.take_f64(4);
        a[0] = 7.0;
        let ptr = a.as_ptr();
        pool.put_f64(a);
        assert_eq!(pool.retained(), 1);
        let b = pool.take_f64(3);
        // Same storage, fully zeroed at the requested length.
        assert_eq!(b.as_ptr(), ptr);
        assert_eq!(b, vec![0.0; 3]);
        assert_eq!(pool.retained(), 0);
    }

    #[test]
    fn usize_buffers_round_trip() {
        let pool = ScratchPool::new();
        let mut a = pool.take_usize(2);
        a[1] = 9;
        pool.put_usize(a);
        let b = pool.take_usize(5);
        assert_eq!(b, vec![0; 5]);
    }

    #[test]
    fn retention_is_bounded() {
        let pool = ScratchPool::new();
        for _ in 0..(ScratchPool::MAX_RETAINED + 10) {
            pool.put_f64(vec![0.0; 8]);
        }
        assert_eq!(pool.retained(), ScratchPool::MAX_RETAINED);
    }

    #[test]
    fn growing_take_reallocates_cleanly() {
        let pool = ScratchPool::new();
        pool.put_f64(vec![1.0; 2]);
        let v = pool.take_f64(16);
        assert_eq!(v, vec![0.0; 16]);
    }
}
