//! Small dense row-major matrix.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64`.
///
/// This intentionally implements only the operations the learners in this
/// crate need; it is not a general linear-algebra library.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Matrix { rows, cols, data }
    }

    /// Consumes the matrix and returns its row-major storage (so streamed
    /// pipelines can return the buffer to a
    /// [`crate::scratch::ScratchPool`]).
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Creates a matrix with entries drawn uniformly from `[-scale, scale]`.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, scale: f64, rng: &mut R) -> Self {
        Matrix {
            rows,
            cols,
            data: (0..rows * cols)
                .map(|_| rng.gen_range(-scale..=scale))
                .collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// A row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable row slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *o = acc;
        }
        out
    }

    /// Transposed matrix-vector product `selfᵀ * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            let row = self.row(r);
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * xr;
            }
        }
        out
    }

    /// Adds `alpha * outer(u, v)` to the matrix (rank-1 update).
    ///
    /// # Panics
    ///
    /// Panics if `u.len() != rows` or `v.len() != cols`.
    pub fn add_outer(&mut self, alpha: f64, u: &[f64], v: &[f64]) {
        assert_eq!(u.len(), self.rows);
        assert_eq!(v.len(), self.cols);
        for (r, &ur_raw) in u.iter().enumerate() {
            let row = self.row_mut(r);
            let ur = alpha * ur_raw;
            for (entry, vv) in row.iter_mut().zip(v) {
                *entry += ur * vv;
            }
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Matrix product `self * other`, computed by the cache-blocked kernels
    /// in [`crate::kernels`]. Bit-for-bit identical to [`Matrix::matmul_naive`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        crate::kernels::matmul_nn(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// Transposed product `selfᵀ * other` (without the caller materializing
    /// the transpose), via the blocked kernels. Bit-for-bit identical to
    /// [`Matrix::matmul_tn_naive`].
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn dimension mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        crate::kernels::matmul_tn(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// Product with the transpose `self * otherᵀ`, via the blocked kernels.
    /// Bit-for-bit identical to [`Matrix::matmul_nt_naive`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        crate::kernels::matmul_nt(
            self.rows,
            self.cols,
            other.rows,
            &self.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// Reference (naive triple-loop) `self * other`. Exists so tests and the
    /// `matmul_kernels` bench can pin the blocked kernels against the
    /// original scalar loops; production code should call [`Matrix::matmul`].
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        crate::kernels::matmul_nn_naive(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// Reference (naive) `selfᵀ * other`; see [`Matrix::matmul_naive`].
    pub fn matmul_tn_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn dimension mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        crate::kernels::matmul_tn_naive(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// Reference (naive) `self * otherᵀ`; see [`Matrix::matmul_naive`].
    pub fn matmul_nt_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        crate::kernels::matmul_nt_naive(
            self.rows,
            self.cols,
            other.rows,
            &self.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// Transposed copy. Works in square tiles so both the source rows and
    /// the destination rows stay cache-resident even for matrices whose rows
    /// far exceed a cache line.
    pub fn transpose(&self) -> Matrix {
        const TILE: usize = 32;
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r0 in (0..self.rows).step_by(TILE) {
            let r1 = (r0 + TILE).min(self.rows);
            for c0 in (0..self.cols).step_by(TILE) {
                let c1 = (c0 + TILE).min(self.cols);
                for r in r0..r1 {
                    for (c, &v) in self.row(r)[c0..c1].iter().enumerate() {
                        out.data[(c0 + c) * self.rows + r] = v;
                    }
                }
            }
        }
        out
    }

    /// Adds `alpha * other` element-wise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "add_scaled shape mismatch");
        assert_eq!(self.cols, other.cols, "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every entry by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for v in self.data.iter_mut() {
            *v *= alpha;
        }
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn matvec_works() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_update() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(2.0, &[1.0, 0.5], &[3.0, 4.0]);
        assert_eq!(m.get(0, 0), 6.0);
        assert_eq!(m.get(0, 1), 8.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn random_is_bounded_and_seeded() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m = Matrix::random(4, 4, 0.5, &mut rng);
        assert!(m.data().iter().all(|v| v.abs() <= 0.5));
        let mut rng2 = ChaCha8Rng::seed_from_u64(1);
        let m2 = Matrix::random(4, 4, 0.5, &mut rng2);
        assert_eq!(m, m2);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_vec_wrong_len_panics() {
        Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn transpose_is_exact_and_involutive_across_tile_boundaries() {
        // 37 × 53 straddles the 32-wide tiles in both dimensions.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let m = Matrix::random(37, 53, 1.0, &mut rng);
        let t = m.transpose();
        assert_eq!(t.rows(), 53);
        assert_eq!(t.cols(), 37);
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                assert_eq!(t.get(c, r), m.get(r, c));
            }
        }
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn norm_computation() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.norm() - 5.0).abs() < 1e-12);
    }
}
