//! Datasets for binary classification.

use crate::{Matrix, MlError};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A binary-classification dataset: a feature matrix and a 0/1 label per row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<f64>,
}

impl Dataset {
    /// Builds a dataset from per-example feature rows and labels.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] for zero rows and
    /// [`MlError::ShapeMismatch`] if rows have different lengths or the label
    /// count differs from the row count.
    pub fn from_rows(rows: Vec<Vec<f64>>, labels: Vec<f64>) -> Result<Self, MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if rows.len() != labels.len() {
            return Err(MlError::ShapeMismatch {
                message: format!("{} feature rows but {} labels", rows.len(), labels.len()),
            });
        }
        let dim = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != dim {
                return Err(MlError::ShapeMismatch {
                    message: format!("row {i} has {} features, expected {dim}", r.len()),
                });
            }
        }
        let mut features = Matrix::zeros(rows.len(), dim);
        for (i, r) in rows.iter().enumerate() {
            features.row_mut(i).copy_from_slice(r);
        }
        Ok(Dataset { features, labels })
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// Feature row of example `i`.
    pub fn features_of(&self, i: usize) -> &[f64] {
        self.features.row(i)
    }

    /// Label of example `i`.
    pub fn label_of(&self, i: usize) -> f64 {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// Fraction of positive examples.
    pub fn positive_rate(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().sum::<f64>() / self.labels.len() as f64
    }

    /// Splits into `(train, validation)` with `val_fraction` of the examples
    /// (at least one if possible) going to validation, after shuffling.
    pub fn split<R: Rng + ?Sized>(&self, val_fraction: f64, rng: &mut R) -> (Dataset, Dataset) {
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        let n_val = ((self.len() as f64 * val_fraction).round() as usize)
            .clamp(usize::from(self.len() > 1), self.len().saturating_sub(1));
        let (val_idx, train_idx) = indices.split_at(n_val);
        (self.subset(train_idx), self.subset(val_idx))
    }

    /// Builds a new dataset from a subset of example indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let rows: Vec<Vec<f64>> = indices
            .iter()
            .map(|&i| self.features_of(i).to_vec())
            .collect();
        let labels: Vec<f64> = indices.iter().map(|&i| self.label_of(i)).collect();
        if rows.is_empty() {
            // An empty subset is representable internally (0 x dim matrix).
            Dataset {
                features: Matrix::zeros(0, self.dim()),
                labels,
            }
        } else {
            Dataset::from_rows(rows, labels).expect("subset of a valid dataset is valid")
        }
    }

    /// Bootstrap resample: `len()` examples drawn uniformly with replacement,
    /// for bagged ensembles.
    pub fn bootstrap_sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        let n = self.len();
        let indices: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
        self.subset(&indices)
    }

    /// Computes per-feature mean and standard deviation (for standardization).
    pub fn feature_stats(&self) -> (Vec<f64>, Vec<f64>) {
        let n = self.len().max(1) as f64;
        let d = self.dim();
        let mut mean = vec![0.0; d];
        for i in 0..self.len() {
            for (m, v) in mean.iter_mut().zip(self.features_of(i)) {
                *m += v;
            }
        }
        for m in mean.iter_mut() {
            *m /= n;
        }
        let mut std = vec![0.0; d];
        for i in 0..self.len() {
            for j in 0..d {
                let diff = self.features_of(i)[j] - mean[j];
                std[j] += diff * diff;
            }
        }
        for s in std.iter_mut() {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant feature: leave unscaled
            }
        }
        (mean, std)
    }

    /// Returns a standardized copy (zero mean, unit variance per feature)
    /// using the provided statistics (typically computed on the training set).
    pub fn standardized(&self, mean: &[f64], std: &[f64]) -> Dataset {
        let mut features = self.features.clone();
        for i in 0..self.len() {
            let row = features.row_mut(i);
            for j in 0..row.len() {
                row[j] = (row[j] - mean[j]) / std[j];
            }
        }
        Dataset {
            features,
            labels: self.labels.clone(),
        }
    }

    /// Standardizes a single feature vector with the same statistics.
    pub fn standardize_row(row: &[f64], mean: &[f64], std: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(mean.iter().zip(std))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn toy() -> Dataset {
        Dataset::from_rows(
            vec![
                vec![0.0, 10.0],
                vec![1.0, 20.0],
                vec![2.0, 30.0],
                vec![3.0, 40.0],
            ],
            vec![0.0, 0.0, 1.0, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn construction_checks_shapes() {
        assert!(matches!(
            Dataset::from_rows(vec![], vec![]),
            Err(MlError::EmptyDataset)
        ));
        assert!(matches!(
            Dataset::from_rows(vec![vec![1.0]], vec![1.0, 0.0]),
            Err(MlError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            Dataset::from_rows(vec![vec![1.0], vec![1.0, 2.0]], vec![1.0, 0.0]),
            Err(MlError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.label_of(2), 1.0);
        assert_eq!(d.features_of(1), &[1.0, 20.0]);
        assert_eq!(d.positive_rate(), 0.5);
    }

    #[test]
    fn split_partitions_everything() {
        let d = toy();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let (train, val) = d.split(0.25, &mut rng);
        assert_eq!(train.len() + val.len(), d.len());
        assert!(!val.is_empty());
        assert!(!train.is_empty());
    }

    #[test]
    fn standardization_zero_mean_unit_variance() {
        let d = toy();
        let (mean, std) = d.feature_stats();
        let s = d.standardized(&mean, &std);
        let (m2, _) = s.feature_stats();
        for m in m2 {
            assert!(m.abs() < 1e-9);
        }
        // Constant feature does not blow up.
        let d2 = Dataset::from_rows(vec![vec![5.0], vec![5.0]], vec![0.0, 1.0]).unwrap();
        let (mean, std) = d2.feature_stats();
        let s2 = d2.standardized(&mean, &std);
        assert!(s2.features_of(0)[0].is_finite());
    }

    #[test]
    fn subset_preserves_rows() {
        let d = toy();
        let s = d.subset(&[3, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.features_of(0), &[3.0, 40.0]);
        assert_eq!(s.label_of(1), 0.0);
        let empty = d.subset(&[]);
        assert!(empty.is_empty());
    }
}
