//! Finite-difference gradient checks for every trainable DGCNN layer.
//!
//! These are the standalone counterpart of the in-crate smoke checks: each
//! analytic gradient (graph conv weights and biases, the dense head, and the
//! gradient routed through SortPooling — including the adaptive-`k` path and
//! its tie-breaking) is compared against a central finite difference of the
//! actual training loss, so any future kernel rewrite that corrupts
//! backpropagation fails `cargo test` loudly.

use autolock_gnn::{Dgcnn, DgcnnConfig, SortPoolK, SortPooling, SubgraphTensor};
use autolock_mlcore::Matrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const EPS: f64 = 1e-6;

/// Relative-tolerance comparison of a finite difference against an analytic
/// gradient entry.
fn assert_close(fd: f64, analytic: f64, what: &str) {
    assert!(
        (fd - analytic).abs() < 1e-5 * (1.0 + fd.abs().max(analytic.abs())),
        "{what}: fd {fd} vs analytic {analytic}"
    );
}

/// A small random connected graph tensor with `n` nodes and `f` features.
/// Features are continuous random values (no ties), so the SortPooling order
/// is stable under finite-difference perturbations.
fn random_graph(n: usize, f: usize, seed: u64) -> SubgraphTensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, f);
    for r in 0..n {
        for c in 0..f {
            x.set(r, c, rng.gen_range(-1.0..1.0));
        }
    }
    let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    for _ in 0..n / 2 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
            edges.push((a, b));
        }
    }
    let mut degree = vec![0usize; n];
    for &(a, b) in &edges {
        degree[a] += 1;
        degree[b] += 1;
    }
    let mut adj: Vec<Vec<(usize, f64)>> = (0..n).map(|i| vec![(i, 1.0)]).collect();
    for &(a, b) in &edges {
        adj[a].push((b, 1.0));
        adj[b].push((a, 1.0));
    }
    for (i, row) in adj.iter_mut().enumerate() {
        let norm = 1.0 / (degree[i] as f64 + 1.0);
        for e in row.iter_mut() {
            e.1 *= norm;
        }
    }
    SubgraphTensor::from_parts(x, adj)
}

fn config(feature_dim: usize, k: SortPoolK) -> DgcnnConfig {
    DgcnnConfig {
        node_feature_dim: feature_dim,
        conv_channels: vec![5, 4, 1],
        sortpool_k: k,
        dense_hidden: vec![6],
        epochs: 5,
        batch_size: 8,
        learning_rate: 0.01,
        l2: 0.0,
        num_threads: 1,
    }
}

/// Finite-difference check of every conv layer's weight AND bias gradients
/// through tanh, channel concatenation, SortPooling and the dense head.
#[test]
fn conv_weight_and_bias_gradients_match_finite_differences() {
    let graph = random_graph(9, 6, 101);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut model = Dgcnn::new(config(6, SortPoolK::Fixed(6)), &mut rng);
    for &label in &[0.0, 1.0] {
        let (conv_grads, _, _) = model.example_gradients(&graph, label);
        for (layer, layer_grads) in conv_grads.iter().enumerate() {
            let weights = layer_grads.weights.clone();
            for r in 0..weights.rows() {
                for c in 0..weights.cols() {
                    let original = model.conv_mut(layer).weights().get(r, c);
                    model
                        .conv_mut(layer)
                        .weights_mut()
                        .set(r, c, original + EPS);
                    let up = model.example_loss(&graph, label);
                    model
                        .conv_mut(layer)
                        .weights_mut()
                        .set(r, c, original - EPS);
                    let down = model.example_loss(&graph, label);
                    model.conv_mut(layer).weights_mut().set(r, c, original);
                    assert_close(
                        (up - down) / (2.0 * EPS),
                        weights.get(r, c),
                        &format!("conv {layer} weight ({r},{c}), label {label}"),
                    );
                }
            }
            let bias = layer_grads.bias.clone();
            for (j, &analytic) in bias.iter().enumerate() {
                let original = model.conv_mut(layer).bias_mut()[j];
                model.conv_mut(layer).bias_mut()[j] = original + EPS;
                let up = model.example_loss(&graph, label);
                model.conv_mut(layer).bias_mut()[j] = original - EPS;
                let down = model.example_loss(&graph, label);
                model.conv_mut(layer).bias_mut()[j] = original;
                assert_close(
                    (up - down) / (2.0 * EPS),
                    analytic,
                    &format!("conv {layer} bias {j}, label {label}"),
                );
            }
        }
    }
}

/// Finite-difference check of the dense head's weight and bias gradients for
/// every layer (hidden ReLU layers and the final linear logit).
#[test]
fn dense_head_gradients_match_finite_differences() {
    let graph = random_graph(8, 5, 103);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut model = Dgcnn::new(config(5, SortPoolK::Fixed(5)), &mut rng);
    let label = 1.0;
    let (_, head_grads, _) = model.example_gradients(&graph, label);
    let weight_grads: Vec<Matrix> = head_grads.layer_weights().to_vec();
    let bias_grads: Vec<Vec<f64>> = head_grads.layer_biases().to_vec();
    let num_layers = model.head_mut().num_layers();
    assert_eq!(weight_grads.len(), num_layers);
    for layer in 0..num_layers {
        let (rows, cols) = model.head_mut().layer_shape(layer);
        for r in 0..rows {
            for c in 0..cols {
                let original = *model.head_mut().weight_mut(layer, r, c);
                *model.head_mut().weight_mut(layer, r, c) = original + EPS;
                let up = model.example_loss(&graph, label);
                *model.head_mut().weight_mut(layer, r, c) = original - EPS;
                let down = model.example_loss(&graph, label);
                *model.head_mut().weight_mut(layer, r, c) = original;
                assert_close(
                    (up - down) / (2.0 * EPS),
                    weight_grads[layer].get(r, c),
                    &format!("dense {layer} weight ({r},{c})"),
                );
            }
        }
        for (j, &analytic) in bias_grads[layer].iter().enumerate() {
            let original = model.head_mut().bias_mut(layer)[j];
            model.head_mut().bias_mut(layer)[j] = original + EPS;
            let up = model.example_loss(&graph, label);
            model.head_mut().bias_mut(layer)[j] = original - EPS;
            let down = model.example_loss(&graph, label);
            model.head_mut().bias_mut(layer)[j] = original;
            assert_close(
                (up - down) / (2.0 * EPS),
                analytic,
                &format!("dense {layer} bias {j}"),
            );
        }
    }
}

/// The adaptive-`k` path: a model built with [`Dgcnn::for_dataset`] and a
/// percentile `k` must resolve `k` per the DGCNN rule AND keep analytic
/// gradients consistent with finite differences through the resulting
/// SortPooling (several graphs in the check are smaller than `k`, so the
/// zero-padding path is exercised too).
#[test]
fn adaptive_k_model_passes_gradient_check() {
    // Node counts 5..=12; percentile 0.6 → ⌈0.6·8⌉ = 5 graphs must have
    // ≥ k nodes, so k = 5th-largest count = 8 (graphs with 5–7 nodes get
    // zero-padded).
    let graphs: Vec<SubgraphTensor> = (0..8)
        .map(|i| random_graph(5 + i as usize, 6, 200 + i))
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let mut model = Dgcnn::for_dataset(config(6, SortPoolK::Percentile(0.6)), &graphs, &mut rng);
    assert_eq!(model.config().sortpool_k, SortPoolK::Fixed(8));

    for (gi, graph) in graphs.iter().enumerate() {
        let label = f64::from(gi % 2 == 0);
        let (conv_grads, _, _) = model.example_gradients(graph, label);
        // Spot-check the first conv layer's full weight gradient per graph;
        // deeper layers are covered by the fixed-k test above.
        let weights = conv_grads[0].weights.clone();
        for r in 0..weights.rows() {
            for c in 0..weights.cols() {
                let original = model.conv_mut(0).weights().get(r, c);
                model.conv_mut(0).weights_mut().set(r, c, original + EPS);
                let up = model.example_loss(graph, label);
                model.conv_mut(0).weights_mut().set(r, c, original - EPS);
                let down = model.example_loss(graph, label);
                model.conv_mut(0).weights_mut().set(r, c, original);
                assert_close(
                    (up - down) / (2.0 * EPS),
                    weights.get(r, c),
                    &format!("graph {gi} (n = {}) conv 0 ({r},{c})", graph.num_nodes()),
                );
            }
        }
    }
}

/// Standalone SortPooling check: for distinct sort keys the backward pass is
/// the exact adjoint of the forward selection, verified entry-by-entry with
/// finite differences of `Σ G ∘ pool(X)`.
#[test]
fn sortpool_backward_is_the_adjoint_of_forward() {
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let n = 7;
    let f = 4;
    let k = 5;
    let mut x = Matrix::zeros(n, f);
    for r in 0..n {
        for c in 0..f {
            x.set(r, c, rng.gen_range(-1.0..1.0));
        }
    }
    let mut g = Matrix::zeros(k, f);
    for r in 0..k {
        for c in 0..f {
            g.set(r, c, rng.gen_range(-1.0..1.0));
        }
    }
    let pool = SortPooling::new(k);
    let objective = |x: &Matrix| -> f64 {
        let (y, _) = pool.forward(x);
        let mut total = 0.0;
        for r in 0..k {
            for c in 0..f {
                total += g.get(r, c) * y.get(r, c);
            }
        }
        total
    };
    let (_, cache) = pool.forward(&x);
    let grad = pool.backward(&cache, &g);
    assert_eq!(grad.rows(), n);
    assert_eq!(grad.cols(), f);
    for r in 0..n {
        for c in 0..f {
            let original = x.get(r, c);
            x.set(r, c, original + EPS);
            let up = objective(&x);
            x.set(r, c, original - EPS);
            let down = objective(&x);
            x.set(r, c, original);
            assert_close(
                (up - down) / (2.0 * EPS),
                grad.get(r, c),
                &format!("sortpool input ({r},{c})"),
            );
        }
    }
}

/// Tie-breaking: equal sort keys are ordered by node index (the determinism
/// contract), and the backward scatter follows exactly that selection — the
/// kept lower-index rows receive the gradient, the dropped rows none.
#[test]
fn sortpool_tie_breaking_is_by_node_index_and_routes_gradients() {
    // Four rows, all sharing the same sort-channel value; k = 2 keeps
    // rows 0 and 1 by the index tie-break.
    let x = Matrix::from_vec(
        4,
        2,
        vec![
            10.0, 0.5, //
            20.0, 0.5, //
            30.0, 0.5, //
            40.0, 0.5,
        ],
    );
    let pool = SortPooling::new(2);
    let (y, cache) = pool.forward(&x);
    assert_eq!(cache.selected, vec![Some(0), Some(1)]);
    assert_eq!(y.row(0), &[10.0, 0.5]);
    assert_eq!(y.row(1), &[20.0, 0.5]);
    let g = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
    let grad = pool.backward(&cache, &g);
    assert_eq!(grad.row(0), &[1.0, 2.0]);
    assert_eq!(grad.row(1), &[3.0, 4.0]);
    assert_eq!(grad.row(2), &[0.0, 0.0]);
    assert_eq!(grad.row(3), &[0.0, 0.0]);

    // A partial tie at the selection boundary resolves the same way: with
    // keys [9, 5, 5, 5] and k = 2, row 0 wins outright and row 1 wins the
    // three-way tie.
    let x = Matrix::from_vec(4, 1, vec![9.0, 5.0, 5.0, 5.0]);
    let (_, cache) = SortPooling::new(2).forward(&x);
    assert_eq!(cache.selected, vec![Some(0), Some(1)]);
}
