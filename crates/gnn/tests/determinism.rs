//! The parallelism/determinism contract: a DGCNN trained with rayon
//! parallelism on or off — and with any thread count — produces bit-for-bit
//! identical losses, predictions and parameters, because per-example passes
//! are independent and gradients are reduced in fixed example order.
//!
//! Also property-tests the tensor-op invariants the parallel kernels rely on
//! (matmul shapes and exactness against the identity, transpose involution,
//! CSR propagation vs a dense reference) over random subgraph batches.

use autolock_gnn::{
    Dgcnn, DgcnnConfig, GraphSource, LinkPredictor, SliceSource, SortPoolK, SourceTensor,
    SubgraphTensor,
};
use autolock_mlcore::scratch::ScratchPool;
use autolock_mlcore::Matrix;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Extra thread count folded into every compared set, from the CI
/// thread-matrix leg's `AUTOLOCK_THREADS`. The dev boxes are single-core;
/// the multi-core CI runner is the only machine where `n > 1` workers
/// actually exist, so the matrix leg is what truly exercises the contract.
fn env_threads() -> Option<usize> {
    std::env::var("AUTOLOCK_THREADS").ok()?.parse().ok()
}

/// A small random connected graph tensor with `n` nodes and `f` features.
fn random_graph(n: usize, f: usize, seed: u64) -> SubgraphTensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, f);
    for r in 0..n {
        for c in 0..f {
            x.set(r, c, rng.gen_range(-1.0..1.0));
        }
    }
    let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    for _ in 0..n / 2 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
            edges.push((a, b));
        }
    }
    let mut degree = vec![0usize; n];
    for &(a, b) in &edges {
        degree[a] += 1;
        degree[b] += 1;
    }
    let mut adj: Vec<Vec<(usize, f64)>> = (0..n).map(|i| vec![(i, 1.0)]).collect();
    for &(a, b) in &edges {
        adj[a].push((b, 1.0));
        adj[b].push((a, 1.0));
    }
    for (i, row) in adj.iter_mut().enumerate() {
        let norm = 1.0 / (degree[i] as f64 + 1.0);
        for e in row.iter_mut() {
            e.1 *= norm;
        }
    }
    SubgraphTensor::from_parts(x, adj)
}

fn dataset(count: usize) -> (Vec<SubgraphTensor>, Vec<f64>) {
    let graphs: Vec<SubgraphTensor> = (0..count)
        .map(|i| random_graph(6 + i % 7, 6, 900 + i as u64))
        .collect();
    let labels: Vec<f64> = (0..count).map(|i| f64::from(i % 2 == 0)).collect();
    (graphs, labels)
}

/// Trains a fresh model with the given thread count and returns
/// `(per-epoch-final loss, all scores)`.
fn train_with_threads(
    num_threads: usize,
    graphs: &[SubgraphTensor],
    labels: &[f64],
) -> (f64, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut model = Dgcnn::new(
        DgcnnConfig {
            epochs: 6,
            batch_size: 8,
            num_threads,
            ..DgcnnConfig::for_features(6)
        },
        &mut rng,
    );
    let loss = model.train(graphs, labels, &mut rng);
    (loss, model.score_batch(graphs))
}

/// The headline guarantee: rayon on (any thread count, including "all
/// cores") vs off — identical losses and identical predictions, compared
/// with exact `==`, no tolerance.
#[test]
fn training_is_bit_identical_across_thread_counts() {
    let (graphs, labels) = dataset(24);
    let (serial_loss, serial_scores) = train_with_threads(1, &graphs, &labels);
    assert!(serial_loss.is_finite());
    for threads in [2, 3, 4, 0].into_iter().chain(env_threads()) {
        let (loss, scores) = train_with_threads(threads, &graphs, &labels);
        assert_eq!(
            loss.to_bits(),
            serial_loss.to_bits(),
            "final loss diverged at num_threads = {threads}"
        );
        assert_eq!(
            scores, serial_scores,
            "predictions diverged at num_threads = {threads}"
        );
    }
}

/// Parallel batch scoring must equal the serial per-graph scoring loop
/// exactly, for the same trained model.
#[test]
fn score_batch_matches_serial_scores_exactly() {
    let (graphs, labels) = dataset(16);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut model = Dgcnn::new(
        DgcnnConfig {
            epochs: 3,
            num_threads: 4,
            ..DgcnnConfig::for_features(6)
        },
        &mut rng,
    );
    model.train(&graphs, &labels, &mut rng);
    let serial: Vec<f64> = graphs.iter().map(|g| model.score(g)).collect();
    assert_eq!(model.score_batch(&graphs), serial);
    assert!(model.score_batch(&[]).is_empty());
}

/// Adaptive-k resolution is a pure function of the dataset, so the whole
/// adaptive pipeline inherits the thread-count guarantee.
#[test]
fn adaptive_k_training_is_deterministic_across_thread_counts() {
    let (graphs, labels) = dataset(12);
    let run = |num_threads: usize| -> Vec<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let mut model = Dgcnn::for_dataset(
            DgcnnConfig {
                epochs: 4,
                sortpool_k: SortPoolK::Percentile(0.6),
                num_threads,
                ..DgcnnConfig::for_features(6)
            },
            &graphs,
            &mut rng,
        );
        model.train(&graphs, &labels, &mut rng);
        model.score_batch(&graphs)
    };
    let serial = run(1);
    assert_eq!(run(4), serial);
    assert_eq!(run(0), serial);
    if let Some(threads) = env_threads() {
        assert_eq!(run(threads), serial);
    }
}

// ---------------------------------------------------------------------------
// Streamed vs materialized training
// ---------------------------------------------------------------------------

/// A [`GraphSource`] that rebuilds every tensor on demand through a scratch
/// pool — the shape of the attack crate's cache-backed streaming source,
/// without the netlist machinery.
struct RebuildingSource {
    graphs: Vec<SubgraphTensor>,
    labels: Vec<f64>,
    scratch: ScratchPool,
}

impl GraphSource for RebuildingSource {
    fn len(&self) -> usize {
        self.graphs.len()
    }

    fn label(&self, idx: usize) -> f64 {
        self.labels[idx]
    }

    fn num_nodes(&self, idx: usize) -> usize {
        self.graphs[idx].num_nodes()
    }

    fn tensor(&self, idx: usize) -> SourceTensor<'_> {
        // Rebuild the tensor from recycled storage: features and adjacency
        // copied into buffers drawn from the scratch pool.
        let reference = &self.graphs[idx];
        let n = reference.num_nodes();
        let f = reference.feature_dim();
        let mut x = self.scratch.take_f64(n * f);
        x.copy_from_slice(reference.features().data());
        let adj: Vec<Vec<(usize, f64)>> = (0..n)
            .map(|i| {
                let (cols, vals) = reference.adj_row(i);
                cols.iter().copied().zip(vals.iter().copied()).collect()
            })
            .collect();
        SourceTensor::Owned(SubgraphTensor::from_parts(Matrix::from_vec(n, f, x), adj))
    }

    fn recycle(&self, tensor: SubgraphTensor) {
        tensor.recycle(&self.scratch);
    }
}

/// The tentpole guarantee of the streamed pipeline: training from a source
/// that materializes (and recycles) one tensor per example per epoch is
/// **bit-for-bit identical** — final loss, every prediction — to training
/// on the fully materialized tensor set, at every thread count.
#[test]
fn streamed_training_is_bit_identical_to_materialized() {
    let (graphs, labels) = dataset(20);
    let run = |streamed: bool, threads: usize| -> (f64, Vec<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(314);
        let config = DgcnnConfig {
            epochs: 5,
            batch_size: 8,
            num_threads: threads,
            ..DgcnnConfig::for_features(6)
        };
        let mut model = Dgcnn::new(config, &mut rng);
        let loss = if streamed {
            let source = RebuildingSource {
                graphs: graphs.clone(),
                labels: labels.clone(),
                scratch: ScratchPool::new(),
            };
            model.train_source(&source, &mut rng)
        } else {
            model.train(&graphs, &labels, &mut rng)
        };
        (loss, model.score_batch(&graphs))
    };
    let (reference_loss, reference_scores) = run(false, 1);
    for threads in [1, 2, 0].into_iter().chain(env_threads()) {
        let (loss, scores) = run(true, threads);
        assert_eq!(
            loss.to_bits(),
            reference_loss.to_bits(),
            "streamed loss diverged at num_threads = {threads}"
        );
        assert_eq!(
            scores, reference_scores,
            "streamed predictions diverged at num_threads = {threads}"
        );
    }
}

/// Adaptive-k resolution from a source (`Dgcnn::for_source`) must agree
/// with slice-based resolution (`Dgcnn::for_dataset`) exactly — same
/// resolved `k`, same init draws, same trained model.
#[test]
fn for_source_matches_for_dataset_exactly() {
    let (graphs, labels) = dataset(10);
    let config = DgcnnConfig {
        epochs: 3,
        sortpool_k: SortPoolK::Percentile(0.6),
        num_threads: 1,
        ..DgcnnConfig::for_features(6)
    };
    let mut rng_a = ChaCha8Rng::seed_from_u64(99);
    let mut a = Dgcnn::for_dataset(config.clone(), &graphs, &mut rng_a);
    let mut rng_b = ChaCha8Rng::seed_from_u64(99);
    let mut b = Dgcnn::for_source(config, &SliceSource::new(&graphs, &labels), &mut rng_b);
    assert_eq!(a.config(), b.config(), "resolved architectures must match");
    let loss_a = a.train(&graphs, &labels, &mut rng_a);
    let loss_b = b.train_source(&SliceSource::new(&graphs, &labels), &mut rng_b);
    assert_eq!(loss_a.to_bits(), loss_b.to_bits());
    assert_eq!(a.score_batch(&graphs), b.score_batch(&graphs));
}

// ---------------------------------------------------------------------------
// Tensor-op invariants over random subgraph batches
// ---------------------------------------------------------------------------

fn identity(n: usize) -> Matrix {
    let mut i = Matrix::zeros(n, n);
    for d in 0..n {
        i.set(d, d, 1.0);
    }
    i
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Matrix::random(rows, cols, 1.0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `(A·I)·B`, `A·(I·B)` and `A·B` agree exactly (multiplying by the
    /// identity reproduces entries bit-for-bit), and shapes compose as
    /// `(a×b)·(b×c) = a×c`.
    fn matmul_identity_associativity_and_shapes(
        a_rows in 1usize..7,
        inner in 1usize..7,
        b_cols in 1usize..7,
        seed in proptest::any::<u64>(),
    ) {
        let a = random_matrix(a_rows, inner, seed);
        let b = random_matrix(inner, b_cols, seed ^ 0x9e3779b97f4a7c15);
        let ab = a.matmul(&b);
        prop_assert_eq!(ab.rows(), a_rows);
        prop_assert_eq!(ab.cols(), b_cols);
        let ai = a.matmul(&identity(inner));
        prop_assert_eq!(&ai, &a);
        let ib = identity(inner).matmul(&b);
        prop_assert_eq!(&ib, &b);
        prop_assert_eq!(&ai.matmul(&b), &ab);
        prop_assert_eq!(&a.matmul(&ib), &ab);
    }

    /// Transposition is an involution (`Aᵀᵀ = A` exactly) and matches the
    /// implicit-transpose products used by the conv backward pass.
    fn transpose_involution_and_tn_nt_consistency(
        rows in 1usize..9,
        cols in 1usize..9,
        seed in proptest::any::<u64>(),
    ) {
        let a = random_matrix(rows, cols, seed);
        prop_assert_eq!(&a.transpose().transpose(), &a);
        let b = random_matrix(rows, 3, seed ^ 0x51a9_b0c3);
        // Aᵀ·B via matmul_tn equals the explicit transpose product.
        let tn = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        prop_assert_eq!(tn.rows(), cols);
        for r in 0..tn.rows() {
            for c in 0..tn.cols() {
                prop_assert!((tn.get(r, c) - explicit.get(r, c)).abs() < 1e-12);
            }
        }
    }

    /// Over random subgraph batches: CSR propagation equals the dense
    /// reference `Â·M` within 1e-12, and every Â row remains normalized.
    fn csr_propagate_matches_dense_reference(
        n in 3usize..12,
        cols in 1usize..5,
        seed in proptest::any::<u64>(),
    ) {
        let graph = random_graph(n, 4, seed);
        let mut dense = Matrix::zeros(n, n);
        for i in 0..n {
            let (cs, vs) = graph.adj_row(i);
            let mut row_sum = 0.0;
            for (&j, &w) in cs.iter().zip(vs) {
                dense.set(i, j, dense.get(i, j) + w);
                row_sum += w;
            }
            prop_assert!((row_sum - 1.0).abs() < 1e-12);
        }
        let m = random_matrix(n, cols, seed ^ 0xabcdef);
        let sparse = graph.propagate(&m);
        let reference = dense.matmul(&m);
        for r in 0..n {
            for c in 0..cols {
                prop_assert!((sparse.get(r, c) - reference.get(r, c)).abs() < 1e-12);
            }
        }
        let sparse_t = graph.propagate_transpose(&m);
        let reference_t = dense.transpose().matmul(&m);
        for r in 0..n {
            for c in 0..cols {
                prop_assert!((sparse_t.get(r, c) - reference_t.get(r, c)).abs() < 1e-12);
            }
        }
    }
}
