//! Property tests for the DGCNN: analytic gradients vs finite differences,
//! determinism under fixed seeds, and end-to-end learnability.

use autolock_gnn::{Dgcnn, DgcnnConfig, LinkPredictor, SortPoolK, SubgraphTensor};
use autolock_mlcore::Matrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A small random connected graph tensor with `n` nodes and `f` features.
/// Features are random (no ties), so the SortPooling ordering is stable under
/// the tiny perturbations used by finite differencing.
fn random_graph(n: usize, f: usize, seed: u64) -> SubgraphTensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, f);
    for r in 0..n {
        for c in 0..f {
            x.set(r, c, rng.gen_range(-1.0..1.0));
        }
    }
    // Ring + random chords, then D̃⁻¹(A+I) normalization.
    let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    for _ in 0..n / 2 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
            edges.push((a, b));
        }
    }
    let mut degree = vec![0usize; n];
    for &(a, b) in &edges {
        degree[a] += 1;
        degree[b] += 1;
    }
    let mut adj: Vec<Vec<(usize, f64)>> = (0..n).map(|i| vec![(i, 1.0)]).collect();
    for &(a, b) in &edges {
        adj[a].push((b, 1.0));
        adj[b].push((a, 1.0));
    }
    for (i, row) in adj.iter_mut().enumerate() {
        let norm = 1.0 / (degree[i] as f64 + 1.0);
        for e in row.iter_mut() {
            e.1 *= norm;
        }
    }
    SubgraphTensor::from_parts(x, adj)
}

fn small_model(feature_dim: usize, seed: u64) -> Dgcnn {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Dgcnn::new(
        DgcnnConfig {
            node_feature_dim: feature_dim,
            conv_channels: vec![5, 4, 1],
            sortpool_k: SortPoolK::Fixed(6),
            dense_hidden: vec![7],
            epochs: 10,
            batch_size: 8,
            learning_rate: 0.01,
            l2: 0.0,
            num_threads: 0,
        },
        &mut rng,
    )
}

/// Finite-difference check of every conv layer's weight gradients, through
/// tanh, channel concatenation, SortPooling and the dense head.
#[test]
fn conv_weight_gradients_match_finite_differences() {
    let graph = random_graph(9, 6, 11);
    let mut model = small_model(6, 21);
    let label = 1.0;
    let (analytic, _, _) = model.example_gradients(&graph, label);
    let eps = 1e-6;
    for (layer, layer_grads) in analytic.iter().map(|g| &g.weights).enumerate() {
        let rows = layer_grads.rows();
        let cols = layer_grads.cols();
        for r in 0..rows {
            for c in 0..cols {
                let original = model.conv_mut(layer).weights().get(r, c);
                model
                    .conv_mut(layer)
                    .weights_mut()
                    .set(r, c, original + eps);
                let up = model.example_loss(&graph, label);
                model
                    .conv_mut(layer)
                    .weights_mut()
                    .set(r, c, original - eps);
                let down = model.example_loss(&graph, label);
                model.conv_mut(layer).weights_mut().set(r, c, original);
                let fd = (up - down) / (2.0 * eps);
                let a = layer_grads.get(r, c);
                assert!(
                    (fd - a).abs() < 1e-5 * (1.0 + fd.abs().max(a.abs())),
                    "conv {layer} weight ({r},{c}): fd {fd} vs analytic {a}"
                );
            }
        }
    }
}

/// Finite-difference check of conv bias gradients (exercises the bias path
/// separately from the weights).
#[test]
fn conv_bias_gradients_match_finite_differences() {
    let graph = random_graph(8, 5, 13);
    let mut model = small_model(5, 23);
    let label = 0.0;
    // Recompute analytic bias grads via the public example_gradients on a
    // fresh forward/backward pass of each bias entry using finite differences
    // of the loss only (bias grads are validated implicitly through training
    // in other tests; here we check the loss actually moves as tanh' says).
    let eps = 1e-6;
    for layer in 0..3 {
        let out_dim = model.conv_mut(layer).out_dim();
        for j in 0..out_dim {
            let base = model.example_loss(&graph, label);
            model.conv_mut(layer).bias_mut()[j] += eps;
            let up = model.example_loss(&graph, label);
            model.conv_mut(layer).bias_mut()[j] -= eps;
            let fd = (up - base) / eps;
            assert!(fd.is_finite(), "conv {layer} bias {j} produced {fd}");
        }
    }
}

/// SortPooling routes gradients only through the selected rows: perturbing an
/// unselected node's isolated feature must not change the loss.
#[test]
fn sortpool_gradient_routing_is_selective() {
    // k = 6 over 9 nodes: at least 3 nodes are dropped by pooling.
    let graph = random_graph(9, 6, 31);
    let model = small_model(6, 41);
    let label = 1.0;
    let (grads, _, _) = model.example_gradients(&graph, label);
    // The conv-1 gradient must be non-trivial (something was selected)...
    assert!(
        grads[0].weights.norm() > 0.0,
        "conv gradients vanished entirely"
    );
    // ...and the loss must be reproducible (pure function).
    assert_eq!(
        model.example_loss(&graph, label),
        model.example_loss(&graph, label)
    );
}

/// Same seed ⇒ identical model, training trajectory and scores; different
/// seed ⇒ different scores.
#[test]
fn training_is_deterministic_under_fixed_seed() {
    let graphs: Vec<SubgraphTensor> = (0..12).map(|i| random_graph(8, 6, 100 + i)).collect();
    let labels: Vec<f64> = (0..12).map(|i| f64::from(i % 2 == 0)).collect();
    let run = |seed: u64| -> Vec<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut model = Dgcnn::new(DgcnnConfig::for_features(6), &mut rng);
        model.fit(&graphs, &labels, &mut rng);
        graphs.iter().map(|g| model.score(g)).collect()
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a, b, "same seed must reproduce identical scores");
    let c = run(8);
    assert_ne!(a, c, "different seeds should explore different models");
}

/// The DGCNN must be able to learn a simple structural property (dense vs
/// sparse neighbourhoods) from labelled subgraphs.
#[test]
fn learns_to_separate_structurally_different_graphs() {
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    // Class 1: high-feature nodes; class 0: low-feature nodes. The model
    // must pick this up through message passing + pooling.
    for i in 0..30 {
        let mut g = random_graph(8, 6, 500 + i);
        let shift = if i % 2 == 0 { 0.8 } else { -0.8 };
        let mut x = g.features().clone();
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                x.set(r, c, x.get(r, c) + shift);
            }
        }
        // Rebuild with shifted features, same adjacency.
        g = g.with_features(x);
        graphs.push(g);
        labels.push(f64::from(i % 2 == 0));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut model = Dgcnn::new(
        DgcnnConfig {
            epochs: 60,
            ..DgcnnConfig::for_features(6)
        },
        &mut rng,
    );
    let final_loss = model.train(&graphs, &labels, &mut rng);
    assert!(final_loss < 0.3, "final training loss {final_loss}");
    let correct = graphs
        .iter()
        .zip(&labels)
        .filter(|(g, &y)| (model.score(g) > 0.5) == (y > 0.5))
        .count();
    assert!(
        correct >= 27,
        "model should separate the classes, got {correct}/30"
    );
}
