//! Serialization contract for the model registry: a trained [`Dgcnn`]
//! written through serde and read back must be the *same model* — equal
//! parameters and optimizer state, bit-identical scores, and able to keep
//! training from where it left off.

use autolock_gnn::{Dgcnn, DgcnnConfig, LinkPredictor, SubgraphTensor};
use autolock_mlcore::Matrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A small random connected graph tensor with `n` nodes and `f` features.
fn random_graph(n: usize, f: usize, seed: u64) -> SubgraphTensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, f);
    for r in 0..n {
        for c in 0..f {
            x.set(r, c, rng.gen_range(-1.0..1.0));
        }
    }
    let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    for _ in 0..n / 2 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
            edges.push((a, b));
        }
    }
    let mut degree = vec![0usize; n];
    for &(a, b) in &edges {
        degree[a] += 1;
        degree[b] += 1;
    }
    let mut adj: Vec<Vec<(usize, f64)>> = (0..n).map(|i| vec![(i, 1.0)]).collect();
    for &(a, b) in &edges {
        adj[a].push((b, 1.0));
        adj[b].push((a, 1.0));
    }
    for (i, row) in adj.iter_mut().enumerate() {
        let norm = 1.0 / (degree[i] as f64 + 1.0);
        for e in row.iter_mut() {
            e.1 *= norm;
        }
    }
    SubgraphTensor::from_parts(x, adj)
}

fn dataset(count: usize) -> (Vec<SubgraphTensor>, Vec<f64>) {
    let graphs: Vec<SubgraphTensor> = (0..count)
        .map(|i| random_graph(6 + i % 5, 6, 4_100 + i as u64))
        .collect();
    let labels: Vec<f64> = (0..count).map(|i| f64::from(i % 2 == 0)).collect();
    (graphs, labels)
}

fn trained_model(graphs: &[SubgraphTensor], labels: &[f64]) -> Dgcnn {
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let mut model = Dgcnn::new(
        DgcnnConfig {
            epochs: 4,
            batch_size: 8,
            ..DgcnnConfig::for_features(6)
        },
        &mut rng,
    );
    model.train(graphs, labels, &mut rng);
    model
}

#[test]
fn round_trip_preserves_model_and_scores_exactly() {
    let (graphs, labels) = dataset(12);
    let model = trained_model(&graphs, &labels);
    let json = serde_json::to_string(&model).expect("serialize");
    let restored: Dgcnn = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(restored, model);
    assert_eq!(restored.config(), model.config());
    let original_scores = model.score_batch(&graphs);
    let restored_scores = restored.score_batch(&graphs);
    for (a, b) in original_scores.iter().zip(&restored_scores) {
        assert_eq!(a.to_bits(), b.to_bits(), "score diverged after round trip");
    }
}

/// Optimizer state survives the round trip too: continuing training on the
/// restored model matches continuing on the original bit-for-bit. This is
/// what lets the service registry warm-start instead of retraining.
#[test]
fn round_trip_resumes_training_bit_identically() {
    let (graphs, labels) = dataset(12);
    let mut original = trained_model(&graphs, &labels);
    let json = serde_json::to_string(&original).expect("serialize");
    let mut restored: Dgcnn = serde_json::from_str(&json).expect("deserialize");

    let mut rng_a = ChaCha8Rng::seed_from_u64(9);
    let mut rng_b = ChaCha8Rng::seed_from_u64(9);
    let loss_a = original.train(&graphs, &labels, &mut rng_a);
    let loss_b = restored.train(&graphs, &labels, &mut rng_b);
    assert_eq!(loss_a.to_bits(), loss_b.to_bits());
    assert_eq!(original.score_batch(&graphs), restored.score_batch(&graphs));
}
