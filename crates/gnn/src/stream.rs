//! Streamed training-set access: build each example's tensor on demand.
//!
//! The original training pipeline materialized every [`SubgraphTensor`] of
//! the training set up front and held all of them alive for the whole run.
//! On ISCAS-sized netlists the enclosing subgraphs grow into the thousands
//! of nodes, so that tensor set — not the model — was the memory hog that
//! kept the DGCNN backend off the structured suite tier. A [`GraphSource`]
//! inverts the ownership: training asks for example `i`'s tensor when (and
//! only when) a worker is about to run its forward/backward pass, and hands
//! the tensor back through [`GraphSource::recycle`] as soon as the example's
//! gradients have been reduced. Peak tensor memory becomes
//! `O(concurrent workers)` instead of `O(training set)`.
//!
//! Determinism: the source is **pure** — `tensor(i)` must return the same
//! tensor values every time it is called (sources backed by the attack's
//! subgraph cache satisfy this because extraction is deterministic). Under
//! that contract the streamed trainer visits examples in exactly the order
//! the materialized one did, so the training trajectory is bit-for-bit
//! identical — `crates/gnn/tests/determinism.rs` pins streamed vs
//! materialized with exact equality.

use crate::SubgraphTensor;
use std::ops::Deref;

/// A tensor handed out by a [`GraphSource`]: borrowed from a materialized
/// set, or freshly built (and recyclable) by a streaming source.
pub enum SourceTensor<'a> {
    /// A reference into an already-materialized training set.
    Borrowed(&'a SubgraphTensor),
    /// A tensor built on demand; give it back via [`GraphSource::recycle`].
    Owned(SubgraphTensor),
}

impl Deref for SourceTensor<'_> {
    type Target = SubgraphTensor;

    fn deref(&self) -> &SubgraphTensor {
        match self {
            SourceTensor::Borrowed(t) => t,
            SourceTensor::Owned(t) => t,
        }
    }
}

/// A labelled training set served one example at a time. See the [module
/// documentation](self) for the purity contract.
pub trait GraphSource: Sync {
    /// Number of examples.
    fn len(&self) -> usize;

    /// `true` when the source holds no examples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Label of example `idx` (1.0 = link, 0.0 = non-link).
    fn label(&self, idx: usize) -> f64;

    /// Node count of example `idx`'s subgraph **without** building the
    /// tensor — what adaptive SortPooling's percentile rule needs.
    fn num_nodes(&self, idx: usize) -> usize;

    /// The tensor of example `idx`. Must be pure (identical values on every
    /// call); called once per example per epoch by the streamed trainer.
    fn tensor(&self, idx: usize) -> SourceTensor<'_>;

    /// Returns an [`SourceTensor::Owned`] tensor's storage to the source
    /// (e.g. into a scratch pool). The default drops it.
    fn recycle(&self, tensor: SubgraphTensor) {
        drop(tensor);
    }
}

/// The materialized-set adaptor: serves borrowed tensors straight from
/// slices. [`crate::Dgcnn::train`] wraps its inputs in this, so the
/// slice-based API and the streamed API share one training pipeline.
pub struct SliceSource<'a> {
    graphs: &'a [SubgraphTensor],
    labels: &'a [f64],
}

impl<'a> SliceSource<'a> {
    /// Wraps parallel graph/label slices.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    pub fn new(graphs: &'a [SubgraphTensor], labels: &'a [f64]) -> Self {
        assert_eq!(graphs.len(), labels.len(), "one label per graph required");
        SliceSource { graphs, labels }
    }
}

impl GraphSource for SliceSource<'_> {
    fn len(&self) -> usize {
        self.graphs.len()
    }

    fn label(&self, idx: usize) -> f64 {
        self.labels[idx]
    }

    fn num_nodes(&self, idx: usize) -> usize {
        self.graphs[idx].num_nodes()
    }

    fn tensor(&self, idx: usize) -> SourceTensor<'_> {
        SourceTensor::Borrowed(&self.graphs[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolock_mlcore::Matrix;

    fn tiny_tensor(n: usize) -> SubgraphTensor {
        let adj: Vec<Vec<(usize, f64)>> = (0..n).map(|i| vec![(i, 1.0)]).collect();
        SubgraphTensor::from_parts(Matrix::zeros(n, 2), adj)
    }

    #[test]
    fn slice_source_serves_borrowed_views() {
        let graphs = vec![tiny_tensor(3), tiny_tensor(5)];
        let labels = vec![1.0, 0.0];
        let source = SliceSource::new(&graphs, &labels);
        assert_eq!(source.len(), 2);
        assert!(!source.is_empty());
        assert_eq!(source.label(1), 0.0);
        assert_eq!(source.num_nodes(1), 5);
        let t = source.tensor(0);
        assert_eq!(t.num_nodes(), 3);
        assert!(matches!(t, SourceTensor::Borrowed(_)));
    }

    #[test]
    #[should_panic(expected = "one label per graph")]
    fn mismatched_slices_panic() {
        let graphs = vec![tiny_tensor(3)];
        SliceSource::new(&graphs, &[]);
    }
}
