//! Enclosing subgraphs as tensors: normalized adjacency + node features.

use autolock_mlcore::Matrix;
use autolock_netlist::graph::EnclosingSubgraph;
use autolock_netlist::{GateKind, Netlist};

/// An enclosing subgraph prepared for the DGCNN: node features `X` and the
/// degree-normalized adjacency `Â = D̃⁻¹(A + I)` stored row-sparse.
#[derive(Debug, Clone)]
pub struct SubgraphTensor {
    /// `n × f` node-feature matrix.
    x: Matrix,
    /// Row-sparse normalized adjacency: `adj[i]` lists `(j, Â_ij)`.
    adj: Vec<Vec<(usize, f64)>>,
}

impl SubgraphTensor {
    /// Builds the tensor for an extracted enclosing subgraph.
    ///
    /// Node features are, per node: the gate-kind one-hot
    /// ([`GateKind::NUM_CODES`] entries), the DRNL label as a one-hot clipped
    /// into `max_drnl` buckets (the same labelling MuxLink feeds its DGCNN),
    /// and the subgraph-normalized degree. The adjacency includes self-loops
    /// and is normalized by the (self-loop-augmented) degree, so each
    /// convolution averages over the closed neighbourhood.
    pub fn from_enclosing(netlist: &Netlist, sg: &EnclosingSubgraph, max_drnl: usize) -> Self {
        let n = sg.nodes.len();
        let max_drnl = max_drnl.max(1);
        let f = GateKind::NUM_CODES + max_drnl + 1;

        // Local degrees (within the subgraph).
        let mut degree = vec![0usize; n];
        for &(i, j) in &sg.edges {
            degree[i] += 1;
            degree[j] += 1;
        }
        let max_degree = degree.iter().copied().max().unwrap_or(0).max(1) as f64;

        let mut x = Matrix::zeros(n, f);
        for (idx, &node) in sg.nodes.iter().enumerate() {
            let row = x.row_mut(idx);
            row[netlist.gate(node).kind.code()] = 1.0;
            let bucket = sg.drnl[idx].min(max_drnl - 1);
            row[GateKind::NUM_CODES + bucket] = 1.0;
            row[f - 1] = degree[idx] as f64 / max_degree;
        }

        // Â = D̃⁻¹ (A + I) with D̃_ii = degree_i + 1 (self-loop included).
        let mut adj: Vec<Vec<(usize, f64)>> = (0..n).map(|_| Vec::new()).collect();
        for (i, row) in adj.iter_mut().enumerate() {
            row.push((i, 1.0));
        }
        for &(i, j) in &sg.edges {
            adj[i].push((j, 1.0));
            adj[j].push((i, 1.0));
        }
        for (i, row) in adj.iter_mut().enumerate() {
            let norm = 1.0 / (degree[i] as f64 + 1.0);
            for entry in row.iter_mut() {
                entry.1 *= norm;
            }
        }
        SubgraphTensor { x, adj }
    }

    /// Builds a tensor directly from parts (used by tests and benchmarks).
    ///
    /// # Panics
    ///
    /// Panics if `adj.len() != x.rows()`.
    pub fn from_parts(x: Matrix, adj: Vec<Vec<(usize, f64)>>) -> Self {
        assert_eq!(adj.len(), x.rows(), "adjacency rows must match node count");
        SubgraphTensor { x, adj }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.x.rows()
    }

    /// Per-node feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.x.cols()
    }

    /// The node-feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.x
    }

    /// The row-sparse normalized adjacency.
    pub fn adjacency(&self) -> &[Vec<(usize, f64)>] {
        &self.adj
    }

    /// The feature dimensionality produced by [`Self::from_enclosing`] for a
    /// given DRNL clip value.
    pub fn feature_dim_for(max_drnl: usize) -> usize {
        GateKind::NUM_CODES + max_drnl.max(1) + 1
    }

    /// Sparse product `Â · m`.
    ///
    /// # Panics
    ///
    /// Panics if `m.rows() != num_nodes()`.
    pub fn propagate(&self, m: &Matrix) -> Matrix {
        assert_eq!(m.rows(), self.num_nodes(), "propagate shape mismatch");
        let mut out = Matrix::zeros(m.rows(), m.cols());
        for (i, row) in self.adj.iter().enumerate() {
            for &(j, w) in row {
                let src = m.row(j);
                let dst = out.row_mut(i);
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += w * s;
                }
            }
        }
        out
    }

    /// Sparse product with the transpose, `Âᵀ · m` (the backward direction of
    /// [`Self::propagate`]).
    ///
    /// # Panics
    ///
    /// Panics if `m.rows() != num_nodes()`.
    pub fn propagate_transpose(&self, m: &Matrix) -> Matrix {
        assert_eq!(m.rows(), self.num_nodes(), "propagate shape mismatch");
        let mut out = Matrix::zeros(m.rows(), m.cols());
        for (i, row) in self.adj.iter().enumerate() {
            let src = m.row(i).to_vec();
            for &(j, w) in row {
                let dst = out.row_mut(j);
                for (d, &s) in dst.iter_mut().zip(&src) {
                    *d += w * s;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolock_netlist::graph::{enclosing_subgraph, UndirectedGraph};
    use autolock_netlist::{GateKind, Netlist};

    fn tiny() -> (Netlist, SubgraphTensor) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate("g", GateKind::And, vec![a, b]).unwrap();
        let y = nl.add_gate("y", GateKind::Not, vec![g]).unwrap();
        nl.mark_output(y);
        let graph = UndirectedGraph::from_netlist_without_edges(&nl, &[(a, g)]);
        let sg = enclosing_subgraph(&graph, a, g, 2);
        let t = SubgraphTensor::from_enclosing(&nl, &sg, 8);
        (nl, t)
    }

    #[test]
    fn features_have_expected_shape_and_content() {
        let (_, t) = tiny();
        assert_eq!(t.feature_dim(), SubgraphTensor::feature_dim_for(8));
        assert!(t.num_nodes() >= 2);
        // Each row: exactly one kind one-hot, one DRNL one-hot, bounded degree.
        for i in 0..t.num_nodes() {
            let row = t.features().row(i);
            let kind_ones: f64 = row[..GateKind::NUM_CODES].iter().sum();
            let drnl_ones: f64 = row[GateKind::NUM_CODES..GateKind::NUM_CODES + 8]
                .iter()
                .sum();
            assert_eq!(kind_ones, 1.0);
            assert_eq!(drnl_ones, 1.0);
            let deg = row[t.feature_dim() - 1];
            assert!((0.0..=1.0).contains(&deg));
        }
    }

    #[test]
    fn adjacency_rows_are_normalized() {
        let (_, t) = tiny();
        for row in &t.adj {
            let total: f64 = row.iter().map(|&(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-12, "row sums to {total}");
        }
    }

    #[test]
    fn propagate_matches_dense_reference() {
        let (_, t) = tiny();
        let n = t.num_nodes();
        // Dense Â.
        let mut dense = Matrix::zeros(n, n);
        for (i, row) in t.adj.iter().enumerate() {
            for &(j, w) in row {
                dense.set(i, j, dense.get(i, j) + w);
            }
        }
        let m = Matrix::from_vec(n, 2, (0..n * 2).map(|v| v as f64 * 0.3 - 1.0).collect());
        let sparse = t.propagate(&m);
        let reference = dense.matmul(&m);
        for r in 0..n {
            for c in 0..2 {
                assert!((sparse.get(r, c) - reference.get(r, c)).abs() < 1e-12);
            }
        }
        // Transpose path.
        let sparse_t = t.propagate_transpose(&m);
        let reference_t = dense.transpose().matmul(&m);
        for r in 0..n {
            for c in 0..2 {
                assert!((sparse_t.get(r, c) - reference_t.get(r, c)).abs() < 1e-12);
            }
        }
    }
}
