//! Enclosing subgraphs as tensors: normalized adjacency + node features.

use autolock_mlcore::scratch::ScratchPool;
use autolock_mlcore::Matrix;
use autolock_netlist::graph::EnclosingSubgraph;
use autolock_netlist::{GateKind, Netlist};

/// An enclosing subgraph prepared for the DGCNN: node features `X` and the
/// degree-normalized adjacency `Â = D̃⁻¹(A + I)`.
///
/// The adjacency is stored in flat CSR (compressed sparse row) form — one
/// contiguous `row_ptr`/`col`/`val` triple instead of a `Vec` of per-row
/// `Vec`s — so [`SubgraphTensor::propagate`] streams through two flat arrays
/// with no pointer chasing. Together with the row-major [`Matrix`] this keeps
/// the conv hot loop (the dominant DGCNN kernel) cache-friendly, and the
/// tensor is `Send + Sync`, which is what lets per-example forward/backward
/// passes fan out across rayon threads during batch training.
#[derive(Debug, Clone)]
pub struct SubgraphTensor {
    /// `n × f` node-feature matrix.
    x: Matrix,
    /// CSR row boundaries: row `i`'s entries live at `row_ptr[i]..row_ptr[i+1]`.
    row_ptr: Vec<usize>,
    /// CSR column indices.
    col: Vec<usize>,
    /// CSR values (`Â_ij`), aligned with `col`.
    val: Vec<f64>,
}

impl SubgraphTensor {
    /// Builds the tensor for an extracted enclosing subgraph.
    ///
    /// Node features are, per node: the gate-kind one-hot
    /// ([`GateKind::NUM_CODES`] entries), the DRNL label as a one-hot clipped
    /// into `max_drnl` buckets (the same labelling MuxLink feeds its DGCNN),
    /// and the subgraph-normalized degree. The adjacency includes self-loops
    /// and is normalized by the (self-loop-augmented) degree, so each
    /// convolution averages over the closed neighbourhood.
    pub fn from_enclosing(netlist: &Netlist, sg: &EnclosingSubgraph, max_drnl: usize) -> Self {
        Self::assemble(netlist, sg, max_drnl, None)
    }

    /// [`Self::from_enclosing`] with all storage drawn from (and transient
    /// buffers returned to) a [`ScratchPool`] — the allocation-free hot path
    /// of streamed training. The produced tensor is **bit-for-bit identical**
    /// to the unpooled constructor's (recycled buffers are fully
    /// overwritten); give its storage back with [`Self::recycle`] once the
    /// example is consumed.
    pub fn from_enclosing_pooled(
        netlist: &Netlist,
        sg: &EnclosingSubgraph,
        max_drnl: usize,
        scratch: &ScratchPool,
    ) -> Self {
        Self::assemble(netlist, sg, max_drnl, Some(scratch))
    }

    /// Returns this tensor's heap storage to a scratch pool for reuse by the
    /// next [`Self::from_enclosing_pooled`] call.
    pub fn recycle(self, scratch: &ScratchPool) {
        scratch.put_f64(self.x.into_vec());
        scratch.put_f64(self.val);
        scratch.put_usize(self.col);
        scratch.put_usize(self.row_ptr);
    }

    fn assemble(
        netlist: &Netlist,
        sg: &EnclosingSubgraph,
        max_drnl: usize,
        scratch: Option<&ScratchPool>,
    ) -> Self {
        let take_f64 = |len: usize| match scratch {
            Some(pool) => pool.take_f64(len),
            None => vec![0.0; len],
        };
        let take_usize = |len: usize| match scratch {
            Some(pool) => pool.take_usize(len),
            None => vec![0usize; len],
        };
        let n = sg.nodes.len();
        let max_drnl = max_drnl.max(1);
        let f = GateKind::NUM_CODES + max_drnl + 1;

        // Local degrees (within the subgraph).
        let mut degree = take_usize(n);
        for &(i, j) in &sg.edges {
            degree[i] += 1;
            degree[j] += 1;
        }
        let max_degree = degree.iter().copied().max().unwrap_or(0).max(1) as f64;

        let mut x = Matrix::from_vec(n, f, take_f64(n * f));
        for (idx, &node) in sg.nodes.iter().enumerate() {
            let row = x.row_mut(idx);
            row[netlist.gate(node).kind.code()] = 1.0;
            let bucket = sg.drnl[idx].min(max_drnl - 1);
            row[GateKind::NUM_CODES + bucket] = 1.0;
            row[f - 1] = degree[idx] as f64 / max_degree;
        }

        // Â = D̃⁻¹ (A + I) with D̃_ii = degree_i + 1 (self-loop included),
        // assembled straight into CSR: count entries per row, prefix-sum into
        // row_ptr, then scatter (self-loop first, then incident edges).
        let mut row_ptr = take_usize(n + 1);
        for (i, &d) in degree.iter().enumerate() {
            row_ptr[i + 1] = d + 1; // self-loop + incident edges
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let nnz = row_ptr[n];
        let mut col = take_usize(nnz);
        let mut val = take_f64(nnz);
        let mut cursor = take_usize(n);
        cursor.copy_from_slice(&row_ptr[..n]);
        for (i, c) in cursor.iter_mut().enumerate() {
            col[*c] = i;
            *c += 1;
        }
        for &(i, j) in &sg.edges {
            col[cursor[i]] = j;
            cursor[i] += 1;
            col[cursor[j]] = i;
            cursor[j] += 1;
        }
        for i in 0..n {
            let norm = 1.0 / (degree[i] as f64 + 1.0);
            for v in &mut val[row_ptr[i]..row_ptr[i + 1]] {
                *v = norm;
            }
        }
        if let Some(pool) = scratch {
            pool.put_usize(degree);
            pool.put_usize(cursor);
        }
        SubgraphTensor {
            x,
            row_ptr,
            col,
            val,
        }
    }

    /// Builds a tensor directly from parts (used by tests and benchmarks);
    /// `adj[i]` lists row `i`'s `(column, Â_ij)` entries, which are packed
    /// into the internal CSR layout.
    ///
    /// # Panics
    ///
    /// Panics if `adj.len() != x.rows()` or any column index is out of range.
    pub fn from_parts(x: Matrix, adj: Vec<Vec<(usize, f64)>>) -> Self {
        let n = x.rows();
        assert_eq!(adj.len(), n, "adjacency rows must match node count");
        let nnz: usize = adj.iter().map(Vec::len).sum();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col = Vec::with_capacity(nnz);
        let mut val = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for row in &adj {
            for &(j, w) in row {
                assert!(j < n, "adjacency column {j} out of range for {n} nodes");
                col.push(j);
                val.push(w);
            }
            row_ptr.push(col.len());
        }
        SubgraphTensor {
            x,
            row_ptr,
            col,
            val,
        }
    }

    /// A copy of this tensor with the same adjacency but different node
    /// features (tests perturb features while keeping the graph fixed).
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != num_nodes()`.
    pub fn with_features(&self, x: Matrix) -> Self {
        assert_eq!(x.rows(), self.num_nodes(), "feature rows must match nodes");
        SubgraphTensor {
            x,
            row_ptr: self.row_ptr.clone(),
            col: self.col.clone(),
            val: self.val.clone(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.x.rows()
    }

    /// Number of stored adjacency entries (including self-loops).
    pub fn num_entries(&self) -> usize {
        self.col.len()
    }

    /// Per-node feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.x.cols()
    }

    /// The node-feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.x
    }

    /// Row `i` of the normalized adjacency as parallel `(columns, values)`
    /// slices of the CSR storage.
    pub fn adj_row(&self, i: usize) -> (&[usize], &[f64]) {
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.col[span.clone()], &self.val[span])
    }

    /// The feature dimensionality produced by [`Self::from_enclosing`] for a
    /// given DRNL clip value.
    pub fn feature_dim_for(max_drnl: usize) -> usize {
        GateKind::NUM_CODES + max_drnl.max(1) + 1
    }

    /// Sparse product `Â · m`.
    ///
    /// # Panics
    ///
    /// Panics if `m.rows() != num_nodes()`.
    pub fn propagate(&self, m: &Matrix) -> Matrix {
        assert_eq!(m.rows(), self.num_nodes(), "propagate shape mismatch");
        let mut out = Matrix::zeros(m.rows(), m.cols());
        for i in 0..self.num_nodes() {
            let (cols, vals) = (
                &self.col[self.row_ptr[i]..self.row_ptr[i + 1]],
                &self.val[self.row_ptr[i]..self.row_ptr[i + 1]],
            );
            let dst = out.row_mut(i);
            for (&j, &w) in cols.iter().zip(vals) {
                for (d, &s) in dst.iter_mut().zip(m.row(j)) {
                    *d += w * s;
                }
            }
        }
        out
    }

    /// Sparse product with the transpose, `Âᵀ · m` (the backward direction of
    /// [`Self::propagate`]).
    ///
    /// # Panics
    ///
    /// Panics if `m.rows() != num_nodes()`.
    pub fn propagate_transpose(&self, m: &Matrix) -> Matrix {
        assert_eq!(m.rows(), self.num_nodes(), "propagate shape mismatch");
        let mut out = Matrix::zeros(m.rows(), m.cols());
        for i in 0..self.num_nodes() {
            let span = self.row_ptr[i]..self.row_ptr[i + 1];
            for (&j, &w) in self.col[span.clone()].iter().zip(&self.val[span]) {
                let dst = out.row_mut(j);
                for (d, &s) in dst.iter_mut().zip(m.row(i)) {
                    *d += w * s;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolock_netlist::graph::{enclosing_subgraph, UndirectedGraph};
    use autolock_netlist::{GateKind, Netlist};

    fn tiny() -> (Netlist, SubgraphTensor) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate("g", GateKind::And, vec![a, b]).unwrap();
        let y = nl.add_gate("y", GateKind::Not, vec![g]).unwrap();
        nl.mark_output(y);
        let graph = UndirectedGraph::from_netlist_without_edges(&nl, &[(a, g)]);
        let sg = enclosing_subgraph(&graph, a, g, 2);
        let t = SubgraphTensor::from_enclosing(&nl, &sg, 8);
        (nl, t)
    }

    #[test]
    fn features_have_expected_shape_and_content() {
        let (_, t) = tiny();
        assert_eq!(t.feature_dim(), SubgraphTensor::feature_dim_for(8));
        assert!(t.num_nodes() >= 2);
        // Each row: exactly one kind one-hot, one DRNL one-hot, bounded degree.
        for i in 0..t.num_nodes() {
            let row = t.features().row(i);
            let kind_ones: f64 = row[..GateKind::NUM_CODES].iter().sum();
            let drnl_ones: f64 = row[GateKind::NUM_CODES..GateKind::NUM_CODES + 8]
                .iter()
                .sum();
            assert_eq!(kind_ones, 1.0);
            assert_eq!(drnl_ones, 1.0);
            let deg = row[t.feature_dim() - 1];
            assert!((0.0..=1.0).contains(&deg));
        }
    }

    #[test]
    fn adjacency_rows_are_normalized() {
        let (_, t) = tiny();
        for i in 0..t.num_nodes() {
            let (cols, vals) = t.adj_row(i);
            assert_eq!(cols.len(), vals.len());
            assert!(cols.contains(&i), "row {i} must contain its self-loop");
            let total: f64 = vals.iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "row sums to {total}");
        }
    }

    #[test]
    fn csr_round_trips_through_from_parts() {
        let (_, t) = tiny();
        let n = t.num_nodes();
        let adj: Vec<Vec<(usize, f64)>> = (0..n)
            .map(|i| {
                let (cols, vals) = t.adj_row(i);
                cols.iter().copied().zip(vals.iter().copied()).collect()
            })
            .collect();
        let rebuilt = SubgraphTensor::from_parts(t.features().clone(), adj);
        assert_eq!(rebuilt.num_entries(), t.num_entries());
        for i in 0..n {
            assert_eq!(rebuilt.adj_row(i), t.adj_row(i));
        }
    }

    #[test]
    fn with_features_keeps_adjacency() {
        let (_, t) = tiny();
        let shifted = t.with_features(t.features().map(|v| v + 1.0));
        assert_eq!(shifted.num_entries(), t.num_entries());
        for i in 0..t.num_nodes() {
            assert_eq!(shifted.adj_row(i), t.adj_row(i));
            assert_eq!(shifted.features().get(i, 0), t.features().get(i, 0) + 1.0);
        }
    }

    #[test]
    fn pooled_construction_is_bit_identical_and_recycles() {
        let (nl, t) = tiny();
        let graph = UndirectedGraph::from_netlist_without_edges(
            &nl,
            &[(nl.find("a").unwrap(), nl.find("g").unwrap())],
        );
        let sg = enclosing_subgraph(&graph, nl.find("a").unwrap(), nl.find("g").unwrap(), 2);
        let pool = ScratchPool::new();
        // Two rounds: the second reuses the first round's recycled buffers.
        for _ in 0..2 {
            let pooled = SubgraphTensor::from_enclosing_pooled(&nl, &sg, 8, &pool);
            assert_eq!(pooled.features(), t.features());
            assert_eq!(pooled.num_entries(), t.num_entries());
            for i in 0..t.num_nodes() {
                assert_eq!(pooled.adj_row(i), t.adj_row(i));
            }
            pooled.recycle(&pool);
        }
        assert!(pool.retained() > 0, "recycled buffers must be retained");
    }

    #[test]
    fn propagate_matches_dense_reference() {
        let (_, t) = tiny();
        let n = t.num_nodes();
        // Dense Â.
        let mut dense = Matrix::zeros(n, n);
        for i in 0..n {
            let (cols, vals) = t.adj_row(i);
            for (&j, &w) in cols.iter().zip(vals) {
                dense.set(i, j, dense.get(i, j) + w);
            }
        }
        let m = Matrix::from_vec(n, 2, (0..n * 2).map(|v| v as f64 * 0.3 - 1.0).collect());
        let sparse = t.propagate(&m);
        let reference = dense.matmul(&m);
        for r in 0..n {
            for c in 0..2 {
                assert!((sparse.get(r, c) - reference.get(r, c)).abs() < 1e-12);
            }
        }
        // Transpose path.
        let sparse_t = t.propagate_transpose(&m);
        let reference_t = dense.transpose().matmul(&m);
        for r in 0..n {
            for c in 0..2 {
                assert!((sparse_t.get(r, c) - reference_t.get(r, c)).abs() < 1e-12);
            }
        }
    }
}
