//! The DGCNN spatial graph-convolution layer.

use crate::SubgraphTensor;
use autolock_mlcore::optim::{AdamParams, AdamState, AdamVecState};
use autolock_mlcore::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One graph convolution: `X' = tanh(Â X W + b)` with degree-normalized
/// message passing (`Â` lives in the [`SubgraphTensor`]).
///
/// Serializable (weights, biases and optimizer state) so trained models can
/// be persisted in the service's model registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphConv {
    weights: Matrix,
    bias: Vec<f64>,
    opt_w: AdamState,
    opt_b: AdamVecState,
}

/// Cached forward activations needed for the backward pass.
#[derive(Debug, Clone)]
pub struct ConvCache {
    /// `Â X` (aggregated inputs).
    pub aggregated: Matrix,
    /// Layer output `tanh(Â X W + b)`.
    pub output: Matrix,
}

/// Parameter gradients of one conv layer.
#[derive(Debug, Clone)]
pub struct ConvGrads {
    /// dL/dW.
    pub weights: Matrix,
    /// dL/db.
    pub bias: Vec<f64>,
}

impl ConvGrads {
    /// Zero gradients shaped like `layer`.
    pub fn zeros_like(layer: &GraphConv) -> Self {
        ConvGrads {
            weights: Matrix::zeros(layer.weights.rows(), layer.weights.cols()),
            bias: vec![0.0; layer.bias.len()],
        }
    }

    /// Accumulates another gradient contribution.
    pub fn add(&mut self, other: &ConvGrads) {
        self.weights.add_scaled(1.0, &other.weights);
        for (a, b) in self.bias.iter_mut().zip(&other.bias) {
            *a += b;
        }
    }

    /// Scales the gradient (e.g. by 1/batch).
    pub fn scale(&mut self, alpha: f64) {
        self.weights.scale(alpha);
        for b in self.bias.iter_mut() {
            *b *= alpha;
        }
    }
}

impl GraphConv {
    /// Creates a layer mapping `in_dim` channels to `out_dim` channels, with
    /// Glorot-uniform initial weights.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        let scale = (6.0 / (in_dim + out_dim) as f64).sqrt();
        GraphConv {
            weights: Matrix::random(in_dim, out_dim, scale, rng),
            bias: vec![0.0; out_dim],
            opt_w: AdamState::new(in_dim, out_dim),
            opt_b: AdamVecState::new(out_dim),
        }
    }

    /// Input channel count.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output channel count.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Forward pass over one subgraph.
    pub fn forward(&self, graph: &SubgraphTensor, x: &Matrix) -> ConvCache {
        let aggregated = graph.propagate(x);
        let mut z = aggregated.matmul(&self.weights);
        for r in 0..z.rows() {
            let row = z.row_mut(r);
            for (v, b) in row.iter_mut().zip(&self.bias) {
                *v += b;
            }
        }
        let output = z.map(f64::tanh);
        ConvCache { aggregated, output }
    }

    /// Backward pass: given dL/d(output), returns the parameter gradients and
    /// dL/d(input).
    pub fn backward(
        &self,
        graph: &SubgraphTensor,
        cache: &ConvCache,
        grad_output: &Matrix,
    ) -> (ConvGrads, Matrix) {
        // Through tanh: dZ = dOut ∘ (1 - out²). `grad_z` and the cache are
        // distinct tensors, so both flat row slices stream without copies.
        let mut grad_z = grad_output.clone();
        for r in 0..grad_z.rows() {
            let row = grad_z.row_mut(r);
            for (g, &o) in row.iter_mut().zip(cache.output.row(r)) {
                *g *= 1.0 - o * o;
            }
        }
        let grad_w = cache.aggregated.matmul_tn(&grad_z);
        let mut grad_b = vec![0.0; self.bias.len()];
        for r in 0..grad_z.rows() {
            for (b, g) in grad_b.iter_mut().zip(grad_z.row(r)) {
                *b += g;
            }
        }
        // dL/d(ÂX) = dZ Wᵀ, then back through the (symmetric-pattern but
        // asymmetric-weight) propagation: dX = Âᵀ (dZ Wᵀ).
        let grad_aggregated = grad_z.matmul_nt(&self.weights);
        let grad_input = graph.propagate_transpose(&grad_aggregated);
        (
            ConvGrads {
                weights: grad_w,
                bias: grad_b,
            },
            grad_input,
        )
    }

    /// Applies one Adam update with the given (already batch-scaled)
    /// gradients.
    pub fn apply(&mut self, grads: &ConvGrads, hp: &AdamParams) {
        self.opt_w.step(&mut self.weights, &grads.weights, hp);
        self.opt_b.step(&mut self.bias, &grads.bias, hp);
    }

    /// Immutable view of the weights (for tests).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Mutable view of the weights (finite-difference tests).
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// Mutable view of the bias (finite-difference tests).
    pub fn bias_mut(&mut self) -> &mut [f64] {
        &mut self.bias
    }
}
