//! DGCNN SortPooling: a fixed-size, order-invariant graph readout.

use autolock_mlcore::Matrix;
use serde::{Deserialize, Serialize};

/// How the SortPooling output size `k` is chosen.
///
/// DGCNN (Zhang et al., AAAI 2018) does not hand-tune `k`: it picks `k` "such
/// that f% of graphs have more than k nodes" — a dataset percentile. The seed
/// reproduction hardcoded `k = 10`; [`SortPoolK::Percentile`] restores the
/// paper's rule while [`SortPoolK::Fixed`] keeps the explicit knob for
/// experiments that want architectural parity across datasets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SortPoolK {
    /// Use exactly this `k` (clamped to ≥ 1).
    Fixed(usize),
    /// Choose `k` so that at least this fraction (in `(0, 1]`) of the
    /// training graphs have ≥ `k` nodes.
    Percentile(f64),
}

impl Default for SortPoolK {
    fn default() -> Self {
        SortPoolK::Fixed(10)
    }
}

impl SortPoolK {
    /// Resolves to a concrete `k` for a dataset with the given per-graph node
    /// counts. `Fixed` ignores the counts; `Percentile(p)` returns the
    /// largest `k` such that at least `⌈p·len⌉` graphs have ≥ `k` nodes
    /// (at least 1, and for an empty dataset falls back to 1).
    pub fn resolve(&self, node_counts: &[usize]) -> usize {
        match *self {
            SortPoolK::Fixed(k) => k.max(1),
            SortPoolK::Percentile(p) => {
                if node_counts.is_empty() {
                    return 1;
                }
                let p = p.clamp(f64::MIN_POSITIVE, 1.0);
                let mut sorted = node_counts.to_vec();
                sorted.sort_unstable_by(|a, b| b.cmp(a)); // descending
                let need = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                sorted[need - 1].max(1)
            }
        }
    }
}

/// SortPooling with a fixed `k`: nodes are ordered by their **last feature
/// channel** (descending, ties broken by node index for determinism) and the
/// first `k` rows are kept; graphs with fewer than `k` nodes are zero-padded.
/// The result is a `k × f` matrix regardless of graph size, which the dense
/// head consumes flattened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortPooling {
    k: usize,
}

/// Cache for the backward pass: which input row landed in each output slot.
#[derive(Debug, Clone)]
pub struct SortPoolCache {
    /// `selected[slot] = Some(input_row)` or `None` for zero padding.
    pub selected: Vec<Option<usize>>,
    /// Input row count.
    pub input_rows: usize,
}

impl SortPooling {
    /// Creates the pooling with output size `k` (≥ 1).
    pub fn new(k: usize) -> Self {
        SortPooling { k: k.max(1) }
    }

    /// The output row count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Forward pass: returns the pooled `k × f` matrix and the permutation
    /// cache.
    pub fn forward(&self, x: &Matrix) -> (Matrix, SortPoolCache) {
        let n = x.rows();
        let f = x.cols();
        let sort_channel = f.saturating_sub(1);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            x.get(b, sort_channel)
                .partial_cmp(&x.get(a, sort_channel))
                .expect("finite sort keys")
                .then(a.cmp(&b))
        });
        let mut out = Matrix::zeros(self.k, f);
        let mut selected = vec![None; self.k];
        for slot in 0..self.k.min(n) {
            let src = order[slot];
            out.row_mut(slot).copy_from_slice(x.row(src));
            selected[slot] = Some(src);
        }
        (
            out,
            SortPoolCache {
                selected,
                input_rows: n,
            },
        )
    }

    /// Backward pass: scatters dL/d(pooled) back to the input rows (padded
    /// slots contribute nothing; unselected nodes receive zero gradient).
    pub fn backward(&self, cache: &SortPoolCache, grad_output: &Matrix) -> Matrix {
        let mut grad_input = Matrix::zeros(cache.input_rows, grad_output.cols());
        for (slot, sel) in cache.selected.iter().enumerate() {
            if let Some(src) = sel {
                let g = grad_output.row(slot).to_vec();
                let dst = grad_input.row_mut(*src);
                for (d, v) in dst.iter_mut().zip(g) {
                    *d += v;
                }
            }
        }
        grad_input
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_by_last_channel_and_pads() {
        let x = Matrix::from_vec(
            3,
            2,
            vec![
                1.0, 0.1, //
                2.0, 0.9, //
                3.0, 0.5,
            ],
        );
        let pool = SortPooling::new(4);
        let (y, cache) = pool.forward(&x);
        // Order by last channel desc: rows 1 (0.9), 2 (0.5), 0 (0.1), pad.
        assert_eq!(y.row(0), &[2.0, 0.9]);
        assert_eq!(y.row(1), &[3.0, 0.5]);
        assert_eq!(y.row(2), &[1.0, 0.1]);
        assert_eq!(y.row(3), &[0.0, 0.0]);
        assert_eq!(cache.selected, vec![Some(1), Some(2), Some(0), None]);
    }

    #[test]
    fn truncates_to_k_and_backward_scatters() {
        let x = Matrix::from_vec(3, 1, vec![0.3, 0.1, 0.2]);
        let pool = SortPooling::new(2);
        let (y, cache) = pool.forward(&x);
        assert_eq!(y.row(0), &[0.3]);
        assert_eq!(y.row(1), &[0.2]);
        let grad = Matrix::from_vec(2, 1, vec![10.0, 20.0]);
        let gi = pool.backward(&cache, &grad);
        assert_eq!(gi.row(0), &[10.0]); // row 0 was slot 0
        assert_eq!(gi.row(1), &[0.0]); // dropped by pooling
        assert_eq!(gi.row(2), &[20.0]); // row 2 was slot 1
    }

    #[test]
    fn ties_break_by_node_index() {
        let x = Matrix::from_vec(2, 1, vec![0.5, 0.5]);
        let pool = SortPooling::new(2);
        let (_, cache) = pool.forward(&x);
        assert_eq!(cache.selected, vec![Some(0), Some(1)]);
    }

    #[test]
    fn percentile_k_follows_the_dgcnn_rule() {
        // Counts 4..=13: with p = 0.6, six graphs must have ≥ k nodes, so
        // k is the 6th-largest count = 8.
        let counts: Vec<usize> = (4..14).collect();
        assert_eq!(SortPoolK::Percentile(0.6).resolve(&counts), 8);
        // p = 1.0 keeps every graph un-padded: k = smallest count.
        assert_eq!(SortPoolK::Percentile(1.0).resolve(&counts), 4);
        // Tiny p degenerates to the largest count.
        assert_eq!(SortPoolK::Percentile(1e-9).resolve(&counts), 13);
        // Fixed ignores the dataset; both clamp to ≥ 1.
        assert_eq!(SortPoolK::Fixed(7).resolve(&counts), 7);
        assert_eq!(SortPoolK::Fixed(0).resolve(&counts), 1);
        assert_eq!(SortPoolK::Percentile(0.5).resolve(&[]), 1);
    }
}
