//! The full DGCNN: conv stack → channel concat → SortPooling → dense head.

use crate::conv::{ConvCache, ConvGrads, GraphConv};
use crate::dense::{DenseGrads, DenseStack};
use crate::sortpool::{SortPoolK, SortPooling};
use crate::stream::{GraphSource, SliceSource, SourceTensor};
use crate::{LinkPredictor, SubgraphTensor};
use autolock_mlcore::optim::AdamParams;
use autolock_mlcore::parallel::pooled_map;
use autolock_mlcore::{sigmoid, Matrix};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a [`Dgcnn`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DgcnnConfig {
    /// Per-node input feature dimensionality.
    pub node_feature_dim: usize,
    /// Output channels of each graph-convolution layer. The last layer's
    /// final channel drives the SortPooling node ordering, so DGCNN keeps it
    /// small (classically 1).
    pub conv_channels: Vec<usize>,
    /// Number of nodes kept by SortPooling: fixed, or resolved from the
    /// training set as a node-count percentile (the DGCNN rule) by
    /// [`Dgcnn::for_dataset`].
    pub sortpool_k: SortPoolK,
    /// Hidden sizes of the dense head.
    pub dense_hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Threads used for batch-parallel training and scoring: `0` = all
    /// available cores, `1` = serial, `n` = exactly `n`. Results are
    /// bit-for-bit identical for every setting (see the crate README's
    /// parallelism/determinism contract).
    pub num_threads: usize,
}

impl DgcnnConfig {
    /// The default architecture for a given node-feature dimensionality:
    /// three conv layers (last one a single sort channel), `k = 10`, one
    /// hidden dense layer, parallel training across all cores.
    pub fn for_features(node_feature_dim: usize) -> Self {
        DgcnnConfig {
            node_feature_dim,
            conv_channels: vec![16, 16, 1],
            sortpool_k: SortPoolK::Fixed(10),
            dense_hidden: vec![32],
            epochs: 25,
            batch_size: 16,
            learning_rate: 0.01,
            l2: 1e-4,
            num_threads: 0,
        }
    }
}

/// The DGCNN link scorer.
///
/// Serializable end-to-end (conv stack, pooling, head, optimizer state): a
/// model trained once can be stored in the service's disk-backed registry
/// and reloaded to score without retraining.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dgcnn {
    config: DgcnnConfig,
    convs: Vec<GraphConv>,
    pool: SortPooling,
    head: DenseStack,
}

/// All parameter gradients of one backward pass.
struct Gradients {
    convs: Vec<ConvGrads>,
    head: DenseGrads,
}

impl Gradients {
    fn zeros_like(model: &Dgcnn) -> Self {
        Gradients {
            convs: model.convs.iter().map(ConvGrads::zeros_like).collect(),
            head: DenseGrads::zeros_like(&model.head),
        }
    }

    fn add(&mut self, other: &Gradients) {
        for (a, b) in self.convs.iter_mut().zip(&other.convs) {
            a.add(b);
        }
        self.head.add(&other.head);
    }

    fn scale(&mut self, alpha: f64) {
        for g in self.convs.iter_mut() {
            g.scale(alpha);
        }
        self.head.scale(alpha);
    }
}

impl Dgcnn {
    /// Creates a randomly initialized model with a fixed SortPooling `k`.
    ///
    /// # Panics
    ///
    /// Panics if `config.conv_channels` is empty, or if `config.sortpool_k`
    /// is [`SortPoolK::Percentile`] — an adaptive `k` needs the training set,
    /// so build those models with [`Dgcnn::for_dataset`].
    pub fn new<R: Rng + ?Sized>(config: DgcnnConfig, rng: &mut R) -> Self {
        let SortPoolK::Fixed(_) = config.sortpool_k else {
            panic!("percentile sortpool_k requires Dgcnn::for_dataset (needs node counts)");
        };
        Self::with_resolved_k(config, rng)
    }

    /// Creates a randomly initialized model whose SortPooling `k` is resolved
    /// against the given training graphs: a [`SortPoolK::Percentile`] becomes
    /// the dataset-percentile node count (DGCNN's rule), a
    /// [`SortPoolK::Fixed`] is used as-is. The resolved value is written back
    /// into the stored config, so [`Dgcnn::config`] always reports the
    /// concrete architecture.
    ///
    /// # Panics
    ///
    /// Panics if `config.conv_channels` is empty.
    pub fn for_dataset<R: Rng + ?Sized>(
        config: DgcnnConfig,
        graphs: &[SubgraphTensor],
        rng: &mut R,
    ) -> Self {
        let counts: Vec<usize> = graphs.iter().map(SubgraphTensor::num_nodes).collect();
        Self::for_node_counts(config, &counts, rng)
    }

    /// [`Dgcnn::for_dataset`] for a streamed training set: the SortPooling
    /// `k` is resolved against [`GraphSource::num_nodes`], so no tensor is
    /// materialized to size the architecture. Consumes the same number of
    /// RNG draws as `for_dataset`, so the two construction paths stay
    /// bit-for-bit interchangeable.
    ///
    /// # Panics
    ///
    /// Panics if `config.conv_channels` is empty.
    pub fn for_source<R: Rng + ?Sized>(
        config: DgcnnConfig,
        source: &dyn GraphSource,
        rng: &mut R,
    ) -> Self {
        let counts: Vec<usize> = (0..source.len()).map(|i| source.num_nodes(i)).collect();
        Self::for_node_counts(config, &counts, rng)
    }

    fn for_node_counts<R: Rng + ?Sized>(
        mut config: DgcnnConfig,
        counts: &[usize],
        rng: &mut R,
    ) -> Self {
        config.sortpool_k = SortPoolK::Fixed(config.sortpool_k.resolve(counts));
        Self::with_resolved_k(config, rng)
    }

    fn with_resolved_k<R: Rng + ?Sized>(config: DgcnnConfig, rng: &mut R) -> Self {
        assert!(
            !config.conv_channels.is_empty(),
            "at least one conv layer required"
        );
        let k = config.sortpool_k.resolve(&[]);
        let mut convs = Vec::with_capacity(config.conv_channels.len());
        let mut in_dim = config.node_feature_dim;
        for &out_dim in &config.conv_channels {
            convs.push(GraphConv::new(in_dim, out_dim, rng));
            in_dim = out_dim;
        }
        let total_channels: usize = config.conv_channels.iter().sum();
        let pool = SortPooling::new(k);
        let head = DenseStack::new(pool.k() * total_channels, &config.dense_hidden, rng);
        Dgcnn {
            config,
            convs,
            pool,
            head,
        }
    }

    /// The configuration (with `sortpool_k` resolved to its concrete value).
    pub fn config(&self) -> &DgcnnConfig {
        &self.config
    }

    /// Forward pass to the raw logit (used by tests; [`Dgcnn::score`] applies
    /// the sigmoid).
    pub fn logit(&self, graph: &SubgraphTensor) -> f64 {
        self.forward(graph).2.logit()
    }

    #[allow(clippy::type_complexity)]
    fn forward(
        &self,
        graph: &SubgraphTensor,
    ) -> (
        Vec<ConvCache>,
        crate::sortpool::SortPoolCache,
        crate::dense::DenseCache,
    ) {
        let mut caches: Vec<ConvCache> = Vec::with_capacity(self.convs.len());
        for conv in &self.convs {
            let input = caches
                .last()
                .map(|c: &ConvCache| &c.output)
                .unwrap_or(graph.features());
            caches.push(conv.forward(graph, input));
        }
        // Channel-wise concatenation of every conv output. The sort channel
        // (last column of the last conv) ends up as the last column overall.
        let n = graph.num_nodes();
        let total: usize = self.convs.iter().map(GraphConv::out_dim).sum();
        let mut concat = Matrix::zeros(n, total);
        let mut offset = 0;
        for cache in &caches {
            let w = cache.output.cols();
            for r in 0..n {
                concat.row_mut(r)[offset..offset + w].copy_from_slice(cache.output.row(r));
            }
            offset += w;
        }
        let (pooled, pool_cache) = self.pool.forward(&concat);
        let flat: Vec<f64> = (0..pooled.rows())
            .flat_map(|r| pooled.row(r).to_vec())
            .collect();
        let head_cache = self.head.forward(&flat);
        (caches, pool_cache, head_cache)
    }

    /// Forward + backward on one example; returns `(loss, gradients)`.
    fn forward_backward(&self, graph: &SubgraphTensor, label: f64) -> (f64, Gradients) {
        let (conv_caches, pool_cache, head_cache) = self.forward(graph);
        let logit = head_cache.logit();
        let p = sigmoid(logit);
        let loss = binary_cross_entropy(p, label);

        // dL/dlogit for sigmoid + BCE.
        let (head_grads, grad_flat) = self.head.backward(&head_cache, p - label);

        // Un-flatten into the pooled matrix shape and push through the pool.
        let total: usize = self.convs.iter().map(GraphConv::out_dim).sum();
        let grad_pooled = Matrix::from_vec(self.pool.k(), total, grad_flat);
        let grad_concat = self.pool.backward(&pool_cache, &grad_pooled);

        // Split the concat gradient per conv layer, then walk the stack
        // backwards: layer i receives its concat slice plus whatever layer
        // i+1 propagated into its input.
        let n = graph.num_nodes();
        let mut conv_grads: Vec<Option<ConvGrads>> = (0..self.convs.len()).map(|_| None).collect();
        let mut carried: Option<Matrix> = None;
        let mut offset_end = total;
        for idx in (0..self.convs.len()).rev() {
            let w = self.convs[idx].out_dim();
            let offset = offset_end - w;
            let mut grad_out = Matrix::zeros(n, w);
            for r in 0..n {
                grad_out
                    .row_mut(r)
                    .copy_from_slice(&grad_concat.row(r)[offset..offset_end]);
            }
            if let Some(extra) = carried.take() {
                grad_out.add_scaled(1.0, &extra);
            }
            let (grads, grad_input) = self.convs[idx].backward(graph, &conv_caches[idx], &grad_out);
            conv_grads[idx] = Some(grads);
            carried = Some(grad_input);
            offset_end = offset;
        }
        (
            loss,
            Gradients {
                convs: conv_grads
                    .into_iter()
                    .map(|g| g.expect("every conv visited"))
                    .collect(),
                head: head_grads,
            },
        )
    }

    /// Trains for `config.epochs` epochs of mini-batch Adam; returns the mean
    /// loss of the final epoch.
    ///
    /// This is the materialized-set convenience wrapper around
    /// [`Dgcnn::train_source`]: the slices are adapted into a
    /// [`SliceSource`], so both entry points run the identical streamed
    /// pipeline (and therefore the identical training trajectory).
    ///
    /// # Panics
    ///
    /// Panics if `graphs` and `labels` lengths differ or are empty.
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        graphs: &[SubgraphTensor],
        labels: &[f64],
        rng: &mut R,
    ) -> f64 {
        self.train_source(&SliceSource::new(graphs, labels), rng)
    }

    /// The streamed training pipeline: examples are pulled from `source` one
    /// mini-batch chunk at a time, so at most one chunk of subgraph tensors
    /// (plus its parameter-shaped gradients) is alive at any moment — peak
    /// memory no longer scales with the training-set size. Owned tensors are
    /// recycled back into the source the moment their example's pass
    /// finishes; per-example forward/backward intermediates drop inside the
    /// worker closure, before gradient reduction.
    ///
    /// Determinism: per-example passes within a chunk fan across
    /// `config.num_threads` rayon threads through the order-preserving
    /// pooled map, and the per-example gradients are reduced **in fixed
    /// example order** before the Adam step — so the training trajectory is
    /// bit-for-bit identical for every thread count, and (for a pure source)
    /// bit-for-bit identical to training on the materialized tensor set.
    ///
    /// # Panics
    ///
    /// Panics if `source` is empty.
    pub fn train_source<R: Rng + ?Sized>(&mut self, source: &dyn GraphSource, rng: &mut R) -> f64 {
        assert!(!source.is_empty(), "cannot train on zero graphs");
        // Observability (autolock_obs) is write-only: spans and counters
        // record the trajectory but never influence it, and cost one relaxed
        // load per site while the registry is disabled.
        let _train_span = autolock_obs::span!("gnn.train");
        let rebuilds = autolock_obs::counter("gnn.tensor_rebuilds");
        let chunks = autolock_obs::counter("gnn.train_chunks");
        let examples = autolock_obs::counter("gnn.train_examples");
        let hp = AdamParams {
            learning_rate: self.config.learning_rate,
            l2: self.config.l2,
            ..Default::default()
        };
        let mut indices: Vec<usize> = (0..source.len()).collect();
        let mut last_epoch_loss = f64::INFINITY;
        for _ in 0..self.config.epochs {
            let _epoch_span = autolock_obs::span!("gnn.train_epoch");
            indices.shuffle(rng);
            let mut epoch_loss = 0.0;
            for batch in indices.chunks(self.config.batch_size.max(1)) {
                chunks.incr();
                examples.add(batch.len() as u64);
                // Fan the independent per-example passes across the shared
                // pooled map (order-preserving): each worker materializes
                // its example's tensor, runs the pass, and recycles the
                // tensor before returning — only the (loss, gradients) pair
                // survives into the reduction, which stays serial and in
                // example order.
                let passes: Vec<(f64, Gradients)> =
                    pooled_map(self.config.num_threads, batch, |&i| {
                        let tensor = source.tensor(i);
                        let pass = self.forward_backward(&tensor, source.label(i));
                        if let SourceTensor::Owned(t) = tensor {
                            rebuilds.incr();
                            source.recycle(t);
                        }
                        pass
                    });
                let mut total = Gradients::zeros_like(self);
                for (loss, grads) in &passes {
                    epoch_loss += loss;
                    total.add(grads);
                }
                total.scale(1.0 / batch.len() as f64);
                for (conv, g) in self.convs.iter_mut().zip(&total.convs) {
                    conv.apply(g, &hp);
                }
                self.head.apply(&total.head, &hp);
            }
            last_epoch_loss = epoch_loss / source.len() as f64;
        }
        last_epoch_loss
    }

    /// Mean binary cross-entropy over a labelled set (no training).
    pub fn mean_loss(&self, graphs: &[SubgraphTensor], labels: &[f64]) -> f64 {
        if graphs.is_empty() {
            return 0.0;
        }
        graphs
            .iter()
            .zip(labels)
            .map(|(g, &y)| binary_cross_entropy(self.score(g), y))
            .sum::<f64>()
            / graphs.len() as f64
    }

    /// Test hook: mutable access to a conv layer (finite-difference checks).
    pub fn conv_mut(&mut self, idx: usize) -> &mut GraphConv {
        &mut self.convs[idx]
    }

    /// Test hook: mutable access to the dense head.
    pub fn head_mut(&mut self) -> &mut DenseStack {
        &mut self.head
    }

    /// Test hook: all parameter gradients of one example as
    /// `(per-conv grads, dense-head grads, loss)` for gradient checking.
    pub fn example_gradients(
        &self,
        graph: &SubgraphTensor,
        label: f64,
    ) -> (Vec<ConvGrads>, DenseGrads, f64) {
        let (loss, grads) = self.forward_backward(graph, label);
        (grads.convs, grads.head, loss)
    }

    /// The loss of one example (for finite differences).
    pub fn example_loss(&self, graph: &SubgraphTensor, label: f64) -> f64 {
        binary_cross_entropy(self.score(graph), label)
    }
}

impl LinkPredictor for Dgcnn {
    fn fit(&mut self, graphs: &[SubgraphTensor], labels: &[f64], rng: &mut dyn RngCore) -> f64 {
        // Derive an owned RNG so `dyn RngCore` callers stay deterministic.
        let mut rng = ChaCha8Rng::seed_from_u64(rng.next_u64());
        self.train(graphs, labels, &mut rng)
    }

    fn score(&self, graph: &SubgraphTensor) -> f64 {
        sigmoid(self.logit(graph))
    }

    /// Scores a batch of candidate links, fanning the independent forward
    /// passes across `config.num_threads` rayon threads. Output order (and
    /// every value, bit-for-bit) matches the serial [`Self::score`] loop.
    fn score_batch(&self, graphs: &[SubgraphTensor]) -> Vec<f64> {
        let _span = autolock_obs::span!("gnn.score_chunk");
        autolock_obs::counter("gnn.scored_links").add(graphs.len() as u64);
        pooled_map(self.config.num_threads, graphs, |g| sigmoid(self.logit(g)))
    }
}

fn binary_cross_entropy(p: f64, y: f64) -> f64 {
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
}
