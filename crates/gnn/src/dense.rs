//! The dense classification head applied after SortPooling.

use autolock_mlcore::optim::{AdamParams, AdamState, AdamVecState};
use autolock_mlcore::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One fully-connected layer of the head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DenseLayer {
    weights: Matrix, // in × out
    bias: Vec<f64>,
    opt_w: AdamState,
    opt_b: AdamVecState,
}

impl DenseLayer {
    fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        let scale = (6.0 / in_dim as f64).sqrt();
        DenseLayer {
            weights: Matrix::random(in_dim, out_dim, scale, rng),
            bias: vec![0.0; out_dim],
            opt_w: AdamState::new(in_dim, out_dim),
            opt_b: AdamVecState::new(out_dim),
        }
    }
}

/// A ReLU multi-layer head ending in a single linear logit, with
/// backpropagation to its input (needed to keep training the conv stack
/// below it). Serializable for the service's model registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseStack {
    layers: Vec<DenseLayer>,
}

/// Forward cache: the input to every layer plus each layer's pre-activation.
#[derive(Debug, Clone)]
pub struct DenseCache {
    inputs: Vec<Vec<f64>>,
    pre: Vec<Vec<f64>>,
}

impl DenseCache {
    /// The final logit.
    pub fn logit(&self) -> f64 {
        self.pre.last().expect("at least one layer")[0]
    }
}

/// Per-layer parameter gradients of the head.
#[derive(Debug, Clone)]
pub struct DenseGrads {
    weights: Vec<Matrix>,
    bias: Vec<Vec<f64>>,
}

impl DenseGrads {
    /// Zero gradients shaped like `stack`.
    pub fn zeros_like(stack: &DenseStack) -> Self {
        DenseGrads {
            weights: stack
                .layers
                .iter()
                .map(|l| Matrix::zeros(l.weights.rows(), l.weights.cols()))
                .collect(),
            bias: stack
                .layers
                .iter()
                .map(|l| vec![0.0; l.bias.len()])
                .collect(),
        }
    }

    /// Accumulates another gradient contribution.
    pub fn add(&mut self, other: &DenseGrads) {
        for (a, b) in self.weights.iter_mut().zip(&other.weights) {
            a.add_scaled(1.0, b);
        }
        for (a, b) in self.bias.iter_mut().zip(&other.bias) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
    }

    /// Scales all gradients.
    pub fn scale(&mut self, alpha: f64) {
        for w in self.weights.iter_mut() {
            w.scale(alpha);
        }
        for b in self.bias.iter_mut() {
            for v in b.iter_mut() {
                *v *= alpha;
            }
        }
    }

    /// Per-layer weight gradients (finite-difference tests).
    pub fn layer_weights(&self) -> &[Matrix] {
        &self.weights
    }

    /// Per-layer bias gradients (finite-difference tests).
    pub fn layer_biases(&self) -> &[Vec<f64>] {
        &self.bias
    }
}

impl DenseStack {
    /// Builds a head `input_dim → hidden… → 1`.
    pub fn new<R: Rng + ?Sized>(input_dim: usize, hidden: &[usize], rng: &mut R) -> Self {
        let mut dims = vec![input_dim];
        dims.extend_from_slice(hidden);
        dims.push(1);
        DenseStack {
            layers: dims
                .windows(2)
                .map(|w| DenseLayer::new(w[0], w[1], rng))
                .collect(),
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers.first().expect("non-empty").weights.rows()
    }

    /// Forward pass; hidden layers ReLU, output linear.
    pub fn forward(&self, input: &[f64]) -> DenseCache {
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut pre = Vec::with_capacity(self.layers.len());
        let mut current = input.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            inputs.push(current.clone());
            let mut z = layer.weights.matvec_t(&current);
            for (v, b) in z.iter_mut().zip(&layer.bias) {
                *v += b;
            }
            let next = if i + 1 == self.layers.len() {
                z.clone()
            } else {
                z.iter().map(|&v| v.max(0.0)).collect()
            };
            pre.push(z);
            current = next;
        }
        DenseCache { inputs, pre }
    }

    /// Backward pass from dL/d(logit); returns parameter gradients and
    /// dL/d(input).
    pub fn backward(&self, cache: &DenseCache, grad_logit: f64) -> (DenseGrads, Vec<f64>) {
        let mut grads = DenseGrads::zeros_like(self);
        let mut delta = vec![grad_logit];
        for idx in (0..self.layers.len()).rev() {
            let layer = &self.layers[idx];
            let input = &cache.inputs[idx];
            // weights are in × out: dW[i][o] += input[i] * delta[o]
            grads.weights[idx].add_outer(1.0, input, &delta);
            for (b, d) in grads.bias[idx].iter_mut().zip(&delta) {
                *b += d;
            }
            if idx > 0 {
                let back = layer.weights.matvec(&delta);
                let prev_pre = &cache.pre[idx - 1];
                delta = back
                    .iter()
                    .zip(prev_pre)
                    .map(|(&g, &z)| if z > 0.0 { g } else { 0.0 })
                    .collect();
            } else {
                delta = layer.weights.matvec(&delta);
            }
        }
        (grads, delta)
    }

    /// Applies one Adam update.
    pub fn apply(&mut self, grads: &DenseGrads, hp: &AdamParams) {
        for (layer, (gw, gb)) in self
            .layers
            .iter_mut()
            .zip(grads.weights.iter().zip(&grads.bias))
        {
            layer.opt_w.step(&mut layer.weights, gw, hp);
            layer.opt_b.step(&mut layer.bias, gb, hp);
        }
    }

    /// Number of layers (hidden layers + the final logit layer).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// A layer's weight shape as `(in_dim, out_dim)`.
    pub fn layer_shape(&self, layer: usize) -> (usize, usize) {
        let w = &self.layers[layer].weights;
        (w.rows(), w.cols())
    }

    /// Mutable weight access for finite-difference tests:
    /// `(layer, row, col)` indexing.
    pub fn weight_mut(&mut self, layer: usize, row: usize, col: usize) -> &mut f64 {
        let l = &mut self.layers[layer];
        let cols = l.weights.cols();
        &mut l.weights.data_mut()[row * cols + col]
    }

    /// Mutable bias access for finite-difference tests.
    pub fn bias_mut(&mut self, layer: usize) -> &mut [f64] {
        &mut self.layers[layer].bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forward_shapes_and_relu() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let stack = DenseStack::new(4, &[3], &mut rng);
        let cache = stack.forward(&[0.5, -0.5, 1.0, 0.0]);
        assert_eq!(cache.inputs[0].len(), 4);
        assert_eq!(cache.pre[0].len(), 3);
        assert_eq!(cache.pre[1].len(), 1);
        assert!(cache.logit().is_finite());
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let stack = DenseStack::new(5, &[4, 3], &mut rng);
        let x: Vec<f64> = (0..5).map(|i| 0.3 * i as f64 - 0.6).collect();
        let cache = stack.forward(&x);
        let (_, grad_in) = stack.backward(&cache, 1.0);
        let eps = 1e-6;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += eps;
            let up = stack.forward(&xp).logit();
            let mut xm = x.clone();
            xm[i] -= eps;
            let down = stack.forward(&xm).logit();
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - grad_in[i]).abs() < 1e-6,
                "input {i}: fd {fd} vs analytic {}",
                grad_in[i]
            );
        }
    }
}
