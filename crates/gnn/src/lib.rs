//! DGCNN-style graph neural network for link prediction on netlist subgraphs.
//!
//! This crate closes the main fidelity gap between this reproduction and the
//! attack model of the source paper: the published MuxLink attack (Alrahis et
//! al., DATE 2022) scores candidate MUX connections with a **Deep Graph
//! Convolutional Neural Network** (DGCNN, Zhang et al., AAAI 2018) over the
//! *enclosing subgraph* of each candidate link, whereas the seed reproduction
//! summarized those subgraphs into hand-crafted statistics for an MLP. Here
//! the learned pipeline is rebuilt from scratch on `autolock_mlcore`'s matrix
//! primitives:
//!
//! 1. **[`SubgraphTensor`]** — an enclosing subgraph
//!    ([`autolock_netlist::graph::enclosing_subgraph`]) turned into a tensor:
//!    degree-normalized adjacency `Â = D̃⁻¹(A + I)` plus one node-feature row
//!    per gate (gate-kind one-hot ⊕ clipped DRNL-label one-hot ⊕ normalized
//!    degree). This mirrors MuxLink's node labelling, which feeds gate types
//!    and Double-Radius Node Labels to the DGCNN.
//! 2. **[`GraphConv`]** — spatial graph convolution
//!    `X' = tanh(Â X W + b)`, the DGCNN propagation rule. A stack of these
//!    layers is applied and their outputs concatenated channel-wise.
//! 3. **[`SortPooling`]** — DGCNN's contribution: nodes are sorted by their
//!    last convolution channel (a learned, WL-colour-like ordering) and the
//!    top-`k` rows are kept (zero-padded below `k`), producing a fixed-size
//!    representation of a variable-size graph through which gradients flow.
//! 4. **[`DenseStack`]** — a small ReLU classification head ending in one
//!    logit; [`LinkPredictor::score`] applies a sigmoid for the link
//!    probability.
//! 5. **[`Dgcnn`]** — the full model with mini-batch Adam training
//!    ([`autolock_mlcore::optim`]) and backpropagation through the dense
//!    head, SortPooling and the whole conv stack. Training is deterministic
//!    for a fixed `ChaCha8Rng` seed, and **streamed**: examples are pulled
//!    from a [`GraphSource`] one mini-batch chunk at a time
//!    ([`Dgcnn::train_source`]), so peak tensor memory is bounded by the
//!    chunk, not the training-set size — what lets the DGCNN backend train
//!    on ISCAS-scale netlists. The slice API ([`Dgcnn::train`]) wraps the
//!    same pipeline via [`SliceSource`].
//!
//! The [`LinkPredictor`] trait is the integration point consumed by
//! `autolock_attacks`' `MuxLinkBackend::Gnn`: it exposes exactly the
//! train-on-links / score-a-link surface the attack needs, so MLP and GNN
//! backends can be compared head-to-head in the E-series experiments.
//!
//! # Example
//!
//! ```
//! use autolock_gnn::{Dgcnn, DgcnnConfig, LinkPredictor, SubgraphTensor};
//! use autolock_netlist::graph::{enclosing_subgraph, UndirectedGraph};
//! use autolock_netlist::{GateKind, Netlist};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! // y = !(a & b): score the (a, g) link's enclosing subgraph.
//! let mut nl = Netlist::new("tiny");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let g = nl.add_gate("g", GateKind::And, vec![a, b]).unwrap();
//! let y = nl.add_gate("y", GateKind::Not, vec![g]).unwrap();
//! nl.mark_output(y);
//!
//! let graph = UndirectedGraph::from_netlist_without_edges(&nl, &[(a, g)]);
//! let sg = enclosing_subgraph(&graph, a, g, 2);
//! let tensor = SubgraphTensor::from_enclosing(&nl, &sg, 8);
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(1);
//! let mut model = Dgcnn::new(DgcnnConfig::for_features(tensor.feature_dim()), &mut rng);
//! let p = model.score(&tensor);
//! assert!((0.0..=1.0).contains(&p));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod conv;
mod dense;
mod model;
mod sortpool;
mod stream;
mod tensor;

pub use conv::{ConvCache, ConvGrads, GraphConv};
pub use dense::{DenseCache, DenseGrads, DenseStack};
pub use model::{Dgcnn, DgcnnConfig};
pub use sortpool::{SortPoolCache, SortPoolK, SortPooling};
pub use stream::{GraphSource, SliceSource, SourceTensor};
pub use tensor::SubgraphTensor;

use rand::RngCore;

/// A trainable scorer of candidate links represented as enclosing-subgraph
/// tensors. `autolock_attacks` drives its GNN MuxLink backend through this
/// trait.
pub trait LinkPredictor {
    /// Trains on `(graph, label)` pairs; `labels[i]` is 1.0 for a true link
    /// and 0.0 for a non-link. Returns the mean training loss of the final
    /// epoch.
    fn fit(&mut self, graphs: &[SubgraphTensor], labels: &[f64], rng: &mut dyn RngCore) -> f64;

    /// Probability in `[0, 1]` that the candidate link is real.
    fn score(&self, graph: &SubgraphTensor) -> f64;

    /// Scores a batch of candidate links; `out[i]` corresponds to
    /// `graphs[i]`. Implementations may parallelize but must return exactly
    /// the values the serial [`Self::score`] loop would (the default does
    /// just that).
    fn score_batch(&self, graphs: &[SubgraphTensor]) -> Vec<f64> {
        graphs.iter().map(|g| self.score(g)).collect()
    }
}
