//! Property-based tests for the evolutionary-computation framework.

use autolock_evo::nsga2::{crowding_distances, dominates, fast_non_dominated_sort};
use autolock_evo::{
    CrossoverOperator, FitnessFunction, GaConfig, GeneticAlgorithm, MutationOperator,
    SelectionMethod,
};
use proptest::prelude::*;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every selection method returns a valid index, and over many draws the
    /// best individual is selected at least as often as the worst.
    #[test]
    fn selection_is_valid_and_monotone(
        fitness in proptest::collection::vec(-10.0f64..10.0, 2..30),
        seed in 0u64..1000,
        method_idx in 0usize..3,
    ) {
        let method = match method_idx {
            0 => SelectionMethod::Tournament { size: 3 },
            1 => SelectionMethod::Roulette,
            _ => SelectionMethod::Rank,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let best = fitness
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let worst = fitness
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let mut best_count = 0usize;
        let mut worst_count = 0usize;
        for _ in 0..600 {
            let idx = method.select(&fitness, &mut rng);
            prop_assert!(idx < fitness.len());
            if idx == best {
                best_count += 1;
            }
            if idx == worst {
                worst_count += 1;
            }
        }
        if (fitness[best] - fitness[worst]).abs() > 1e-6 {
            prop_assert!(best_count >= worst_count,
                "best selected {best_count} times, worst {worst_count} times");
        }
    }

    /// Pareto dominance is irreflexive and antisymmetric.
    #[test]
    fn dominance_is_irreflexive_and_antisymmetric(
        a in proptest::collection::vec(0.0f64..10.0, 2..4),
        b in proptest::collection::vec(0.0f64..10.0, 2..4),
    ) {
        let dim = a.len().min(b.len());
        let a = &a[..dim];
        let b = &b[..dim];
        prop_assert!(!dominates(a, a));
        prop_assert!(!(dominates(a, b) && dominates(b, a)));
    }

    /// Front 0 of the non-dominated sort contains exactly the points no other
    /// point dominates, every point appears in exactly one front, and
    /// crowding distances are non-negative.
    #[test]
    fn non_dominated_sort_invariants(
        objectives in proptest::collection::vec(
            proptest::collection::vec(0.0f64..10.0, 2),
            1..25
        ),
    ) {
        let fronts = fast_non_dominated_sort(&objectives);
        let total: usize = fronts.iter().map(|f| f.len()).sum();
        prop_assert_eq!(total, objectives.len());

        let mut seen = vec![false; objectives.len()];
        for front in &fronts {
            for &i in front {
                prop_assert!(!seen[i], "point {i} appears in two fronts");
                seen[i] = true;
            }
        }
        for &i in &fronts[0] {
            for (j, other) in objectives.iter().enumerate() {
                if i != j {
                    prop_assert!(!dominates(other, &objectives[i]),
                        "front-0 point {i} is dominated by {j}");
                }
            }
        }
        let crowding = crowding_distances(&objectives, &fronts);
        for d in crowding {
            prop_assert!(d >= 0.0);
        }
    }
}

// Shared toy problem for the GA behaviour properties below.
struct OneMax;
impl FitnessFunction<Vec<bool>> for OneMax {
    fn evaluate(&self, g: &Vec<bool>) -> f64 {
        g.iter().filter(|&&b| b).count() as f64
    }
}
struct Uniform;
impl CrossoverOperator<Vec<bool>> for Uniform {
    fn crossover(
        &self,
        a: &Vec<bool>,
        b: &Vec<bool>,
        rng: &mut dyn RngCore,
    ) -> (Vec<bool>, Vec<bool>) {
        let mut c = a.clone();
        let mut d = b.clone();
        for i in 0..a.len().min(b.len()) {
            if rng.gen_bool(0.5) {
                c[i] = b[i];
                d[i] = a[i];
            }
        }
        (c, d)
    }
}
struct Flip;
impl MutationOperator<Vec<bool>> for Flip {
    fn mutate(&self, g: &mut Vec<bool>, rng: &mut dyn RngCore) {
        let i = rng.gen_range(0..g.len());
        g[i] = !g[i];
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// With elitism, the best fitness recorded per generation never decreases.
    #[test]
    fn elitism_makes_best_fitness_monotone(
        seed in 0u64..500,
        pop in 4usize..16,
        len in 8usize..32,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let initial: Vec<Vec<bool>> = (0..pop)
            .map(|_| (0..len).map(|_| rng.gen_bool(0.3)).collect())
            .collect();
        let result = GeneticAlgorithm::new(GaConfig {
            generations: 15,
            elitism: 1,
            parallel: false,
            ..Default::default()
        })
        .run(initial, &OneMax, &Uniform, &Flip, &mut rng);
        let mut prev = f64::NEG_INFINITY;
        for stats in &result.history {
            prop_assert!(stats.best >= prev - 1e-12,
                "best fitness dropped from {prev} to {}", stats.best);
            prev = stats.best;
        }
        prop_assert!(result.best_fitness <= len as f64);
        prop_assert_eq!(result.evaluations, (result.history.len()) * pop);
    }

    /// The reported best individual's fitness matches re-evaluating it.
    #[test]
    fn reported_best_is_consistent(seed in 0u64..500) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let initial: Vec<Vec<bool>> = (0..8)
            .map(|_| (0..16).map(|_| rng.gen_bool(0.4)).collect())
            .collect();
        let result = GeneticAlgorithm::new(GaConfig {
            generations: 10,
            parallel: false,
            ..Default::default()
        })
        .run(initial, &OneMax, &Uniform, &Flip, &mut rng);
        prop_assert_eq!(result.best_fitness, OneMax.evaluate(&result.best));
    }
}
