//! Island-model contracts: thread-count invariance, per-generation
//! checkpoint/resume bit-identity, exact-mode surrogate equivalence, and
//! migration accounting. The thread test runs in the CI thread matrix,
//! which folds `AUTOLOCK_THREADS` into the compared set.

use autolock_evo::{
    run_to_completion, CrossoverOperator, FitnessFunction, GaConfig, GaState, GeneticAlgorithm,
    IslandConfig, IslandGa, IslandGaState, MutationOperator, Resumable, ResumableIslandGa,
    SurrogateScreen,
};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Extra thread count folded into the compared set, from the CI
/// thread-matrix leg's `AUTOLOCK_THREADS` (the multi-core runners are the
/// only machines where `n > 1` workers actually exist).
fn env_threads() -> Option<usize> {
    std::env::var("AUTOLOCK_THREADS").ok()?.parse().ok()
}

struct OneMax;
impl FitnessFunction<Vec<bool>> for OneMax {
    fn evaluate(&self, g: &Vec<bool>) -> f64 {
        g.iter().filter(|&&b| b).count() as f64
    }
}

/// A deliberately *different* cheap fitness (weights later bits double), so
/// the inexact-screening test can show screening actually gates evaluations.
struct WeightedMax;
impl FitnessFunction<Vec<bool>> for WeightedMax {
    fn evaluate(&self, g: &Vec<bool>) -> f64 {
        g.iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| 1.0 + i as f64 / g.len() as f64)
            .sum()
    }
}

struct BitFlip;
impl MutationOperator<Vec<bool>> for BitFlip {
    fn mutate(&self, g: &mut Vec<bool>, rng: &mut dyn RngCore) {
        let i = rng.gen_range(0..g.len());
        g[i] = !g[i];
    }
}

struct OnePoint;
impl CrossoverOperator<Vec<bool>> for OnePoint {
    fn crossover(
        &self,
        a: &Vec<bool>,
        b: &Vec<bool>,
        rng: &mut dyn RngCore,
    ) -> (Vec<bool>, Vec<bool>) {
        let cut = rng.gen_range(0..a.len().min(b.len()));
        let mut c = a.clone();
        let mut d = b.clone();
        c[cut..].copy_from_slice(&b[cut..]);
        d[cut..].copy_from_slice(&a[cut..]);
        (c, d)
    }
}

fn initial(pop: usize, len: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..pop)
        .map(|_| (0..len).map(|_| rng.gen_bool(0.3)).collect())
        .collect()
}

fn island_ga(threads: usize) -> IslandGa {
    IslandGa::new(
        GeneticAlgorithm::new(GaConfig {
            generations: 8,
            parallel: false,
            ..Default::default()
        }),
        IslandConfig {
            islands: 3,
            migration_interval: 2,
            migrants: 1,
            threads,
        },
    )
}

/// The tentpole determinism contract: the island fan-out width changes
/// wall-clock only, never results.
#[test]
fn island_results_are_thread_count_invariant() {
    let mut thread_set = vec![1, 2, 4];
    thread_set.extend(env_threads());
    let reference = island_ga(1).run(
        initial(12, 16, 3),
        &OneMax,
        &OnePoint,
        &BitFlip,
        None,
        ChaCha8Rng::seed_from_u64(7),
    );
    assert!(reference.evaluations > 0);
    for threads in thread_set {
        let got = island_ga(threads).run(
            initial(12, 16, 3),
            &OneMax,
            &OnePoint,
            &BitFlip,
            None,
            ChaCha8Rng::seed_from_u64(7),
        );
        assert_eq!(reference, got, "{threads} threads diverged from serial");
    }
}

/// A checkpoint captured at *every* generation boundary restores to a run
/// that finishes bit-identically to the uninterrupted one — the guarantee
/// the service engine's kill/resume path leans on.
#[test]
fn every_generation_boundary_resumes_bit_identically() {
    let engine = island_ga(1);
    let job = ResumableIslandGa::new(
        &engine,
        initial(9, 12, 5),
        &OneMax,
        &OnePoint,
        &BitFlip,
        None,
        ChaCha8Rng::seed_from_u64(9),
    );
    let mut snapshots: Vec<String> = Vec::new();
    let reference = run_to_completion(&job, |state| {
        snapshots.push(serde_json::to_string(&job.checkpoint(state)).unwrap());
    });
    assert!(
        snapshots.len() > 2,
        "expected several generation boundaries"
    );

    for (g, snapshot) in snapshots.iter().enumerate() {
        let revived: IslandGaState<Vec<bool>> = serde_json::from_str(snapshot).unwrap();
        let mut state = job.restore(revived).unwrap();
        while job.step(&mut state) {}
        assert!(job.is_finished(&state));
        assert_eq!(
            reference,
            job.finish(state),
            "resume from generation {g} diverged"
        );
    }
}

/// `restore` rejects snapshots that do not match the job's topology.
#[test]
fn restore_rejects_mismatched_island_counts() {
    let engine = island_ga(1);
    let job = ResumableIslandGa::new(
        &engine,
        initial(9, 12, 5),
        &OneMax,
        &OnePoint,
        &BitFlip,
        None,
        ChaCha8Rng::seed_from_u64(9),
    );
    let good = job.init_state();
    let mut wrong = good.clone();
    wrong.islands.pop();
    assert!(job.restore(wrong).unwrap_err().contains("islands"));
    let mut torn = good.clone();
    torn.islands[0].scores.pop();
    assert!(job.restore(torn).unwrap_err().contains("mismatch"));
    assert!(job.restore(good).is_ok());
}

/// When the surrogate *is* the real fitness, screening must not change who
/// is selected: the run is bit-identical to an unscreened one.
#[test]
fn exact_mode_surrogate_screening_changes_nothing() {
    let engine = island_ga(1);
    let unscreened = engine.run(
        initial(12, 16, 3),
        &OneMax,
        &OnePoint,
        &BitFlip,
        None,
        ChaCha8Rng::seed_from_u64(11),
    );
    let screen = SurrogateScreen {
        surrogate: &OneMax,
        survivor_fraction: 0.5,
    };
    let screened = engine.run(
        initial(12, 16, 3),
        &OneMax,
        &OnePoint,
        &BitFlip,
        Some(&screen),
        ChaCha8Rng::seed_from_u64(11),
    );
    assert_eq!(unscreened, screened);
}

/// With an inexact surrogate, rejected offspring keep the cheap score and
/// never pay the real fitness — the real-evaluation count drops.
#[test]
fn surrogate_screening_gates_real_evaluations() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    struct Counting(AtomicUsize);
    impl FitnessFunction<Vec<bool>> for Counting {
        fn evaluate(&self, g: &Vec<bool>) -> f64 {
            self.0.fetch_add(1, Ordering::Relaxed);
            OneMax.evaluate(g)
        }
    }
    let engine = island_ga(1);
    let unscreened_fitness = Counting(AtomicUsize::new(0));
    engine.run(
        initial(12, 16, 3),
        &unscreened_fitness,
        &OnePoint,
        &BitFlip,
        None,
        ChaCha8Rng::seed_from_u64(13),
    );
    let screened_fitness = Counting(AtomicUsize::new(0));
    let screen = SurrogateScreen {
        surrogate: &WeightedMax,
        survivor_fraction: 0.5,
    };
    engine.run(
        initial(12, 16, 3),
        &screened_fitness,
        &OnePoint,
        &BitFlip,
        Some(&screen),
        ChaCha8Rng::seed_from_u64(13),
    );
    let full = unscreened_fitness.0.load(Ordering::Relaxed);
    let gated = screened_fitness.0.load(Ordering::Relaxed);
    assert!(gated > 0);
    assert!(
        gated < full,
        "screening must cut real evaluations ({gated} vs {full})"
    );
}

/// Migration fires on the configured interval and propagates individuals:
/// a planted super-individual's fitness reaches the next island's state.
#[test]
fn migration_fires_on_interval_and_propagates() {
    let engine = island_ga(1);
    let mut population = initial(9, 12, 5);
    population[0] = vec![true; 12]; // planted optimum lands in island 0
    let mut state = engine.init_state(population, &OneMax, None, ChaCha8Rng::seed_from_u64(2));
    assert_eq!(state.migrations, 0);
    for _ in 0..4 {
        engine.step(&mut state, &OneMax, &OnePoint, &BitFlip, None);
    }
    assert_eq!(
        state.migrations, 2,
        "interval-2 topology must migrate twice in 4 generations"
    );
    // Elitism keeps the planted optimum alive in island 0; the ring must
    // have delivered a copy, so at least two islands now hold max fitness.
    let at_max = state
        .islands
        .iter()
        .filter(|isl: &&GaState<Vec<bool>>| isl.best_fitness >= 12.0)
        .count();
    assert!(at_max >= 2, "optimum must propagate over the ring");
}
