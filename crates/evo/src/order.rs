//! NaN-safe total orderings over `f64` fitness/objective values.
//!
//! A long-lived evolution service cannot afford
//! `partial_cmp(..).expect(..)` orderings: one NaN fitness (a crashed
//! attack, a 0/0 accuracy on a degenerate circuit) would panic the whole
//! engine. These comparators are total — built on [`f64::total_cmp`] — and
//! place **every** NaN (regardless of sign bit) deterministically at the
//! *worst* end of the ordering, so a NaN candidate can never be selected as
//! an elite, win a tournament, or displace a finite Pareto point.

use std::cmp::Ordering;

/// Descending by value (best first); every NaN sorts after every non-NaN.
///
/// Use for "best candidates first" orderings of a fitness that is maximized
/// (GA elitism) or of crowding distances (larger = better): NaN lands at the
/// end and is never taken into an elite prefix.
pub fn desc_nan_last(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

/// Ascending by value (worst first); every NaN sorts before every non-NaN.
///
/// Use for "worst candidates first" orderings of a maximized fitness (rank
/// selection, where position 0 gets the smallest weight): NaN lands at the
/// front and receives the lowest selection probability.
pub fn asc_nan_first(a: f64, b: f64) -> Ordering {
    desc_nan_last(b, a)
}

/// Ascending by value; every NaN sorts after every non-NaN.
///
/// Use for minimized objective values (NSGA-II): NaN is treated as larger
/// than every number, i.e. the worst possible objective.
pub fn asc_nan_last(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.total_cmp(&b),
    }
}

/// `true` if `a` is a strictly better (larger) fitness than `b`, treating
/// NaN as worse than every number. Replaces bare `a > b` in tournament-style
/// comparisons, where `finite > NaN` evaluates to `false` and would let an
/// incumbent NaN win every tie.
pub fn fitness_gt(a: f64, b: f64) -> bool {
    desc_nan_last(a, b) == Ordering::Less
}

#[cfg(test)]
mod tests {
    use super::*;

    const NAN: f64 = f64::NAN;

    #[test]
    fn desc_sorts_best_first_with_nan_last() {
        let mut v = [1.0, NAN, 3.0, -NAN, 2.0, f64::INFINITY];
        v.sort_by(|a, b| desc_nan_last(*a, *b));
        assert_eq!(&v[..4], &[f64::INFINITY, 3.0, 2.0, 1.0]);
        assert!(v[4].is_nan() && v[5].is_nan());
    }

    #[test]
    fn asc_nan_first_sorts_worst_first() {
        let mut v = [1.0, NAN, 3.0, 2.0];
        v.sort_by(|a, b| asc_nan_first(*a, *b));
        assert!(v[0].is_nan());
        assert_eq!(&v[1..], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn asc_nan_last_treats_nan_as_worst_objective() {
        let mut v = [NAN, 0.5, f64::INFINITY, -1.0];
        v.sort_by(|a, b| asc_nan_last(*a, *b));
        assert_eq!(&v[..3], &[-1.0, 0.5, f64::INFINITY]);
        assert!(v[3].is_nan());
    }

    #[test]
    fn negative_nan_is_not_special() {
        // total_cmp alone would sort -NaN below -inf; the wrappers must not.
        let mut v = [-NAN, f64::NEG_INFINITY];
        v.sort_by(|a, b| asc_nan_last(*a, *b));
        assert_eq!(v[0], f64::NEG_INFINITY);
        assert!(v[1].is_nan());
    }

    #[test]
    fn fitness_gt_never_favours_nan() {
        assert!(fitness_gt(1.0, 0.0));
        assert!(!fitness_gt(0.0, 1.0));
        assert!(fitness_gt(-5.0, NAN));
        assert!(!fitness_gt(NAN, -5.0));
        assert!(!fitness_gt(NAN, NAN));
        assert!(!fitness_gt(2.0, 2.0));
    }

    #[test]
    fn orderings_are_total_and_antisymmetric() {
        let vals = [NAN, -NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0, 1.5];
        for &a in &vals {
            for &b in &vals {
                for cmp in [desc_nan_last, asc_nan_first, asc_nan_last] {
                    assert_eq!(cmp(a, b), cmp(b, a).reverse());
                }
            }
        }
    }
}
