//! NSGA-II multi-objective optimization.
//!
//! The AutoLock research plan calls for multi-objective fitness ("a set of
//! distinct attacks"), plus the practical need to trade security against
//! overhead. NSGA-II (Deb et al., 2002) is the standard baseline for such
//! problems: non-dominated sorting + crowding-distance diversity preservation.
//!
//! All objectives are **minimized** (e.g. attack accuracy, area overhead,
//! negative SAT iterations).

use crate::{CrossoverOperator, Genotype, MutationOperator};
use rand::{Rng, RngCore};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A multi-objective fitness function. Every objective is minimized.
pub trait MultiObjectiveFitness<G: Genotype>: Sync {
    /// Number of objectives.
    fn num_objectives(&self) -> usize;

    /// Evaluates all objectives of a genotype.
    fn evaluate(&self, genotype: &G) -> Vec<f64>;
}

/// Configuration of the NSGA-II engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Nsga2Config {
    /// Number of generations.
    pub generations: usize,
    /// Crossover probability.
    pub crossover_rate: f64,
    /// Mutation probability.
    pub mutation_rate: f64,
    /// Evaluate objectives in parallel.
    pub parallel: bool,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Nsga2Config {
            generations: 40,
            crossover_rate: 0.9,
            mutation_rate: 0.3,
            parallel: true,
        }
    }
}

/// One point of the final Pareto front.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint<G> {
    /// The genotype.
    pub genotype: G,
    /// Its objective vector (minimized).
    pub objectives: Vec<f64>,
}

/// Result of an NSGA-II run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Nsga2Result<G> {
    /// The non-dominated front of the final population.
    pub front: Vec<ParetoPoint<G>>,
    /// Number of objective evaluations performed.
    pub evaluations: usize,
    /// Size of the first front after every generation.
    pub front_size_history: Vec<usize>,
}

/// The NSGA-II engine.
#[derive(Debug, Clone)]
pub struct Nsga2 {
    config: Nsga2Config,
}

impl Nsga2 {
    /// Creates an engine.
    pub fn new(config: Nsga2Config) -> Self {
        Nsga2 { config }
    }

    /// The configuration.
    pub fn config(&self) -> &Nsga2Config {
        &self.config
    }

    /// Runs NSGA-II from an initial population.
    ///
    /// # Panics
    ///
    /// Panics if the initial population is empty.
    pub fn run<G, F, C, M>(
        &self,
        initial_population: Vec<G>,
        fitness: &F,
        crossover: &C,
        mutation: &M,
        rng: &mut dyn RngCore,
    ) -> Nsga2Result<G>
    where
        G: Genotype,
        F: MultiObjectiveFitness<G>,
        C: CrossoverOperator<G>,
        M: MutationOperator<G>,
    {
        assert!(
            !initial_population.is_empty(),
            "initial population must not be empty"
        );
        let pop_size = initial_population.len();
        let mut population = initial_population;
        let mut objectives = self.evaluate_all(&population, fitness);
        let mut evaluations = population.len();
        let mut front_size_history = Vec::with_capacity(self.config.generations);

        for _ in 0..self.config.generations {
            // Offspring generation: binary tournament on (rank, crowding).
            let fronts = fast_non_dominated_sort(&objectives);
            let ranks = ranks_from_fronts(&fronts, population.len());
            let crowding = crowding_distances(&objectives, &fronts);
            let mut offspring: Vec<G> = Vec::with_capacity(pop_size);
            while offspring.len() < pop_size {
                let pa = tournament(&ranks, &crowding, rng);
                let pb = tournament(&ranks, &crowding, rng);
                let (mut a, mut b) = if rng.gen_bool(self.config.crossover_rate.clamp(0.0, 1.0)) {
                    crossover.crossover(&population[pa], &population[pb], rng)
                } else {
                    (population[pa].clone(), population[pb].clone())
                };
                if rng.gen_bool(self.config.mutation_rate.clamp(0.0, 1.0)) {
                    mutation.mutate(&mut a, rng);
                }
                if rng.gen_bool(self.config.mutation_rate.clamp(0.0, 1.0)) {
                    mutation.mutate(&mut b, rng);
                }
                offspring.push(a);
                if offspring.len() < pop_size {
                    offspring.push(b);
                }
            }
            let offspring_obj = self.evaluate_all(&offspring, fitness);
            evaluations += offspring.len();

            // Environmental selection on the combined population.
            let mut combined = population;
            combined.extend(offspring);
            let mut combined_obj = objectives;
            combined_obj.extend(offspring_obj);

            let fronts = fast_non_dominated_sort(&combined_obj);
            front_size_history.push(fronts.first().map(|f| f.len()).unwrap_or(0));
            let crowding = crowding_distances(&combined_obj, &fronts);

            let mut selected: Vec<usize> = Vec::with_capacity(pop_size);
            for front in &fronts {
                if selected.len() + front.len() <= pop_size {
                    selected.extend_from_slice(front);
                } else {
                    // NaN-safe: a NaN crowding distance (NaN objectives in
                    // the front) sorts last and is cut first.
                    let mut rest: Vec<usize> = front.clone();
                    rest.sort_by(|&a, &b| crate::order::desc_nan_last(crowding[a], crowding[b]));
                    selected.extend(rest.into_iter().take(pop_size - selected.len()));
                    break;
                }
            }
            population = selected.iter().map(|&i| combined[i].clone()).collect();
            objectives = selected.iter().map(|&i| combined_obj[i].clone()).collect();
        }

        // Final front.
        let fronts = fast_non_dominated_sort(&objectives);
        let front = fronts
            .first()
            .map(|f| {
                f.iter()
                    .map(|&i| ParetoPoint {
                        genotype: population[i].clone(),
                        objectives: objectives[i].clone(),
                    })
                    .collect()
            })
            .unwrap_or_default();
        Nsga2Result {
            front,
            evaluations,
            front_size_history,
        }
    }

    fn evaluate_all<G, F>(&self, population: &[G], fitness: &F) -> Vec<Vec<f64>>
    where
        G: Genotype,
        F: MultiObjectiveFitness<G>,
    {
        if self.config.parallel {
            population.par_iter().map(|g| fitness.evaluate(g)).collect()
        } else {
            population.iter().map(|g| fitness.evaluate(g)).collect()
        }
    }
}

/// Returns `true` if `a` Pareto-dominates `b` (all objectives ≤, at least one <).
///
/// NaN objectives are treated as `+inf` (the worst possible minimized value):
/// a point with a NaN objective never dominates on that objective and is
/// dominated by any point that is finite there. Without this, NaN points
/// would be incomparable to everything (`NaN < x` and `NaN > x` are both
/// false) and would permanently squat on the first front.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    let lift = |v: f64| if v.is_nan() { f64::INFINITY } else { v };
    let mut strictly_better = false;
    for (&x, &y) in a.iter().zip(b) {
        let (x, y) = (lift(x), lift(y));
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Fast non-dominated sort: returns fronts as lists of indices, best first.
pub fn fast_non_dominated_sort(objectives: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let n = objectives.len();
    let mut domination_count = vec![0usize; n];
    let mut dominated: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut fronts: Vec<Vec<usize>> = vec![Vec::new()];

    for p in 0..n {
        for q in 0..n {
            if p == q {
                continue;
            }
            if dominates(&objectives[p], &objectives[q]) {
                dominated[p].push(q);
            } else if dominates(&objectives[q], &objectives[p]) {
                domination_count[p] += 1;
            }
        }
        if domination_count[p] == 0 {
            fronts[0].push(p);
        }
    }
    let mut i = 0;
    while !fronts[i].is_empty() {
        let mut next = Vec::new();
        for &p in &fronts[i] {
            for &q in &dominated[p] {
                domination_count[q] -= 1;
                if domination_count[q] == 0 {
                    next.push(q);
                }
            }
        }
        fronts.push(next);
        i += 1;
    }
    fronts.pop(); // remove trailing empty front
    fronts
}

fn ranks_from_fronts(fronts: &[Vec<usize>], n: usize) -> Vec<usize> {
    let mut ranks = vec![usize::MAX; n];
    for (rank, front) in fronts.iter().enumerate() {
        for &i in front {
            ranks[i] = rank;
        }
    }
    ranks
}

/// Crowding distance of every individual (within its front).
pub fn crowding_distances(objectives: &[Vec<f64>], fronts: &[Vec<usize>]) -> Vec<f64> {
    let n = objectives.len();
    let m = objectives.first().map(|o| o.len()).unwrap_or(0);
    let mut distance = vec![0.0f64; n];
    for front in fronts {
        if front.len() <= 2 {
            for &i in front {
                distance[i] = f64::INFINITY;
            }
            continue;
        }
        #[allow(clippy::needless_range_loop)]
        for obj in 0..m {
            // NaN-safe: a NaN objective sorts last, i.e. is treated as the
            // worst (largest) minimized value.
            let mut sorted: Vec<usize> = front.clone();
            sorted.sort_by(|&a, &b| {
                crate::order::asc_nan_last(objectives[a][obj], objectives[b][obj])
            });
            let min = objectives[sorted[0]][obj];
            let max = objectives[*sorted.last().expect("non-empty front")][obj];
            distance[sorted[0]] = f64::INFINITY;
            distance[*sorted.last().expect("non-empty front")] = f64::INFINITY;
            if (max - min).abs() < 1e-12 {
                continue;
            }
            for w in sorted.windows(3) {
                let (prev, cur, next) = (w[0], w[1], w[2]);
                distance[cur] += (objectives[next][obj] - objectives[prev][obj]) / (max - min);
            }
        }
    }
    distance
}

fn tournament(ranks: &[usize], crowding: &[f64], rng: &mut dyn RngCore) -> usize {
    let n = ranks.len();
    let a = rng.gen_range(0..n);
    let b = rng.gen_range(0..n);
    if ranks[a] < ranks[b] {
        a
    } else if ranks[b] < ranks[a] {
        b
    } else if crowding[a] >= crowding[b] {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn dominates_is_strict() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
        assert!(!dominates(&[2.0, 2.0], &[2.0, 2.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]));
    }

    #[test]
    fn non_dominated_sort_layers_correctly() {
        let objectives = vec![
            vec![1.0, 4.0], // front 0
            vec![4.0, 1.0], // front 0
            vec![2.0, 2.0], // front 0
            vec![3.0, 3.0], // front 1 (dominated by [2,2])
            vec![5.0, 5.0], // front 2
        ];
        let fronts = fast_non_dominated_sort(&objectives);
        assert_eq!(fronts.len(), 3);
        let mut f0 = fronts[0].clone();
        f0.sort();
        assert_eq!(f0, vec![0, 1, 2]);
        assert_eq!(fronts[1], vec![3]);
        assert_eq!(fronts[2], vec![4]);
    }

    #[test]
    fn crowding_prefers_extremes() {
        let objectives = vec![
            vec![0.0, 4.0],
            vec![1.0, 2.0],
            vec![2.0, 1.5],
            vec![4.0, 0.0],
        ];
        let fronts = fast_non_dominated_sort(&objectives);
        let d = crowding_distances(&objectives, &fronts);
        assert!(d[0].is_infinite());
        assert!(d[3].is_infinite());
        assert!(d[1].is_finite() && d[1] > 0.0);
    }

    // A classic bi-objective toy problem (Schaffer): minimize (x^2, (x-2)^2).
    struct Schaffer;
    impl MultiObjectiveFitness<f64> for Schaffer {
        fn num_objectives(&self) -> usize {
            2
        }
        fn evaluate(&self, x: &f64) -> Vec<f64> {
            vec![x * x, (x - 2.0) * (x - 2.0)]
        }
    }
    struct Blend;
    impl CrossoverOperator<f64> for Blend {
        fn crossover(&self, a: &f64, b: &f64, rng: &mut dyn RngCore) -> (f64, f64) {
            let w: f64 = rng.gen_range(0.0..1.0);
            (w * a + (1.0 - w) * b, w * b + (1.0 - w) * a)
        }
    }
    struct Jitter;
    impl MutationOperator<f64> for Jitter {
        fn mutate(&self, x: &mut f64, rng: &mut dyn RngCore) {
            *x += rng.gen_range(-0.5..0.5);
        }
    }

    #[test]
    fn nsga2_finds_schaffer_front() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let initial: Vec<f64> = (0..40).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let result = Nsga2::new(Nsga2Config {
            generations: 60,
            parallel: false,
            ..Default::default()
        })
        .run(initial, &Schaffer, &Blend, &Jitter, &mut rng);
        assert!(!result.front.is_empty());
        // The true Pareto set is x ∈ [0, 2]; allow a small tolerance.
        for point in &result.front {
            assert!(
                point.genotype > -0.5 && point.genotype < 2.5,
                "point {point:?} outside the Pareto region"
            );
        }
        // Front should spread over the objective space, not collapse.
        let f1: Vec<f64> = result.front.iter().map(|p| p.objectives[0]).collect();
        let spread = f1.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - f1.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.5, "front collapsed: spread {spread}");
        assert_eq!(result.front_size_history.len(), 60);
    }

    // Schaffer, except a band of x values yields NaN objectives (a failed
    // evaluation in a long-running service).
    struct NanBandSchaffer;
    impl MultiObjectiveFitness<f64> for NanBandSchaffer {
        fn num_objectives(&self) -> usize {
            2
        }
        fn evaluate(&self, x: &f64) -> Vec<f64> {
            if (4.0..5.0).contains(x) {
                vec![f64::NAN, f64::NAN]
            } else {
                vec![x * x, (x - 2.0) * (x - 2.0)]
            }
        }
    }

    #[test]
    fn nan_objectives_complete_and_stay_off_the_front() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let initial: Vec<f64> = (0..30).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let result = Nsga2::new(Nsga2Config {
            generations: 25,
            parallel: false,
            ..Default::default()
        })
        .run(initial, &NanBandSchaffer, &Blend, &Jitter, &mut rng);
        assert!(!result.front.is_empty());
        for point in &result.front {
            assert!(
                point.objectives.iter().all(|o| o.is_finite()),
                "NaN point on the Pareto front: {point:?}"
            );
        }
    }

    #[test]
    fn crowding_distance_sort_tolerates_nan() {
        // A front whose objectives contain NaN must not panic the crowding
        // computation.
        let objectives = vec![
            vec![0.0, 4.0],
            vec![f64::NAN, 1.0],
            vec![2.0, 1.5],
            vec![4.0, 0.0],
        ];
        let fronts = vec![vec![0usize, 1, 2, 3]];
        let d = crowding_distances(&objectives, &fronts);
        assert_eq!(d.len(), 4);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_population_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        Nsga2::new(Nsga2Config::default()).run(
            Vec::<f64>::new(),
            &Schaffer,
            &Blend,
            &Jitter,
            &mut rng,
        );
    }
}
