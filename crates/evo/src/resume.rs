//! The unified resumable-computation API.
//!
//! PR 7/8 grew two parallel checkpointing surfaces — the SAT attack's
//! `init_state / step / checkpoint / restore` methods and the free-function
//! `GaState` API in [`crate::checkpoint`]. [`Resumable`] is the one shape
//! both now implement, so a driver (the service engine, a bench experiment,
//! a test harness) can persist and resume *any* long computation without
//! knowing what it computes:
//!
//! 1. [`Resumable::init_state`] builds the in-memory working state.
//! 2. [`Resumable::step`] advances it by one bounded unit of work (a GA
//!    generation, a SAT DIP iteration) and returns `false` once done.
//! 3. Between any two steps, [`Resumable::checkpoint`] captures a
//!    serializable snapshot; [`Resumable::restore`] revives it in a fresh
//!    process, and the continued run is bit-identical to an uninterrupted
//!    one (each implementation pins this with tests).
//! 4. [`Resumable::finish`] consumes the final state into the output.

use crate::checkpoint::finish_state;
use crate::{
    CrossoverOperator, FitnessFunction, GaResult, GaState, GeneticAlgorithm, Genotype,
    MutationOperator,
};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A long computation that can be advanced in bounded steps, snapshotted
/// between steps, and revived bit-identically from a snapshot.
///
/// Implementors bundle the immutable problem context (the circuit under
/// attack, the fitness function, the operators) so that drivers need nothing
/// beyond the trait: `init_state`, loop `step`, persist `checkpoint` at every
/// boundary, `finish`. The `Checkpoint` associated type is the *serializable
/// projection* of `State` — for the GA they coincide, while the SAT attack
/// strips live solver objects and rebuilds them in `restore`.
pub trait Resumable {
    /// In-memory working state between steps (may hold live, non-serializable
    /// resources such as SAT solvers).
    type State;
    /// Serializable snapshot of [`Resumable::State`], valid only at step
    /// boundaries.
    type Checkpoint: Serialize + Deserialize;
    /// Result of a completed run.
    type Output;

    /// Builds the initial state (performs the generation-0 evaluation, arms
    /// the solvers, …).
    fn init_state(&self) -> Self::State;

    /// Advances the state by one unit of work. Returns `false` (leaving the
    /// state untouched) once the computation is finished; the state is a
    /// valid checkpoint boundary after every call.
    fn step(&self, state: &mut Self::State) -> bool;

    /// `true` once no further [`Resumable::step`] will do work.
    fn is_finished(&self, state: &Self::State) -> bool;

    /// Consumes a state into the final output. Implementations may require
    /// the state to be finished (drive [`Resumable::step`] until `false`).
    fn finish(&self, state: Self::State) -> Self::Output;

    /// Captures a serializable snapshot of the state.
    fn checkpoint(&self, state: &Self::State) -> Self::Checkpoint;

    /// Revives a state from a snapshot, validating it against this job's
    /// context. Errors describe why the snapshot is unusable (wrong shape,
    /// inconsistent lengths); callers treat an error like a missing
    /// checkpoint and start fresh.
    fn restore(&self, checkpoint: Self::Checkpoint) -> Result<Self::State, String>;
}

/// Drives a [`Resumable`] from scratch to completion, invoking
/// `on_boundary` with the state after initialization and after every step —
/// persist a [`Resumable::checkpoint`] there to make the run recoverable.
pub fn run_to_completion<R: Resumable>(
    job: &R,
    mut on_boundary: impl FnMut(&R::State),
) -> R::Output {
    let mut state = job.init_state();
    on_boundary(&state);
    while job.step(&mut state) {
        on_boundary(&state);
    }
    job.finish(state)
}

/// The [`Resumable`] form of a single-population GA run: a
/// [`GeneticAlgorithm`] bundled with its initial population, fitness,
/// operators and seed RNG. Replaced the old free-function checkpoint API
/// (`run_checkpointed` / `finish`, removed) with the same bit-for-bit
/// behaviour.
pub struct ResumableGa<'a, G, F, C, M> {
    ga: &'a GeneticAlgorithm,
    initial_population: Vec<G>,
    fitness: &'a F,
    crossover: &'a C,
    mutation: &'a M,
    rng: ChaCha8Rng,
}

impl<'a, G, F, C, M> ResumableGa<'a, G, F, C, M>
where
    G: Genotype,
    F: FitnessFunction<G>,
    C: CrossoverOperator<G>,
    M: MutationOperator<G>,
{
    /// Bundles a GA run. `rng` must be positioned exactly where the caller
    /// wants generation 0 to start drawing (e.g. after population seeding).
    pub fn new(
        ga: &'a GeneticAlgorithm,
        initial_population: Vec<G>,
        fitness: &'a F,
        crossover: &'a C,
        mutation: &'a M,
        rng: ChaCha8Rng,
    ) -> Self {
        Self {
            ga,
            initial_population,
            fitness,
            crossover,
            mutation,
            rng,
        }
    }
}

impl<G, F, C, M> Resumable for ResumableGa<'_, G, F, C, M>
where
    G: Genotype,
    F: FitnessFunction<G>,
    C: CrossoverOperator<G>,
    M: MutationOperator<G>,
    GaState<G>: Serialize + Deserialize,
{
    type State = GaState<G>;
    type Checkpoint = GaState<G>;
    type Output = GaResult<G>;

    fn init_state(&self) -> GaState<G> {
        self.ga.init_state(
            self.initial_population.clone(),
            self.fitness,
            self.rng.clone(),
        )
    }

    fn step(&self, state: &mut GaState<G>) -> bool {
        self.ga
            .step(state, self.fitness, self.crossover, self.mutation)
    }

    fn is_finished(&self, state: &GaState<G>) -> bool {
        self.ga.is_finished(state)
    }

    fn finish(&self, state: GaState<G>) -> GaResult<G> {
        finish_state(state)
    }

    fn checkpoint(&self, state: &GaState<G>) -> GaState<G> {
        state.clone()
    }

    fn restore(&self, checkpoint: GaState<G>) -> Result<GaState<G>, String> {
        validate_ga_state(&checkpoint)?;
        Ok(checkpoint)
    }
}

/// Structural sanity checks shared by the plain and island GA `restore`
/// paths. Rejecting inconsistent snapshots here turns a corrupted (but
/// parseable) checkpoint into a fresh start instead of a panic deep in the
/// selection code.
pub(crate) fn validate_ga_state<G>(state: &GaState<G>) -> Result<(), String> {
    if state.population.is_empty() {
        return Err("checkpoint has an empty population".into());
    }
    if state.scores.len() != state.population.len() {
        return Err(format!(
            "checkpoint scores/population length mismatch ({} vs {})",
            state.scores.len(),
            state.population.len()
        ));
    }
    if state.history.len() != state.generation + 1 {
        return Err(format!(
            "checkpoint history covers {} generations but state is at generation {}",
            state.history.len(),
            state.generation
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GaConfig;
    use rand::{Rng, RngCore, SeedableRng};

    struct OneMax;
    impl FitnessFunction<Vec<bool>> for OneMax {
        fn evaluate(&self, g: &Vec<bool>) -> f64 {
            g.iter().filter(|&&b| b).count() as f64
        }
    }
    struct BitFlip;
    impl MutationOperator<Vec<bool>> for BitFlip {
        fn mutate(&self, g: &mut Vec<bool>, rng: &mut dyn RngCore) {
            let i = rng.gen_range(0..g.len());
            g[i] = !g[i];
        }
    }
    struct OnePoint;
    impl CrossoverOperator<Vec<bool>> for OnePoint {
        fn crossover(
            &self,
            a: &Vec<bool>,
            b: &Vec<bool>,
            rng: &mut dyn RngCore,
        ) -> (Vec<bool>, Vec<bool>) {
            let cut = rng.gen_range(0..a.len().min(b.len()));
            let mut c = a.clone();
            let mut d = b.clone();
            c[cut..].copy_from_slice(&b[cut..]);
            d[cut..].copy_from_slice(&a[cut..]);
            (c, d)
        }
    }

    fn initial(pop: usize, len: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..pop)
            .map(|_| (0..len).map(|_| rng.gen_bool(0.3)).collect())
            .collect()
    }

    fn ga() -> GeneticAlgorithm {
        GeneticAlgorithm::new(GaConfig {
            generations: 10,
            parallel: false,
            ..Default::default()
        })
    }

    #[test]
    fn trait_run_equals_plain_run() {
        let ga = ga();
        let mut run_rng = ChaCha8Rng::seed_from_u64(7);
        let expected = ga.run(
            initial(10, 16, 3),
            &OneMax,
            &OnePoint,
            &BitFlip,
            &mut run_rng,
        );

        let job = ResumableGa::new(
            &ga,
            initial(10, 16, 3),
            &OneMax,
            &OnePoint,
            &BitFlip,
            ChaCha8Rng::seed_from_u64(7),
        );
        let got = run_to_completion(&job, |_| {});
        assert_eq!(expected, got);
    }

    #[test]
    fn checkpoint_roundtrip_resumes_bit_identically() {
        let ga = ga();
        let job = ResumableGa::new(
            &ga,
            initial(8, 12, 5),
            &OneMax,
            &OnePoint,
            &BitFlip,
            ChaCha8Rng::seed_from_u64(9),
        );
        let reference = run_to_completion(&job, |_| {});

        let mut state = job.init_state();
        for _ in 0..3 {
            assert!(job.step(&mut state));
        }
        let snapshot = serde_json::to_string(&job.checkpoint(&state)).unwrap();
        drop(state);

        let revived: GaState<Vec<bool>> = serde_json::from_str(&snapshot).unwrap();
        let mut state = job.restore(revived).unwrap();
        while job.step(&mut state) {}
        assert!(job.is_finished(&state));
        assert_eq!(reference, job.finish(state));
    }

    #[test]
    fn restore_rejects_inconsistent_snapshots() {
        let ga = ga();
        let job = ResumableGa::new(
            &ga,
            initial(6, 8, 1),
            &OneMax,
            &OnePoint,
            &BitFlip,
            ChaCha8Rng::seed_from_u64(2),
        );
        let good = job.init_state();

        let mut empty = good.clone();
        empty.population.clear();
        empty.scores.clear();
        assert!(job.restore(empty).unwrap_err().contains("empty population"));

        let mut skewed = good.clone();
        skewed.scores.pop();
        assert!(job.restore(skewed).unwrap_err().contains("length mismatch"));

        let mut torn = good.clone();
        torn.generation = 5;
        assert!(job.restore(torn).unwrap_err().contains("generation"));

        assert!(job.restore(good).is_ok());
    }
}
