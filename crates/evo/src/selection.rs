//! Parent-selection methods.

use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// How parents are selected for crossover.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SelectionMethod {
    /// k-tournament selection: sample `k` individuals, take the fittest.
    Tournament {
        /// Tournament size (≥ 1). Larger values increase selection pressure.
        size: usize,
    },
    /// Fitness-proportionate (roulette-wheel) selection. Fitness values are
    /// shifted so the minimum maps to a small positive probability.
    Roulette,
    /// Linear rank selection: probability proportional to rank (worst = 1).
    Rank,
}

impl Default for SelectionMethod {
    fn default() -> Self {
        SelectionMethod::Tournament { size: 3 }
    }
}

impl SelectionMethod {
    /// Selects the index of one parent given the population's fitness values.
    ///
    /// # Panics
    ///
    /// Panics if `fitness` is empty.
    pub fn select(&self, fitness: &[f64], rng: &mut dyn RngCore) -> usize {
        assert!(
            !fitness.is_empty(),
            "cannot select from an empty population"
        );
        let n = fitness.len();
        match *self {
            SelectionMethod::Tournament { size } => {
                let k = size.max(1);
                let mut best = rng.gen_range(0..n);
                for _ in 1..k {
                    let challenger = rng.gen_range(0..n);
                    // NaN-safe: `finite > NaN` is false, so a bare `>` would
                    // let an incumbent NaN survive every challenge.
                    if crate::order::fitness_gt(fitness[challenger], fitness[best]) {
                        best = challenger;
                    }
                }
                best
            }
            SelectionMethod::Roulette => {
                // Windowed fitness-proportionate selection: shift so the worst
                // individual keeps a small but non-vanishing probability. The
                // window is computed over *finite* fitness only and NaN
                // individuals get weight 0, so one NaN cannot poison the
                // `gen_range(0.0..total)` draw below.
                let min = fitness
                    .iter()
                    .copied()
                    .filter(|f| !f.is_nan())
                    .fold(f64::INFINITY, f64::min);
                let max = fitness
                    .iter()
                    .copied()
                    .filter(|f| !f.is_nan())
                    .fold(f64::NEG_INFINITY, f64::max);
                let window = 0.1 * (max - min) + 1e-9;
                let weights: Vec<f64> = fitness
                    .iter()
                    .map(|f| if f.is_nan() { 0.0 } else { f - min + window })
                    .collect();
                let total: f64 = weights.iter().sum();
                if !total.is_finite() || total <= 0.0 {
                    // Degenerate population (all NaN, or infinite fitness):
                    // fall back to a uniform draw rather than panicking in
                    // gen_range over an invalid range.
                    return rng.gen_range(0..n);
                }
                let mut target = rng.gen_range(0.0..total);
                for (i, w) in weights.iter().enumerate() {
                    if target < *w {
                        return i;
                    }
                    target -= w;
                }
                n - 1
            }
            SelectionMethod::Rank => {
                // rank 1 (worst) .. n (best); probability ∝ rank. NaN-safe:
                // NaN sorts first and gets the smallest selection weight.
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| crate::order::asc_nan_first(fitness[a], fitness[b]));
                let total = (n * (n + 1) / 2) as f64;
                let mut target = rng.gen_range(0.0..total);
                for (rank_minus_one, &idx) in order.iter().enumerate() {
                    let w = (rank_minus_one + 1) as f64;
                    if target < w {
                        return idx;
                    }
                    target -= w;
                }
                *order.last().expect("non-empty")
            }
        }
    }

    /// Stable identifier used in ablation tables.
    pub fn name(&self) -> &'static str {
        match self {
            SelectionMethod::Tournament { .. } => "tournament",
            SelectionMethod::Roulette => "roulette",
            SelectionMethod::Rank => "rank",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn selection_counts(method: SelectionMethod, fitness: &[f64], trials: usize) -> Vec<usize> {
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        let mut counts = vec![0usize; fitness.len()];
        for _ in 0..trials {
            counts[method.select(fitness, &mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn tournament_prefers_fitter_individuals() {
        let fitness = [1.0, 2.0, 10.0, 3.0];
        let counts = selection_counts(SelectionMethod::Tournament { size: 3 }, &fitness, 2000);
        assert!(counts[2] > counts[0]);
        assert!(counts[2] > counts[1]);
        assert!(counts[2] > counts[3]);
    }

    #[test]
    fn roulette_handles_negative_fitness() {
        let fitness = [-5.0, -1.0, -0.5];
        let counts = selection_counts(SelectionMethod::Roulette, &fitness, 3000);
        // Best individual selected most often; all selected at least once.
        assert!(counts[2] > counts[0]);
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn rank_selection_is_monotone_in_fitness() {
        let fitness = [0.1, 0.9, 0.5];
        let counts = selection_counts(SelectionMethod::Rank, &fitness, 6000);
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[0]);
    }

    #[test]
    fn single_individual_always_selected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for method in [
            SelectionMethod::Tournament { size: 4 },
            SelectionMethod::Roulette,
            SelectionMethod::Rank,
        ] {
            assert_eq!(method.select(&[3.0], &mut rng), 0);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SelectionMethod::default().name(), "tournament");
        assert_eq!(SelectionMethod::Roulette.name(), "roulette");
        assert_eq!(SelectionMethod::Rank.name(), "rank");
    }

    #[test]
    fn nan_fitness_is_never_favoured() {
        // Index 1 is NaN: every method must still terminate, and the NaN
        // individual must be selected no more often than the worst finite one.
        let fitness = [5.0, f64::NAN, 1.0, 3.0];
        for method in [
            SelectionMethod::Tournament { size: 3 },
            SelectionMethod::Roulette,
            SelectionMethod::Rank,
        ] {
            let counts = selection_counts(method, &fitness, 4000);
            assert!(
                counts[1] <= counts[2],
                "{}: NaN selected {} times vs worst finite {}",
                method.name(),
                counts[1],
                counts[2]
            );
            assert!(counts[0] > counts[2], "{}", method.name());
        }
    }

    #[test]
    fn all_nan_population_falls_back_to_uniform() {
        let fitness = [f64::NAN; 4];
        for method in [
            SelectionMethod::Tournament { size: 2 },
            SelectionMethod::Roulette,
            SelectionMethod::Rank,
        ] {
            let counts = selection_counts(method, &fitness, 2000);
            // No panic, and every index is reachable.
            assert!(
                counts.iter().all(|&c| c > 0),
                "{}: counts {counts:?}",
                method.name()
            );
        }
    }

    #[test]
    fn roulette_rng_stream_is_unchanged_for_finite_fitness() {
        // The NaN hardening must not perturb selections on clean populations:
        // same seed, same draws as the windowed scheme always made.
        let fitness = [2.0, -1.0, 0.5, 4.0];
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..200 {
            let expected = {
                // Reference implementation of the original windowed scheme.
                let min = fitness.iter().copied().fold(f64::INFINITY, f64::min);
                let max = fitness.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let window = 0.1 * (max - min) + 1e-9;
                let weights: Vec<f64> = fitness.iter().map(|f| f - min + window).collect();
                let total: f64 = weights.iter().sum();
                let mut target = b.gen_range(0.0..total);
                let mut pick = fitness.len() - 1;
                for (i, w) in weights.iter().enumerate() {
                    if target < *w {
                        pick = i;
                        break;
                    }
                    target -= w;
                }
                pick
            };
            assert_eq!(SelectionMethod::Roulette.select(&fitness, &mut a), expected);
        }
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn empty_population_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        SelectionMethod::default().select(&[], &mut rng);
    }
}
