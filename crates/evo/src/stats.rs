//! Per-generation statistics.

use serde::{Deserialize, Serialize};

/// Fitness statistics of one generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// Generation index (0 = initial population).
    pub generation: usize,
    /// Best fitness in the population.
    pub best: f64,
    /// Mean fitness.
    pub mean: f64,
    /// Worst fitness.
    pub worst: f64,
    /// Population standard deviation of fitness.
    pub std_dev: f64,
}

impl GenerationStats {
    /// Computes statistics from a slice of fitness values.
    ///
    /// # Panics
    ///
    /// Panics if `fitness` is empty.
    pub fn from_fitness(generation: usize, fitness: &[f64]) -> Self {
        assert!(!fitness.is_empty(), "empty population has no statistics");
        let n = fitness.len() as f64;
        let best = fitness.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let worst = fitness.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = fitness.iter().sum::<f64>() / n;
        let var = fitness.iter().map(|f| (f - mean) * (f - mean)).sum::<f64>() / n;
        GenerationStats {
            generation,
            best,
            mean,
            worst,
            std_dev: var.sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_computed_correctly() {
        let s = GenerationStats::from_fitness(3, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.generation, 3);
        assert_eq!(s.best, 4.0);
        assert_eq!(s.worst, 1.0);
        assert_eq!(s.mean, 2.5);
        assert!((s.std_dev - 1.118033988749895).abs() < 1e-12);
    }

    #[test]
    fn single_element_population() {
        let s = GenerationStats::from_fitness(0, &[7.0]);
        assert_eq!(s.best, 7.0);
        assert_eq!(s.worst, 7.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn empty_population_panics() {
        GenerationStats::from_fitness(0, &[]);
    }
}
