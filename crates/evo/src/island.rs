//! Island-model GA: subpopulations with deterministic ring migration and
//! optional surrogate screening.
//!
//! The island model is the GA's road to `xl`-tier circuits: instead of one
//! population paying serial fitness costs, `islands` subpopulations evolve
//! independently and are fanned across worker threads with
//! [`autolock_mlcore::parallel::pooled_map`]. Every `migration_interval`
//! generations, each island sends copies of its `migrants` best individuals
//! to the next island on a fixed ring (island *i* → island `(i+1) % k`),
//! replacing the destination's worst members.
//!
//! **Determinism contract** (pinned by `tests/island.rs` and the CI thread
//! matrix): the thread count changes wall-clock only, never results.
//!
//! * Subpopulation stepping goes through [`pooled_map`], which is
//!   order-preserving; each island owns a private RNG seeded from the run
//!   RNG *in island order* at init.
//! * Migration consumes no randomness: emigrants are the top-`migrants` by
//!   fitness under the NaN-safe [`crate::order::desc_nan_last`] ordering
//!   (stable sort, so ties resolve by population index), and deliveries are
//!   applied serially in island order after all islands have stepped.
//! * Surrogate screening ranks each new population with the cheap fitness
//!   and only the top `survivor_fraction` pay the expensive fitness; the
//!   ranking is the same stable NaN-safe sort, so when the surrogate *is*
//!   the real fitness, screening changes nothing (exact-mode test).

use crate::checkpoint::finish_state;
use crate::resume::validate_ga_state;
use crate::{
    CrossoverOperator, FitnessFunction, GaResult, GaState, GenerationStats, GeneticAlgorithm,
    Genotype, MutationOperator, Resumable,
};
use autolock_mlcore::parallel::pooled_map;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Topology and scheduling knobs of an island-model run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IslandConfig {
    /// Number of subpopulations. `<= 1` degenerates to a single-population
    /// run (no migration, but still checkpointable per generation).
    pub islands: usize,
    /// Generations between migration rounds (`>= 1`; 0 is treated as 1).
    pub migration_interval: usize,
    /// Individuals each island sends per migration round.
    pub migrants: usize,
    /// Worker threads for the island fan-out; `0` = one per logical core.
    /// Changes wall-clock only — results are bit-identical for every value.
    pub threads: usize,
}

impl Default for IslandConfig {
    fn default() -> Self {
        IslandConfig {
            islands: 4,
            migration_interval: 5,
            migrants: 2,
            threads: 0,
        }
    }
}

/// Cheap-fitness screening of each new generation.
///
/// The surrogate ranks the freshly-bred population; only the top
/// `survivor_fraction` (at least one individual) are scored by the real
/// fitness, the rest keep their surrogate score. With a well-correlated
/// surrogate (MLP screening for a DGCNN adversary) this cuts the expensive
/// evaluations per generation to the fraction that can actually win
/// selection.
#[derive(Clone, Copy)]
pub struct SurrogateScreen<'a, G> {
    /// The cheap stand-in fitness (e.g. an MLP-backend attack).
    pub surrogate: &'a dyn FitnessFunction<G>,
    /// Fraction of each generation scored by the real fitness, clamped to
    /// `(0, 1]`; survivors are chosen best-surrogate-first.
    pub survivor_fraction: f64,
}

/// The complete, serializable state of an island-model run between
/// generations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IslandGaState<G> {
    /// Per-island GA states, in fixed ring order.
    pub islands: Vec<GaState<G>>,
    /// Synchronous generation counter (all islands step together).
    pub generation: usize,
    /// Migration rounds applied so far.
    pub migrations: usize,
}

/// The island-model engine: a [`GeneticAlgorithm`] (shared per-island
/// settings) plus the [`IslandConfig`] topology.
pub struct IslandGa {
    ga: GeneticAlgorithm,
    config: IslandConfig,
}

impl IslandGa {
    /// Creates an island engine. The `ga` config applies to every island;
    /// its `parallel` flag should be off — the island fan-out is the
    /// parallelism level here.
    pub fn new(ga: GeneticAlgorithm, config: IslandConfig) -> Self {
        IslandGa { ga, config }
    }

    /// The per-island GA engine.
    pub fn ga(&self) -> &GeneticAlgorithm {
        &self.ga
    }

    /// The island topology.
    pub fn config(&self) -> &IslandConfig {
        &self.config
    }

    /// Splits the initial population into contiguous, nearly-even chunks
    /// (the first `len % islands` chunks get one extra member), seeds one
    /// RNG per island from `rng` in island order, and evaluates generation 0
    /// of every island in parallel.
    ///
    /// # Panics
    ///
    /// Panics if the population has fewer members than islands.
    pub fn init_state<G, F>(
        &self,
        initial_population: Vec<G>,
        fitness: &F,
        screen: Option<&SurrogateScreen<'_, G>>,
        mut rng: ChaCha8Rng,
    ) -> IslandGaState<G>
    where
        G: Genotype,
        F: FitnessFunction<G>,
    {
        let k = self.config.islands.max(1);
        assert!(
            initial_population.len() >= k,
            "need at least one individual per island ({} < {k})",
            initial_population.len()
        );
        let target = self.ga.config().target_fitness.or(fitness.target());
        let chunks = split_even(initial_population, k);
        let seeded: Vec<(Vec<G>, u64)> = chunks
            .into_iter()
            .map(|chunk| (chunk, rng.next_u64()))
            .collect();
        let islands = pooled_map(self.config.threads, &seeded, |(chunk, seed)| {
            self.ga.init_state_with(
                chunk.clone(),
                target,
                ChaCha8Rng::seed_from_u64(*seed),
                |pop| self.screened_scores(pop, fitness, screen),
            )
        });
        IslandGaState {
            islands,
            generation: 0,
            migrations: 0,
        }
    }

    /// `true` once every island has finished (budget, target or stagnation).
    pub fn is_finished<G: Genotype>(&self, state: &IslandGaState<G>) -> bool {
        state.islands.iter().all(|isl| self.ga.is_finished(isl))
    }

    /// Advances every unfinished island by exactly one generation (in
    /// parallel), then applies a migration round if this generation lands on
    /// the migration interval. Returns `false` once the run is finished.
    ///
    /// Checkpoint boundary: the state is fully self-describing after every
    /// call.
    pub fn step<G, F, C, M>(
        &self,
        state: &mut IslandGaState<G>,
        fitness: &F,
        crossover: &C,
        mutation: &M,
        screen: Option<&SurrogateScreen<'_, G>>,
    ) -> bool
    where
        G: Genotype,
        F: FitnessFunction<G>,
        C: CrossoverOperator<G>,
        M: MutationOperator<G>,
    {
        if self.is_finished(state) {
            return false;
        }
        let _span = autolock_obs::span!("evo.island_generation");
        let target = self.ga.config().target_fitness.or(fitness.target());
        let islands = std::mem::take(&mut state.islands);
        let mut islands = pooled_map(self.config.threads, &islands, |island| {
            let mut island = island.clone();
            self.ga
                .step_with(&mut island, target, crossover, mutation, |pop| {
                    self.screened_scores(pop, fitness, screen)
                });
            island
        });
        state.generation += 1;
        let interval = self.config.migration_interval.max(1);
        if state.generation.is_multiple_of(interval) && self.migrate(&mut islands, target) {
            state.migrations += 1;
        }
        state.islands = islands;
        true
    }

    /// Merges the per-island states into one [`GaResult`]: the winner is the
    /// best island (strict `>` scan in island order, so ties keep the
    /// lowest index), evaluations are summed, and per-generation statistics
    /// are pooled exactly (weighted mean, exact variance pooling, min/max
    /// envelope).
    ///
    /// # Panics
    ///
    /// Panics if the state has no islands.
    pub fn finish<G: Genotype>(&self, state: IslandGaState<G>) -> GaResult<G> {
        assert!(!state.islands.is_empty(), "state has no islands");
        let mut best_island = 0;
        for (i, isl) in state.islands.iter().enumerate() {
            if crate::order::fitness_gt(isl.best_fitness, state.islands[best_island].best_fitness) {
                best_island = i;
            }
        }
        let history = merged_history(&state.islands);
        let evaluations = state.islands.iter().map(|isl| isl.evaluations).sum();
        let reached_target = state.islands.iter().any(|isl| isl.reached_target);
        let winner = state
            .islands
            .into_iter()
            .nth(best_island)
            .expect("index in range");
        let mut result = finish_state(winner);
        result.history = history;
        result.evaluations = evaluations;
        result.reached_target = reached_target;
        result
    }

    /// Runs init + step to completion in one call.
    ///
    /// # Panics
    ///
    /// Panics if the population has fewer members than islands.
    pub fn run<G, F, C, M>(
        &self,
        initial_population: Vec<G>,
        fitness: &F,
        crossover: &C,
        mutation: &M,
        screen: Option<&SurrogateScreen<'_, G>>,
        rng: ChaCha8Rng,
    ) -> GaResult<G>
    where
        G: Genotype,
        F: FitnessFunction<G>,
        C: CrossoverOperator<G>,
        M: MutationOperator<G>,
    {
        let mut state = self.init_state(initial_population, fitness, screen, rng);
        while self.step(&mut state, fitness, crossover, mutation, screen) {}
        self.finish(state)
    }

    /// Evaluates a population, optionally routing through surrogate
    /// screening. Without a screen this is the GA's stock evaluation.
    fn screened_scores<G, F>(
        &self,
        population: &[G],
        fitness: &F,
        screen: Option<&SurrogateScreen<'_, G>>,
    ) -> Vec<f64>
    where
        G: Genotype,
        F: FitnessFunction<G>,
    {
        let Some(screen) = screen else {
            return self.ga.evaluate_scores(population, fitness);
        };
        let n = population.len();
        let cheap: Vec<f64> = population
            .iter()
            .map(|g| screen.surrogate.evaluate(g))
            .collect();
        let survivors =
            ((screen.survivor_fraction.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| crate::order::desc_nan_last(cheap[a], cheap[b]));
        let mut keep = vec![false; n];
        for &i in order.iter().take(survivors) {
            keep[i] = true;
        }
        autolock_obs::counter("evo.surrogate.screened").add(n as u64);
        autolock_obs::counter("evo.surrogate.survivors").add(survivors as u64);
        autolock_obs::counter("evo.surrogate.rejected").add((n - survivors) as u64);
        population
            .iter()
            .enumerate()
            .map(|(i, g)| {
                if keep[i] {
                    fitness.evaluate(g)
                } else {
                    cheap[i]
                }
            })
            .collect()
    }

    /// One ring migration round. Emigrants are snapshotted from every island
    /// first, then delivered serially in island order; no RNG is consumed,
    /// so migration cannot shift any island's stream. Returns `false` when
    /// the topology makes migration a no-op (fewer than two islands, or
    /// zero migrants).
    fn migrate<G: Genotype>(&self, islands: &mut [GaState<G>], target: Option<f64>) -> bool {
        let k = islands.len();
        let m = self.config.migrants;
        if k < 2 || m == 0 {
            return false;
        }
        let outgoing: Vec<Vec<(G, f64)>> = islands
            .iter()
            .map(|isl| {
                let mut order: Vec<usize> = (0..isl.population.len()).collect();
                order.sort_by(|&a, &b| crate::order::desc_nan_last(isl.scores[a], isl.scores[b]));
                order
                    .iter()
                    .take(m.min(isl.population.len()))
                    .map(|&i| (isl.population[i].clone(), isl.scores[i]))
                    .collect()
            })
            .collect();
        let mut migrants_moved = 0u64;
        for (src, migrants) in outgoing.into_iter().enumerate() {
            let isl = &mut islands[(src + 1) % k];
            let mut order: Vec<usize> = (0..isl.population.len()).collect();
            order.sort_by(|&a, &b| crate::order::desc_nan_last(isl.scores[a], isl.scores[b]));
            // Worst slots first, so the best immigrant displaces the worst
            // incumbent.
            let slots: Vec<usize> = order.iter().rev().take(migrants.len()).copied().collect();
            for ((genotype, score), slot) in migrants.into_iter().zip(slots) {
                isl.population[slot] = genotype;
                isl.scores[slot] = score;
                migrants_moved += 1;
                if crate::order::fitness_gt(score, isl.best_fitness) {
                    isl.best = isl.population[slot].clone();
                    isl.best_fitness = score;
                    isl.best_generation = isl.generation;
                    isl.stagnant = 0;
                }
                if let Some(t) = target {
                    if isl.best_fitness >= t {
                        isl.reached_target = true;
                    }
                }
            }
        }
        autolock_obs::counter("evo.migrations").incr();
        autolock_obs::counter("evo.migrants").add(migrants_moved);
        true
    }
}

/// Splits `items` into `k` contiguous chunks whose sizes differ by at most
/// one (the first `len % k` chunks are one longer).
fn split_even<T>(mut items: Vec<T>, k: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let base = n / k;
    let extra = n % k;
    let mut chunks = Vec::with_capacity(k);
    // Split from the back so each drain is O(chunk); reverse at the end.
    for i in (0..k).rev() {
        let size = base + usize::from(i < extra);
        chunks.push(items.split_off(items.len() - size));
    }
    chunks.reverse();
    chunks
}

/// Pools per-generation statistics across islands: weighted mean, exact
/// variance pooling (`Var = E[X²] − E[X]²` over the union), min/max
/// envelope for worst/best. Islands that stopped early simply drop out of
/// later generations' pools.
fn merged_history<G>(islands: &[GaState<G>]) -> Vec<GenerationStats> {
    let max_len = islands
        .iter()
        .map(|isl| isl.history.len())
        .max()
        .unwrap_or(0);
    (0..max_len)
        .map(|g| {
            let mut total = 0.0f64;
            let mut sum = 0.0f64;
            let mut sum_sq = 0.0f64;
            let mut best = f64::NEG_INFINITY;
            let mut worst = f64::INFINITY;
            for isl in islands {
                if let Some(s) = isl.history.get(g) {
                    let n = isl.population.len() as f64;
                    total += n;
                    sum += s.mean * n;
                    sum_sq += (s.std_dev * s.std_dev + s.mean * s.mean) * n;
                    if s.best > best {
                        best = s.best;
                    }
                    if s.worst < worst {
                        worst = s.worst;
                    }
                }
            }
            let mean = sum / total;
            let var = (sum_sq / total - mean * mean).max(0.0);
            GenerationStats {
                generation: g,
                best,
                mean,
                worst,
                std_dev: var.sqrt(),
            }
        })
        .collect()
}

/// The [`Resumable`] form of an island-model run: an [`IslandGa`] bundled
/// with its initial population, fitnesses, operators and seed RNG. The
/// service engine persists its checkpoints under `<job>.iga.json`.
pub struct ResumableIslandGa<'a, G, F, C, M> {
    island_ga: &'a IslandGa,
    initial_population: Vec<G>,
    fitness: &'a F,
    crossover: &'a C,
    mutation: &'a M,
    screen: Option<SurrogateScreen<'a, G>>,
    rng: ChaCha8Rng,
}

impl<'a, G, F, C, M> ResumableIslandGa<'a, G, F, C, M>
where
    G: Genotype,
    F: FitnessFunction<G>,
    C: CrossoverOperator<G>,
    M: MutationOperator<G>,
{
    /// Bundles an island run. `rng` must be positioned exactly where the
    /// caller wants island seeding to start drawing.
    pub fn new(
        island_ga: &'a IslandGa,
        initial_population: Vec<G>,
        fitness: &'a F,
        crossover: &'a C,
        mutation: &'a M,
        screen: Option<SurrogateScreen<'a, G>>,
        rng: ChaCha8Rng,
    ) -> Self {
        Self {
            island_ga,
            initial_population,
            fitness,
            crossover,
            mutation,
            screen,
            rng,
        }
    }
}

impl<G, F, C, M> Resumable for ResumableIslandGa<'_, G, F, C, M>
where
    G: Genotype,
    F: FitnessFunction<G>,
    C: CrossoverOperator<G>,
    M: MutationOperator<G>,
    IslandGaState<G>: Serialize + Deserialize,
{
    type State = IslandGaState<G>;
    type Checkpoint = IslandGaState<G>;
    type Output = GaResult<G>;

    fn init_state(&self) -> IslandGaState<G> {
        self.island_ga.init_state(
            self.initial_population.clone(),
            self.fitness,
            self.screen.as_ref(),
            self.rng.clone(),
        )
    }

    fn step(&self, state: &mut IslandGaState<G>) -> bool {
        self.island_ga.step(
            state,
            self.fitness,
            self.crossover,
            self.mutation,
            self.screen.as_ref(),
        )
    }

    fn is_finished(&self, state: &IslandGaState<G>) -> bool {
        self.island_ga.is_finished(state)
    }

    fn finish(&self, state: IslandGaState<G>) -> GaResult<G> {
        self.island_ga.finish(state)
    }

    fn checkpoint(&self, state: &IslandGaState<G>) -> IslandGaState<G> {
        state.clone()
    }

    fn restore(&self, checkpoint: IslandGaState<G>) -> Result<IslandGaState<G>, String> {
        if checkpoint.islands.is_empty() {
            return Err("checkpoint has no islands".into());
        }
        if checkpoint.islands.len() != self.island_ga.config().islands.max(1) {
            return Err(format!(
                "checkpoint has {} islands but the job is configured for {}",
                checkpoint.islands.len(),
                self.island_ga.config().islands.max(1)
            ));
        }
        for isl in &checkpoint.islands {
            validate_ga_state(isl)?;
        }
        Ok(checkpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_even_balances_and_preserves_order() {
        let chunks = split_even((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(chunks, vec![vec![0, 1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]]);
        let chunks = split_even((0..4).collect::<Vec<_>>(), 4);
        assert_eq!(chunks.iter().map(Vec::len).collect::<Vec<_>>(), vec![1; 4]);
        let chunks = split_even((0..6).collect::<Vec<_>>(), 1);
        assert_eq!(chunks, vec![(0..6).collect::<Vec<_>>()]);
    }
}
