//! Problem-interface traits.

use rand::RngCore;

/// Marker bound for genotypes: anything clonable and thread-safe.
///
/// The blanket implementation means callers never implement this by hand —
/// `Vec<bool>`, the AutoLock locus list, etc. all qualify automatically.
pub trait Genotype: Clone + Send + Sync {}

impl<T: Clone + Send + Sync> Genotype for T {}

/// A (single-objective) fitness function. **Higher is better.**
///
/// Implementations must be deterministic for a given genotype if reproducible
/// runs are desired; stochastic evaluations (e.g. training an attack) should
/// derive their randomness from the genotype content plus a fixed seed.
pub trait FitnessFunction<G: Genotype>: Sync {
    /// Evaluates a genotype.
    fn evaluate(&self, genotype: &G) -> f64;

    /// Optional: a fitness value at which the search may stop early.
    fn target(&self) -> Option<f64> {
        None
    }
}

/// A crossover operator producing two children from two parents.
pub trait CrossoverOperator<G: Genotype>: Sync {
    /// Recombines two parents.
    fn crossover(&self, a: &G, b: &G, rng: &mut dyn RngCore) -> (G, G);
}

/// A mutation operator modifying a genotype in place.
pub trait MutationOperator<G: Genotype>: Sync {
    /// Mutates the genotype.
    fn mutate(&self, genotype: &mut G, rng: &mut dyn RngCore);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sum;
    impl FitnessFunction<Vec<f64>> for Sum {
        fn evaluate(&self, g: &Vec<f64>) -> f64 {
            g.iter().sum()
        }
    }

    #[test]
    fn blanket_genotype_impl_applies() {
        fn needs_genotype<G: Genotype>(_: &G) {}
        needs_genotype(&vec![1u8, 2, 3]);
        needs_genotype(&"hello".to_string());
    }

    #[test]
    fn default_target_is_none() {
        assert_eq!(Sum.target(), None);
        assert_eq!(Sum.evaluate(&vec![1.0, 2.0]), 3.0);
    }
}
