//! Evolutionary-computation framework.
//!
//! AutoLock's contribution is a *genetic algorithm* wrapped around a locking
//! scheme and an attack. This crate provides the GA machinery in a
//! problem-agnostic way so the `autolock` crate (and the operator-ablation
//! experiments) can mix and match components:
//!
//! * [`FitnessFunction`] / [`Genotype`] — the problem interface,
//! * [`SelectionMethod`] — tournament, roulette-wheel and rank selection,
//! * [`CrossoverOperator`] / [`MutationOperator`] — problem-specific variation
//!   operators, implemented by the caller,
//! * [`GeneticAlgorithm`] — the single-objective engine with elitism, early
//!   stopping, per-generation statistics and optional parallel fitness
//!   evaluation (rayon),
//! * [`nsga2`] — the NSGA-II multi-objective engine used by the
//!   multi-objective locking experiments (attack accuracy vs. overhead vs.
//!   SAT resilience).
//!
//! Fitness is always **maximized**. The AutoLock fitness is therefore
//! `1 − attack accuracy`, matching the paper ("lower accuracy indicates
//! higher fitness").
//!
//! ```
//! use autolock_evo::{FitnessFunction, GaConfig, GeneticAlgorithm, SelectionMethod};
//! use autolock_evo::{CrossoverOperator, MutationOperator};
//! use rand::{Rng, RngCore, SeedableRng};
//!
//! // Maximize the number of ones in a bit string.
//! struct OneMax;
//! impl FitnessFunction<Vec<bool>> for OneMax {
//!     fn evaluate(&self, g: &Vec<bool>) -> f64 {
//!         g.iter().filter(|&&b| b).count() as f64
//!     }
//! }
//! struct OnePoint;
//! impl CrossoverOperator<Vec<bool>> for OnePoint {
//!     fn crossover(&self, a: &Vec<bool>, b: &Vec<bool>, rng: &mut dyn RngCore) -> (Vec<bool>, Vec<bool>) {
//!         let cut = rng.gen_range(0..a.len());
//!         let mut c = a.clone(); let mut d = b.clone();
//!         c[cut..].copy_from_slice(&b[cut..]);
//!         d[cut..].copy_from_slice(&a[cut..]);
//!         (c, d)
//!     }
//! }
//! struct Flip;
//! impl MutationOperator<Vec<bool>> for Flip {
//!     fn mutate(&self, g: &mut Vec<bool>, rng: &mut dyn RngCore) {
//!         let i = rng.gen_range(0..g.len());
//!         g[i] = !g[i];
//!     }
//! }
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let initial: Vec<Vec<bool>> = (0..20).map(|_| (0..32).map(|_| rng.gen()).collect()).collect();
//! let config = GaConfig { generations: 60, ..Default::default() };
//! let ga = GeneticAlgorithm::new(config);
//! let result = ga.run(initial, &OneMax, &OnePoint, &Flip, &mut rng);
//! assert!(result.best_fitness >= 30.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod checkpoint;
mod ga;
mod island;
pub mod nsga2;
pub mod order;
mod resume;
mod selection;
mod stats;
mod traits;

pub use checkpoint::GaState;
pub use ga::{GaConfig, GaResult, GeneticAlgorithm};
pub use island::{IslandConfig, IslandGa, IslandGaState, ResumableIslandGa, SurrogateScreen};
pub use nsga2::{MultiObjectiveFitness, Nsga2, Nsga2Config, Nsga2Result, ParetoPoint};
pub use resume::{run_to_completion, Resumable, ResumableGa};
pub use selection::SelectionMethod;
pub use stats::GenerationStats;
pub use traits::{CrossoverOperator, FitnessFunction, Genotype, MutationOperator};
