//! The single-objective genetic algorithm.

use crate::{
    CrossoverOperator, FitnessFunction, GenerationStats, Genotype, MutationOperator,
    SelectionMethod,
};
use rand::{Rng, RngCore};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration of [`GeneticAlgorithm`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Number of generations to run (in addition to evaluating the initial
    /// population).
    pub generations: usize,
    /// Probability that a selected parent pair undergoes crossover (otherwise
    /// the parents are copied unchanged into the offspring pool).
    pub crossover_rate: f64,
    /// Probability that each child is mutated.
    pub mutation_rate: f64,
    /// Number of elite individuals copied unchanged into the next generation.
    pub elitism: usize,
    /// Parent-selection method.
    pub selection: SelectionMethod,
    /// Evaluate fitness in parallel with rayon. Disable for single-threaded
    /// determinism checks; results are identical either way because fitness
    /// functions are required to be deterministic per genotype.
    pub parallel: bool,
    /// Stop early once the best fitness reaches this value (in addition to
    /// any [`FitnessFunction::target`]).
    pub target_fitness: Option<f64>,
    /// Stop early after this many consecutive generations without improvement
    /// of the best fitness (`None` disables stagnation-based stopping).
    pub stagnation_limit: Option<usize>,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            generations: 50,
            crossover_rate: 0.9,
            mutation_rate: 0.3,
            elitism: 2,
            selection: SelectionMethod::default(),
            parallel: true,
            target_fitness: None,
            stagnation_limit: None,
        }
    }
}

/// Result of a GA run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaResult<G> {
    /// The fittest genotype found over the whole run.
    pub best: G,
    /// Its fitness.
    pub best_fitness: f64,
    /// Per-generation statistics (index 0 is the initial population).
    pub history: Vec<GenerationStats>,
    /// Total number of fitness evaluations performed.
    pub evaluations: usize,
    /// Generation at which the best individual was first found.
    pub best_generation: usize,
    /// Whether the run stopped early because the target fitness was reached.
    pub reached_target: bool,
}

/// The single-objective GA engine.
///
/// The engine is generic over the genotype and the variation operators, which
/// is what the operator-ablation experiment (E7) sweeps.
#[derive(Debug, Clone)]
pub struct GeneticAlgorithm {
    config: GaConfig,
}

impl GeneticAlgorithm {
    /// Creates an engine with the given configuration.
    pub fn new(config: GaConfig) -> Self {
        GeneticAlgorithm { config }
    }

    /// The configuration.
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    pub(crate) fn evaluate_scores<G, F>(&self, population: &[G], fitness: &F) -> Vec<f64>
    where
        G: Genotype,
        F: FitnessFunction<G>,
    {
        let _span = autolock_obs::span!("evo.evaluate");
        if self.config.parallel {
            population.par_iter().map(|g| fitness.evaluate(g)).collect()
        } else {
            population.iter().map(|g| fitness.evaluate(g)).collect()
        }
    }

    /// Runs the GA from an initial population.
    ///
    /// # Panics
    ///
    /// Panics if the initial population is empty.
    pub fn run<G, F, C, M>(
        &self,
        initial_population: Vec<G>,
        fitness: &F,
        crossover: &C,
        mutation: &M,
        rng: &mut dyn RngCore,
    ) -> GaResult<G>
    where
        G: Genotype,
        F: FitnessFunction<G>,
        C: CrossoverOperator<G>,
        M: MutationOperator<G>,
    {
        assert!(
            !initial_population.is_empty(),
            "initial population must not be empty"
        );
        let pop_size = initial_population.len();
        let target = self.config.target_fitness.or(fitness.target());

        // Observability (autolock_obs) is write-only: per-generation spans
        // and population gauges record the run without touching the RNG
        // stream or any decision below.
        let _run_span = autolock_obs::span!("evo.run");
        let eval_counter = autolock_obs::counter("evo.fitness_evals");
        let gen_counter = autolock_obs::counter("evo.generations");
        let best_gauge = autolock_obs::gauge("evo.best_fitness");
        let mean_gauge = autolock_obs::gauge("evo.mean_fitness");

        let mut population = initial_population;
        let mut scores = self.evaluate_scores(&population, fitness);
        eval_counter.add(population.len() as u64);
        let mut evaluations = population.len();

        let mut history = vec![GenerationStats::from_fitness(0, &scores)];
        let (mut best_idx, mut best_fitness) = argmax(&scores);
        let mut best = population[best_idx].clone();
        let mut best_generation = 0usize;
        let mut reached_target = target.map(|t| best_fitness >= t).unwrap_or(false);
        let mut stagnant = 0usize;

        for generation in 1..=self.config.generations {
            if reached_target {
                break;
            }
            if let Some(limit) = self.config.stagnation_limit {
                if stagnant >= limit {
                    break;
                }
            }
            let _gen_span = autolock_obs::span!("evo.generation");
            gen_counter.incr();

            // Elites survive unchanged. NaN-safe ordering: a NaN fitness
            // (failed evaluation) sorts last and can never enter the elite
            // prefix, instead of panicking the engine.
            let mut order: Vec<usize> = (0..population.len()).collect();
            order.sort_by(|&a, &b| crate::order::desc_nan_last(scores[a], scores[b]));
            let mut next: Vec<G> = order
                .iter()
                .take(self.config.elitism.min(pop_size))
                .map(|&i| population[i].clone())
                .collect();

            // Fill the rest with offspring.
            while next.len() < pop_size {
                let pa = self.config.selection.select(&scores, rng);
                let pb = self.config.selection.select(&scores, rng);
                let (mut child_a, mut child_b) =
                    if rng.gen_bool(self.config.crossover_rate.clamp(0.0, 1.0)) {
                        crossover.crossover(&population[pa], &population[pb], rng)
                    } else {
                        (population[pa].clone(), population[pb].clone())
                    };
                if rng.gen_bool(self.config.mutation_rate.clamp(0.0, 1.0)) {
                    mutation.mutate(&mut child_a, rng);
                }
                if rng.gen_bool(self.config.mutation_rate.clamp(0.0, 1.0)) {
                    mutation.mutate(&mut child_b, rng);
                }
                next.push(child_a);
                if next.len() < pop_size {
                    next.push(child_b);
                }
            }

            population = next;
            scores = self.evaluate_scores(&population, fitness);
            eval_counter.add(population.len() as u64);
            evaluations += population.len();
            history.push(GenerationStats::from_fitness(generation, &scores));
            let stats = history.last().expect("just pushed");
            best_gauge.set(stats.best);
            mean_gauge.set(stats.mean);

            let (gen_best_idx, gen_best_fitness) = argmax(&scores);
            if gen_best_fitness > best_fitness {
                best_fitness = gen_best_fitness;
                best_idx = gen_best_idx;
                best = population[best_idx].clone();
                best_generation = generation;
                stagnant = 0;
            } else {
                stagnant += 1;
            }
            if let Some(t) = target {
                if best_fitness >= t {
                    reached_target = true;
                }
            }
        }

        GaResult {
            best,
            best_fitness,
            history,
            evaluations,
            best_generation,
            reached_target,
        }
    }
}

pub(crate) fn argmax(values: &[f64]) -> (usize, f64) {
    let mut idx = 0;
    let mut best = f64::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        if v > best {
            best = v;
            idx = i;
        }
    }
    (idx, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    struct OneMax;
    impl FitnessFunction<Vec<bool>> for OneMax {
        fn evaluate(&self, g: &Vec<bool>) -> f64 {
            g.iter().filter(|&&b| b).count() as f64
        }
    }

    struct UniformCrossover;
    impl CrossoverOperator<Vec<bool>> for UniformCrossover {
        fn crossover(
            &self,
            a: &Vec<bool>,
            b: &Vec<bool>,
            rng: &mut dyn RngCore,
        ) -> (Vec<bool>, Vec<bool>) {
            let mut c = a.clone();
            let mut d = b.clone();
            for i in 0..a.len().min(b.len()) {
                if rng.gen_bool(0.5) {
                    c[i] = b[i];
                    d[i] = a[i];
                }
            }
            (c, d)
        }
    }

    struct BitFlip;
    impl MutationOperator<Vec<bool>> for BitFlip {
        fn mutate(&self, g: &mut Vec<bool>, rng: &mut dyn RngCore) {
            let i = rng.gen_range(0..g.len());
            g[i] = !g[i];
        }
    }

    fn initial(pop: usize, len: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..pop)
            .map(|_| (0..len).map(|_| rng.gen_bool(0.2)).collect())
            .collect()
    }

    #[test]
    fn ga_improves_onemax() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let config = GaConfig {
            generations: 80,
            parallel: false,
            ..Default::default()
        };
        let result = GeneticAlgorithm::new(config).run(
            initial(30, 40, 2),
            &OneMax,
            &UniformCrossover,
            &BitFlip,
            &mut rng,
        );
        let start_best = result.history[0].best;
        assert!(result.best_fitness > start_best + 10.0);
        assert!(result.best_fitness >= 30.0);
        assert_eq!(result.history.len(), 81);
        assert_eq!(result.evaluations, 30 * 81);
        // History best is monotone non-decreasing at the "best so far" level.
        assert!(
            result
                .history
                .iter()
                .map(|s| s.best)
                .fold((f64::NEG_INFINITY, true), |(prev, ok), b| {
                    (
                        b.max(prev),
                        ok && (b >= prev || b >= result.history[0].best),
                    )
                })
                .1
        );
    }

    #[test]
    fn target_fitness_stops_early() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let config = GaConfig {
            generations: 500,
            target_fitness: Some(20.0),
            parallel: false,
            ..Default::default()
        };
        let result = GeneticAlgorithm::new(config).run(
            initial(20, 32, 4),
            &OneMax,
            &UniformCrossover,
            &BitFlip,
            &mut rng,
        );
        assert!(result.reached_target);
        assert!(result.history.len() < 501);
        assert!(result.best_fitness >= 20.0);
    }

    #[test]
    fn stagnation_limit_stops_early() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // Mutation-free, crossover-free run on a converged population stalls
        // immediately.
        let config = GaConfig {
            generations: 100,
            crossover_rate: 0.0,
            mutation_rate: 0.0,
            stagnation_limit: Some(3),
            parallel: false,
            ..Default::default()
        };
        let result = GeneticAlgorithm::new(config).run(
            vec![vec![true; 8]; 10],
            &OneMax,
            &UniformCrossover,
            &BitFlip,
            &mut rng,
        );
        assert!(result.history.len() <= 6);
        assert_eq!(result.best_fitness, 8.0);
    }

    #[test]
    fn elitism_preserves_best() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut pop = initial(15, 24, 8);
        pop[0] = vec![true; 24]; // plant an optimum
        let config = GaConfig {
            generations: 10,
            elitism: 1,
            mutation_rate: 1.0,
            parallel: false,
            ..Default::default()
        };
        let result =
            GeneticAlgorithm::new(config).run(pop, &OneMax, &UniformCrossover, &BitFlip, &mut rng);
        assert_eq!(result.best_fitness, 24.0);
        assert!(result.history.iter().all(|s| s.best == 24.0));
    }

    #[test]
    fn runs_are_reproducible_with_same_seed() {
        let run = |seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let config = GaConfig {
                generations: 20,
                parallel: false,
                ..Default::default()
            };
            GeneticAlgorithm::new(config)
                .run(
                    initial(12, 20, 1),
                    &OneMax,
                    &UniformCrossover,
                    &BitFlip,
                    &mut rng,
                )
                .best_fitness
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn parallel_and_serial_agree() {
        // Deterministic fitness => same scores regardless of evaluation order.
        let mut rng_a = ChaCha8Rng::seed_from_u64(13);
        let mut rng_b = ChaCha8Rng::seed_from_u64(13);
        let serial = GeneticAlgorithm::new(GaConfig {
            generations: 15,
            parallel: false,
            ..Default::default()
        })
        .run(
            initial(10, 16, 2),
            &OneMax,
            &UniformCrossover,
            &BitFlip,
            &mut rng_a,
        );
        let parallel = GeneticAlgorithm::new(GaConfig {
            generations: 15,
            parallel: true,
            ..Default::default()
        })
        .run(
            initial(10, 16, 2),
            &OneMax,
            &UniformCrossover,
            &BitFlip,
            &mut rng_b,
        );
        assert_eq!(serial.best_fitness, parallel.best_fitness);
        assert_eq!(serial.history, parallel.history);
    }

    /// OneMax, except the all-false genotype evaluates to NaN (a "failed"
    /// evaluation, e.g. a crashed attack inside a fitness function).
    struct NanOnAllFalse;
    impl FitnessFunction<Vec<bool>> for NanOnAllFalse {
        fn evaluate(&self, g: &Vec<bool>) -> f64 {
            let ones = g.iter().filter(|&&b| b).count();
            if ones == 0 {
                f64::NAN
            } else {
                ones as f64
            }
        }
    }

    #[test]
    fn nan_fitness_completes_and_never_becomes_elite() {
        for selection in [
            SelectionMethod::Tournament { size: 3 },
            SelectionMethod::Roulette,
            SelectionMethod::Rank,
        ] {
            let mut rng = ChaCha8Rng::seed_from_u64(21);
            // Plant NaN candidates (all-false genotypes) in the population.
            let mut pop = initial(12, 16, 22);
            pop[0] = vec![false; 16];
            pop[5] = vec![false; 16];
            let config = GaConfig {
                generations: 15,
                elitism: 2,
                selection,
                parallel: false,
                ..Default::default()
            };
            let result = GeneticAlgorithm::new(config).run(
                pop,
                &NanOnAllFalse,
                &UniformCrossover,
                &BitFlip,
                &mut rng,
            );
            // The run completed (no panic) and the reported best is a real
            // candidate, not the NaN one.
            assert!(
                result.best_fitness.is_finite(),
                "{}: best fitness {}",
                selection.name(),
                result.best_fitness
            );
            assert!(result.best.iter().any(|&b| b), "{}", selection.name());
        }
    }

    #[test]
    fn all_nan_population_still_terminates() {
        struct AlwaysNan;
        impl FitnessFunction<Vec<bool>> for AlwaysNan {
            fn evaluate(&self, _: &Vec<bool>) -> f64 {
                f64::NAN
            }
        }
        for selection in [
            SelectionMethod::Tournament { size: 2 },
            SelectionMethod::Roulette,
            SelectionMethod::Rank,
        ] {
            let mut rng = ChaCha8Rng::seed_from_u64(33);
            let config = GaConfig {
                generations: 5,
                selection,
                parallel: false,
                ..Default::default()
            };
            let result = GeneticAlgorithm::new(config).run(
                initial(8, 10, 34),
                &AlwaysNan,
                &UniformCrossover,
                &BitFlip,
                &mut rng,
            );
            assert_eq!(result.history.len(), 6, "{}", selection.name());
        }
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_population_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        GeneticAlgorithm::new(GaConfig::default()).run(
            Vec::<Vec<bool>>::new(),
            &OneMax,
            &UniformCrossover,
            &BitFlip,
            &mut rng,
        );
    }
}
