//! Generation-level checkpointing for the single-objective GA.
//!
//! A long evolution run inside a job service must survive being killed: the
//! engine state after every generation is a plain serializable value
//! ([`GaState`]), including the exact RNG stream position ([`ChaCha8Rng`] is
//! serde-serializable in this workspace). Persist it after each
//! [`GeneticAlgorithm::step`]; on restart, deserialize and keep stepping.
//!
//! **Determinism contract:** a run driven through `init_state` + `step` until
//! completion produces exactly the same [`GaResult`] as
//! [`GeneticAlgorithm::run`] with the same seed, and a state serialized after
//! any generation and resumed in a fresh process continues bit-for-bit
//! identically to the uninterrupted run. Both properties are pinned by tests.

use crate::{
    CrossoverOperator, FitnessFunction, GaResult, GenerationStats, GeneticAlgorithm, Genotype,
    MutationOperator,
};
use rand::{Rng, RngCore};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The complete, serializable state of a GA run between generations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaState<G> {
    /// Index of the last evaluated generation (0 = initial population).
    pub generation: usize,
    /// Current population.
    pub population: Vec<G>,
    /// Fitness of `population` (same order).
    pub scores: Vec<f64>,
    /// Per-generation statistics, index 0 = initial population.
    pub history: Vec<GenerationStats>,
    /// Best genotype seen so far across all generations.
    pub best: G,
    /// Fitness of `best`.
    pub best_fitness: f64,
    /// Generation at which `best` was first seen.
    pub best_generation: usize,
    /// Total fitness evaluations so far.
    pub evaluations: usize,
    /// Consecutive generations without improvement.
    pub stagnant: usize,
    /// Whether the target fitness has been reached.
    pub reached_target: bool,
    /// RNG, positioned exactly where the last generation left it.
    pub rng: ChaCha8Rng,
}

impl GeneticAlgorithm {
    /// Evaluates the initial population and builds the generation-0 state.
    ///
    /// # Panics
    ///
    /// Panics if the initial population is empty.
    pub fn init_state<G, F>(
        &self,
        initial_population: Vec<G>,
        fitness: &F,
        rng: ChaCha8Rng,
    ) -> GaState<G>
    where
        G: Genotype,
        F: FitnessFunction<G>,
    {
        let target = self.config().target_fitness.or(fitness.target());
        self.init_state_with(initial_population, target, rng, |pop| {
            self.evaluate_scores(pop, fitness)
        })
    }

    /// [`GeneticAlgorithm::init_state`] with the evaluation strategy injected.
    ///
    /// The island engine routes evaluation through surrogate screening and the
    /// shared fitness cache; keeping a single implementation here guarantees
    /// both paths build bit-identical generation-0 states.
    pub(crate) fn init_state_with<G>(
        &self,
        initial_population: Vec<G>,
        target: Option<f64>,
        rng: ChaCha8Rng,
        evaluate: impl FnOnce(&[G]) -> Vec<f64>,
    ) -> GaState<G>
    where
        G: Genotype,
    {
        assert!(
            !initial_population.is_empty(),
            "initial population must not be empty"
        );
        let population = initial_population;
        let scores = evaluate(&population);
        autolock_obs::counter("evo.fitness_evals").add(population.len() as u64);
        let history = vec![GenerationStats::from_fitness(0, &scores)];
        let (best_idx, best_fitness) = crate::ga::argmax(&scores);
        let best = population[best_idx].clone();
        let reached_target = target.map(|t| best_fitness >= t).unwrap_or(false);
        GaState {
            generation: 0,
            evaluations: population.len(),
            population,
            scores,
            history,
            best,
            best_fitness,
            best_generation: 0,
            stagnant: 0,
            reached_target,
            rng,
        }
    }

    /// `true` once no further [`GeneticAlgorithm::step`] will run: the
    /// configured generation budget is spent, the target fitness was reached,
    /// or the run stagnated past the configured limit.
    pub fn is_finished<G>(&self, state: &GaState<G>) -> bool {
        if state.generation >= self.config().generations || state.reached_target {
            return true;
        }
        if let Some(limit) = self.config().stagnation_limit {
            if state.stagnant >= limit {
                return true;
            }
        }
        false
    }

    /// Advances the state by exactly one generation. Returns `false` (and
    /// leaves the state untouched) if the run is already finished.
    ///
    /// Checkpoint boundary: the state is fully self-describing after every
    /// call, so callers may serialize it between any two calls.
    pub fn step<G, F, C, M>(
        &self,
        state: &mut GaState<G>,
        fitness: &F,
        crossover: &C,
        mutation: &M,
    ) -> bool
    where
        G: Genotype,
        F: FitnessFunction<G>,
        C: CrossoverOperator<G>,
        M: MutationOperator<G>,
    {
        let target = self.config().target_fitness.or(fitness.target());
        self.step_with(state, target, crossover, mutation, |pop| {
            self.evaluate_scores(pop, fitness)
        })
    }

    /// [`GeneticAlgorithm::step`] with the evaluation strategy injected.
    ///
    /// The offspring-loop RNG draw order (select, select, crossover?, mutate?,
    /// mutate?) lives only here, so the plain and island/surrogate paths can
    /// never drift apart; `step_loop_equals_run` pins the protocol.
    pub(crate) fn step_with<G, C, M>(
        &self,
        state: &mut GaState<G>,
        target: Option<f64>,
        crossover: &C,
        mutation: &M,
        evaluate: impl FnOnce(&[G]) -> Vec<f64>,
    ) -> bool
    where
        G: Genotype,
        C: CrossoverOperator<G>,
        M: MutationOperator<G>,
    {
        if self.is_finished(state) {
            return false;
        }
        let config = *self.config();
        let pop_size = state.population.len();
        let generation = state.generation + 1;

        let _gen_span = autolock_obs::span!("evo.generation");
        autolock_obs::counter("evo.generations").incr();

        // Elites survive unchanged (NaN-safe: NaN never enters the prefix).
        let mut order: Vec<usize> = (0..pop_size).collect();
        order.sort_by(|&a, &b| crate::order::desc_nan_last(state.scores[a], state.scores[b]));
        let mut next: Vec<G> = order
            .iter()
            .take(config.elitism.min(pop_size))
            .map(|&i| state.population[i].clone())
            .collect();

        // Fill the rest with offspring. Draw order matches
        // `GeneticAlgorithm::run` exactly — the equivalence is pinned by the
        // `step_loop_equals_run` test.
        let rng: &mut dyn RngCore = &mut state.rng;
        while next.len() < pop_size {
            let pa = config.selection.select(&state.scores, rng);
            let pb = config.selection.select(&state.scores, rng);
            let (mut child_a, mut child_b) = if rng.gen_bool(config.crossover_rate.clamp(0.0, 1.0))
            {
                crossover.crossover(&state.population[pa], &state.population[pb], rng)
            } else {
                (state.population[pa].clone(), state.population[pb].clone())
            };
            if rng.gen_bool(config.mutation_rate.clamp(0.0, 1.0)) {
                mutation.mutate(&mut child_a, rng);
            }
            if rng.gen_bool(config.mutation_rate.clamp(0.0, 1.0)) {
                mutation.mutate(&mut child_b, rng);
            }
            next.push(child_a);
            if next.len() < pop_size {
                next.push(child_b);
            }
        }

        state.population = next;
        state.scores = evaluate(&state.population);
        autolock_obs::counter("evo.fitness_evals").add(pop_size as u64);
        state.evaluations += pop_size;
        state
            .history
            .push(GenerationStats::from_fitness(generation, &state.scores));
        let stats = state.history.last().expect("just pushed");
        autolock_obs::gauge("evo.best_fitness").set(stats.best);
        autolock_obs::gauge("evo.mean_fitness").set(stats.mean);

        let (gen_best_idx, gen_best_fitness) = crate::ga::argmax(&state.scores);
        if gen_best_fitness > state.best_fitness {
            state.best_fitness = gen_best_fitness;
            state.best = state.population[gen_best_idx].clone();
            state.best_generation = generation;
            state.stagnant = 0;
        } else {
            state.stagnant += 1;
        }
        if let Some(t) = target {
            if state.best_fitness >= t {
                state.reached_target = true;
            }
        }
        state.generation = generation;
        true
    }
}

/// Converts a (finished or not) state into the plain [`GaResult`] summary.
pub(crate) fn finish_state<G>(state: GaState<G>) -> GaResult<G> {
    GaResult {
        best: state.best,
        best_fitness: state.best_fitness,
        history: state.history,
        evaluations: state.evaluations,
        best_generation: state.best_generation,
        reached_target: state.reached_target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GaConfig;
    use rand::SeedableRng;

    struct OneMax;
    impl FitnessFunction<Vec<bool>> for OneMax {
        fn evaluate(&self, g: &Vec<bool>) -> f64 {
            g.iter().filter(|&&b| b).count() as f64
        }
    }
    struct UniformCrossover;
    impl CrossoverOperator<Vec<bool>> for UniformCrossover {
        fn crossover(
            &self,
            a: &Vec<bool>,
            b: &Vec<bool>,
            rng: &mut dyn RngCore,
        ) -> (Vec<bool>, Vec<bool>) {
            let mut c = a.clone();
            let mut d = b.clone();
            for i in 0..a.len().min(b.len()) {
                if rng.gen_bool(0.5) {
                    c[i] = b[i];
                    d[i] = a[i];
                }
            }
            (c, d)
        }
    }
    struct BitFlip;
    impl MutationOperator<Vec<bool>> for BitFlip {
        fn mutate(&self, g: &mut Vec<bool>, rng: &mut dyn RngCore) {
            let i = rng.gen_range(0..g.len());
            g[i] = !g[i];
        }
    }

    fn initial(pop: usize, len: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..pop)
            .map(|_| (0..len).map(|_| rng.gen_bool(0.2)).collect())
            .collect()
    }

    fn config() -> GaConfig {
        GaConfig {
            generations: 25,
            parallel: false,
            ..Default::default()
        }
    }

    /// Drives `init_state` + `step` to completion — the loop every consumer
    /// (the `ResumableGa` wrapper, the island engine) builds on.
    fn run_stepped(ga: &GeneticAlgorithm, pop: Vec<Vec<bool>>, seed: u64) -> GaResult<Vec<bool>> {
        let mut state = ga.init_state(pop, &OneMax, ChaCha8Rng::seed_from_u64(seed));
        while ga.step(&mut state, &OneMax, &UniformCrossover, &BitFlip) {}
        finish_state(state)
    }

    #[test]
    fn step_loop_equals_run() {
        let ga = GeneticAlgorithm::new(config());
        let mut run_rng = ChaCha8Rng::seed_from_u64(5);
        let expected = ga.run(
            initial(14, 24, 6),
            &OneMax,
            &UniformCrossover,
            &BitFlip,
            &mut run_rng,
        );
        let stepped = run_stepped(&ga, initial(14, 24, 6), 5);
        assert_eq!(expected, stepped);
    }

    #[test]
    fn resume_from_serialized_state_is_bit_identical() {
        let ga = GeneticAlgorithm::new(config());

        // Uninterrupted reference run.
        let reference = run_stepped(&ga, initial(12, 20, 9), 10);

        // Interrupted run: stop after 7 generations, serialize ("the process
        // is killed"), deserialize in a "fresh process", keep going.
        let mut state = ga.init_state(initial(12, 20, 9), &OneMax, ChaCha8Rng::seed_from_u64(10));
        for _ in 0..7 {
            assert!(ga.step(&mut state, &OneMax, &UniformCrossover, &BitFlip));
        }
        let checkpoint = serde_json::to_string(&state).unwrap();
        drop(state);

        let mut resumed: GaState<Vec<bool>> = serde_json::from_str(&checkpoint).unwrap();
        while ga.step(&mut resumed, &OneMax, &UniformCrossover, &BitFlip) {}
        assert_eq!(reference, finish_state(resumed));
    }

    #[test]
    fn step_respects_early_stopping() {
        let ga = GeneticAlgorithm::new(GaConfig {
            generations: 500,
            target_fitness: Some(10.0),
            parallel: false,
            ..Default::default()
        });
        let mut state = ga.init_state(initial(16, 16, 3), &OneMax, ChaCha8Rng::seed_from_u64(4));
        let mut steps = 0;
        while ga.step(&mut state, &OneMax, &UniformCrossover, &BitFlip) {
            steps += 1;
            assert!(steps < 500, "target fitness never reached");
        }
        assert!(state.reached_target);
        assert!(ga.is_finished(&state));
        // A finished state refuses to step and stays untouched.
        let before = state.clone();
        assert!(!ga.step(&mut state, &OneMax, &UniformCrossover, &BitFlip));
        assert_eq!(before, state);
    }

    #[test]
    fn on_generation_sees_every_checkpoint_boundary() {
        let ga = GeneticAlgorithm::new(GaConfig {
            generations: 8,
            parallel: false,
            ..Default::default()
        });
        let mut seen = Vec::new();
        let mut state = ga.init_state(initial(10, 12, 2), &OneMax, ChaCha8Rng::seed_from_u64(1));
        seen.push(state.generation);
        while ga.step(&mut state, &OneMax, &UniformCrossover, &BitFlip) {
            seen.push(state.generation);
        }
        assert_eq!(seen, (0..=8).collect::<Vec<_>>());
    }
}
