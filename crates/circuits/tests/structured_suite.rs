//! Determinism and shape properties of the structured generators, plus the
//! `.bench` round trip of the embedded c432.

use autolock_circuits::{
    c432, c432_bench_text, structured_entries, suite_circuit, synth_structured, StructuredBlock,
    StructuredConfig, SuiteScale,
};
use autolock_netlist::{parse_bench, topo, write_bench};
use proptest::prelude::*;

fn cfg(
    num_inputs: usize,
    blocks: Vec<StructuredBlock>,
    glue_gates: usize,
    seed: u64,
) -> StructuredConfig {
    StructuredConfig {
        name: "prop".into(),
        num_inputs,
        blocks,
        glue_gates,
        seed,
    }
}

/// Same seed ⇒ bit-identical netlist; different seed ⇒ different wiring.
fn assert_seed_determinism(config: &StructuredConfig) {
    let a = synth_structured(config);
    let b = synth_structured(config);
    assert_eq!(a, b, "same config must produce bit-identical netlists");
    assert_eq!(write_bench(&a), write_bench(&b));
    let mut other = config.clone();
    other.seed = config.seed.wrapping_add(1);
    assert_ne!(synth_structured(&other), a, "seed must matter");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn adder_tree_properties(
        width in 2usize..20,
        lanes in 2usize..8,
        seed in 0u64..1000,
    ) {
        let c = cfg(2 * width, vec![StructuredBlock::AdderTree { width, lanes }], 0, seed);
        let nl = synth_structured(&c);
        prop_assert!(nl.validate().is_ok());
        // lanes-1 ripple adders, >= 2 gates per added bit.
        prop_assert!(nl.num_logic_gates() >= (lanes - 1) * width * 2);
        // Ripple chains make depth at least the operand width.
        prop_assert!(topo::depth(&nl).unwrap() >= width);
        assert_seed_determinism(&c);
    }

    #[test]
    fn carry_select_properties(
        width in 4usize..48,
        block in 2usize..8,
        seed in 0u64..1000,
    ) {
        let c = cfg(width, vec![StructuredBlock::CarrySelectAdder { width, block }], 0, seed);
        let nl = synth_structured(&c);
        prop_assert!(nl.validate().is_ok());
        prop_assert!(nl.num_logic_gates() >= width * 2);
        if width > block {
            // At least one select stage: MUXes present, and the select net
            // fans out across its whole block.
            let muxes = nl
                .iter()
                .filter(|(_, g)| g.kind == autolock_netlist::GateKind::Mux)
                .count();
            prop_assert!(muxes >= block.min(width - block));
            let max_fanout = nl.fanouts().iter().map(Vec::len).max().unwrap_or(0);
            prop_assert!(max_fanout > block);
        }
        assert_seed_determinism(&c);
    }

    #[test]
    fn array_multiplier_properties(
        width in 2usize..14,
        seed in 0u64..1000,
    ) {
        let c = cfg(2 * width, vec![StructuredBlock::ArrayMultiplier { width }], 0, seed);
        let nl = synth_structured(&c);
        prop_assert!(nl.validate().is_ok());
        // The partial-product plane alone is width^2 AND gates.
        let ands = nl
            .iter()
            .filter(|(_, g)| g.kind == autolock_netlist::GateKind::And)
            .count();
        prop_assert!(ands >= width * width);
        prop_assert!(topo::depth(&nl).unwrap() >= width);
        assert_seed_determinism(&c);
    }

    #[test]
    fn mux_decode_properties(
        select_bits in 2usize..6,
        data_words in 2usize..16,
        word_bits in 1usize..16,
        seed in 0u64..1000,
    ) {
        let c = cfg(
            select_bits + word_bits,
            vec![StructuredBlock::MuxDecode { select_bits, data_words, word_bits }],
            0,
            seed,
        );
        let nl = synth_structured(&c);
        prop_assert!(nl.validate().is_ok());
        let words = data_words.min(1 << select_bits);
        // Inverters for the select literals, one decode AND per word, one
        // gating AND per word bit.
        prop_assert!(
            nl.num_logic_gates() >= select_bits + words + words * word_bits
        );
        // One merge-tree root per word bit plus the valid flag.
        prop_assert_eq!(nl.num_outputs(), word_bits + 1);
        assert_seed_determinism(&c);
    }

    #[test]
    fn compositions_are_deterministic_and_valid(
        seed in 0u64..500,
        glue in 0usize..64,
    ) {
        let c = cfg(
            64,
            vec![
                StructuredBlock::ArrayMultiplier { width: 6 },
                StructuredBlock::MuxDecode { select_bits: 3, data_words: 8, word_bits: 4 },
                StructuredBlock::CarrySelectAdder { width: 12, block: 4 },
                StructuredBlock::AdderTree { width: 8, lanes: 3 },
            ],
            glue,
            seed,
        );
        let nl = synth_structured(&c);
        prop_assert!(nl.validate().is_ok());
        assert_seed_determinism(&c);
    }
}

#[test]
fn validate_holds_at_ten_thousand_gates() {
    // A composition past the largest suite member: ~12k gates.
    let c = cfg(
        256,
        vec![
            StructuredBlock::ArrayMultiplier { width: 26 },
            StructuredBlock::ArrayMultiplier { width: 20 },
            StructuredBlock::CarrySelectAdder {
                width: 64,
                block: 8,
            },
            StructuredBlock::MuxDecode {
                select_bits: 6,
                data_words: 48,
                word_bits: 32,
            },
            StructuredBlock::AdderTree {
                width: 32,
                lanes: 8,
            },
        ],
        500,
        0xB16,
    );
    let nl = synth_structured(&c);
    assert!(nl.num_logic_gates() >= 10_000, "{}", nl.num_logic_gates());
    nl.validate().unwrap();
    assert_eq!(synth_structured(&c), nl);
}

#[test]
fn every_structured_suite_member_is_seed_deterministic() {
    for entry in structured_entries(SuiteScale::Full) {
        let a = suite_circuit(&entry.name).unwrap();
        let b = suite_circuit(&entry.name).unwrap();
        assert_eq!(a, b, "{}", entry.name);
        assert_eq!(a.num_logic_gates(), entry.gates, "{}", entry.name);
    }
}

#[test]
fn c432_bench_round_trip() {
    let nl = c432();
    nl.validate().unwrap();
    // write → parse → identical structure.
    let text = write_bench(&nl);
    let back = parse_bench("c432", &text).unwrap();
    assert_eq!(back.num_inputs(), nl.num_inputs());
    assert_eq!(back.num_outputs(), nl.num_outputs());
    assert_eq!(back.num_logic_gates(), nl.num_logic_gates());
    // Function preserved on a deterministic input sample.
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x432);
    for _ in 0..64 {
        let inputs: Vec<bool> = (0..nl.num_inputs()).map(|_| rng.gen()).collect();
        assert_eq!(
            nl.evaluate(&inputs).unwrap(),
            back.evaluate(&inputs).unwrap()
        );
    }
    // The embedded text itself parses to the same netlist (idempotence of
    // the source of truth).
    let again = parse_bench("c432", c432_bench_text()).unwrap();
    assert_eq!(again, nl);
}
