//! Deterministic sequential demo circuits for the ingestion front door.
//!
//! The combinational generators in this crate cover the attack experiments;
//! this module derives small **sequential** circuits from them so the
//! `.aag` ingestion path (cut at registers, or unrolled to k frames) has a
//! deterministic in-repo source. A sequential demo is a
//! [`SequentialCircuit`]: a combinational core in which the trailing
//! primary inputs are re-interpreted as register outputs (pseudo-PIs), with
//! next-state functions wired to the core's primary-output cones.
//!
//! Demo cores come from the **structured** (datapath) generator, not the
//! uniform random one: random locality-biased gates frequently feed a gate
//! the same signal twice (`XOR(a,a)`, `NOR(a,a)`, …), and under the AIG
//! simplification every ingestion pass applies, those constants cascade
//! until most outputs fold away — leaving nothing to lock or attack.
//! Datapath blocks (adder trees, carry-select adders) have no such
//! degeneracy, so their cones survive ingestion intact.

use crate::structured::{synth_structured, StructuredBlock, StructuredConfig};
use autolock_netlist::ingest::{Latch, SequentialCircuit};
use autolock_netlist::{GateKind, Netlist};

/// Re-interprets the trailing `latches` primary inputs of `core` as
/// register state, producing a [`SequentialCircuit`].
///
/// Register `i` gets the `i % outputs`-th primary output as its next-state
/// function (so every next-state cone is a real logic cone, and unrolling
/// produces genuine cross-frame dependencies). Initial values alternate
/// 0, 1, 0, 1, ... so both AIGER init encodings are exercised.
///
/// # Panics
///
/// Panics when `latches == 0`, when the core has no outputs, or when fewer
/// than `latches + 1` inputs exist (at least one true primary input must
/// remain).
pub fn sequentialize(core: Netlist, latches: usize) -> SequentialCircuit {
    assert!(latches > 0, "a sequential demo needs at least one latch");
    assert!(
        core.num_outputs() > 0,
        "a sequential demo needs at least one next-state cone"
    );
    let input_ids: Vec<_> = core
        .iter()
        .filter(|(_, g)| g.kind == GateKind::Input)
        .map(|(id, _)| id)
        .collect();
    assert!(
        input_ids.len() > latches,
        "need at least one true primary input besides the {latches} latch(es)"
    );
    let output_ids = core.outputs().to_vec();
    let first = input_ids.len() - latches;
    let latch_records: Vec<Latch> = (0..latches)
        .map(|i| Latch {
            state: input_ids[first + i],
            next: output_ids[i % output_ids.len()],
            init: i % 2 == 1,
        })
        .collect();
    SequentialCircuit::new(core, latch_records).expect("trailing inputs form a valid register set")
}

/// Builds a deterministic sequential circuit around a structured datapath
/// core: an adder tree over `inputs + latches` primary inputs, with the
/// trailing `latches` inputs converted to registers by [`sequentialize`].
///
/// The adder tree's `width`/`lanes` shape is derived from `gates` (roughly
/// `9 * width * lanes` gates), so callers size demos the same way they size
/// [`synth_circuit`](crate::synth_circuit) ones.
///
/// # Panics
///
/// Panics when `latches == 0` or `inputs == 0`.
pub fn synth_sequential(
    name: &str,
    inputs: usize,
    latches: usize,
    gates: usize,
    seed: u64,
) -> SequentialCircuit {
    assert!(inputs > 0, "a sequential demo needs true primary inputs");
    // width*lanes ≈ gates/9 (one full adder ≈ 9 gates), min 2×2.
    let cells = (gates / 9).max(4);
    let lanes = (cells / 8).clamp(2, 8);
    let width = (cells / lanes).max(2);
    let core = synth_structured(&StructuredConfig {
        name: name.to_string(),
        num_inputs: inputs + latches,
        blocks: vec![StructuredBlock::AdderTree { width, lanes }],
        glue_gates: 0,
        seed,
    });
    sequentialize(core, latches)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_demo_is_deterministic_and_valid() {
        let a = synth_sequential("seq_demo", 6, 3, 150, 7);
        let b = synth_sequential("seq_demo", 6, 3, 150, 7);
        assert_eq!(a.core(), b.core());
        assert_eq!(a.num_latches(), 3);
        // Cut view: the 3 latch states join the 6 true PIs.
        let cut = a.cut();
        assert_eq!(cut.num_inputs(), 9);
        cut.validate().unwrap();
        // Unrolled view: per-frame PIs (latch states become consts/wires).
        let unrolled = a.unroll(2).unwrap();
        assert_eq!(unrolled.num_inputs(), 12);
        unrolled.validate().unwrap();
    }

    #[test]
    fn init_values_alternate() {
        let seq = synth_sequential("seq_init", 4, 4, 100, 9);
        let inits: Vec<bool> = seq.latches().iter().map(|l| l.init).collect();
        assert_eq!(inits, vec![false, true, false, true]);
    }

    #[test]
    fn round_trips_through_aiger_without_collapsing() {
        let seq = synth_sequential("seq_rt", 5, 2, 120, 11);
        let text = autolock_netlist::ingest::write_aag_seq(&seq).unwrap();
        let back = autolock_netlist::ingest::parse_aag("seq_rt", &text).unwrap();
        assert_eq!(back.num_latches(), 2);
        // The structured core must survive AIG simplification: the
        // re-ingested cut view keeps a real logic cone (this is the guard
        // against the random-generator degeneracy described in the module
        // docs).
        let cut = back.cut();
        assert!(
            cut.num_logic_gates() > 20,
            "ingested demo collapsed to {} gates",
            cut.num_logic_gates()
        );
        // The demo reuses PO cones as next-state functions, so `cut()` on
        // the original dedups those outputs while the round-trip (with its
        // own PO wrapper gates) does not — compare the unrolled views,
        // whose outputs are the frame-major POs on both sides.
        let a = seq.unroll(2).unwrap();
        let b = back.unroll(2).unwrap();
        assert!(autolock_netlist::equiv::exhaustive_equivalent(&a, &[], &b, &[]).unwrap());
    }

    #[test]
    fn sequentialize_rejects_degenerate_shapes() {
        let core = crate::synth_circuit("tiny", 4, 2, 20, 1);
        let result = std::panic::catch_unwind(|| sequentialize(core, 4));
        assert!(result.is_err(), "must keep at least one true input");
    }
}
