//! Benchmark circuit library for the AutoLock reproduction.
//!
//! The AutoLock / MuxLink / D-MUX line of work evaluates on ISCAS-85 and
//! ITC-99 gate-level benchmarks. Those netlists come from proprietary
//! synthesis flows, so this crate substitutes:
//!
//! * the real **c17** ISCAS-85 circuit (tiny, public, reproduced exactly),
//! * a documented **c432 reconstruction** from its published high-level
//!   model, embedded as `.bench` text (see [`iscas`]),
//! * a deterministic **random ISCAS-like generator** ([`generator`]) whose
//!   [`suite`] members (`s160`, `s380`, ... "synthetic-<gate count>") match
//!   classic interfaces and gate counts, and
//! * **structured datapath generators** ([`structured`]): adder trees,
//!   carry-select adders, array multipliers and mux/decode control blocks
//!   composed into large members (`st1355` ... `st7552`, `xl11k`) with the
//!   realistic depth, fanout and reconvergence of the big ISCAS-85 circuits,
//! * **sequential demos** ([`sequential`]): deterministic registered
//!   circuits for the AIGER/sequential ingestion path (cut or unrolled
//!   attack targets), and AIGER **round-trip suite members** (`<base>_aig`)
//!   that re-ingest existing members through the `.aag` writer/parser.
//!
//! Every algorithm in this repository (locking, attacks, evolutionary
//! search) only looks at gate-level structure, so circuits with realistic
//! structural statistics exercise the same code paths as the published
//! benchmarks. See `README.md` in this crate for the suite map.
//!
//! ```
//! use autolock_circuits::{c17, suite, SuiteScale};
//!
//! let c17 = c17();
//! assert_eq!(c17.num_inputs(), 5);
//! assert_eq!(c17.num_outputs(), 2);
//!
//! let bench = suite::standard_suite(SuiteScale::Quick);
//! assert!(bench.iter().any(|c| c.name() == "c17"));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod generator;
pub mod sequential;
pub mod structured;
pub mod suite;

mod iscas;

pub use generator::{synth_circuit, CircuitGenerator, GeneratorConfig};
pub use iscas::{c17, c17_bench_text, c432, c432_bench_text};
pub use sequential::{sequentialize, synth_sequential};
pub use structured::{synth_structured, StructuredBlock, StructuredConfig};
pub use suite::{
    small_suite, standard_suite, structured_entries, suite_circuit, suite_entries, SuiteEntry,
    SuiteScale,
};
