//! Benchmark circuit library for the AutoLock reproduction.
//!
//! The AutoLock / MuxLink / D-MUX line of work evaluates on ISCAS-85 and
//! ITC-99 gate-level benchmarks. Those netlists come from proprietary
//! synthesis flows, so this crate substitutes:
//!
//! * the real **c17** ISCAS-85 circuit (tiny, public, reproduced exactly), and
//! * a deterministic **synthetic ISCAS-like generator** ([`generator`]) that
//!   produces combinational netlists with configurable size, depth and fan-in
//!   distribution; the [`suite`] module instantiates a fixed family of such
//!   circuits whose gate counts mirror the ISCAS-85 family (`s432`, `s880`,
//!   `s1355`, ... naming follows "synthetic-<approx gate count>").
//!
//! The substitution is documented in `DESIGN.md`: every algorithm in this
//! repository (locking, attacks, evolutionary search) only looks at gate-level
//! structure, so circuits with realistic structural statistics exercise the
//! same code paths as the published benchmarks.
//!
//! ```
//! use autolock_circuits::{c17, suite};
//!
//! let c17 = c17();
//! assert_eq!(c17.num_inputs(), 5);
//! assert_eq!(c17.num_outputs(), 2);
//!
//! let bench = suite::standard_suite();
//! assert!(bench.iter().any(|c| c.name() == "c17"));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod generator;
pub mod suite;

mod iscas;

pub use generator::{synth_circuit, CircuitGenerator, GeneratorConfig};
pub use iscas::{c17, c17_bench_text};
pub use suite::{small_suite, standard_suite, suite_circuit, suite_entries, SuiteEntry};
