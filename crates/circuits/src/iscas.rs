//! Embedded ISCAS-85 benchmark circuits.
//!
//! Two members of the family ship as `.bench` source text:
//!
//! * **c17** — the tiny 6-NAND benchmark, reproduced exactly from its public
//!   `.bench` description.
//! * **c432** — the 27-channel interrupt controller. The verbatim gate list
//!   of the circulating `c432.bench` is not redistributable from this
//!   offline workspace, so the embedded text is a **documented
//!   reconstruction** built from the published high-level model (Hansen,
//!   Yalçın & Hayes, *Unveiling the ISCAS-85 Benchmarks*, IEEE D&T 1999):
//!   the canonical interface (36 primary inputs, 7 primary outputs, ISCAS
//!   numeric signal names), the same function (three 9-bit request buses
//!   with bus priority A > B > C, per-channel enables, priority encoding of
//!   the winning channel), and a gate inventory in the same class as the
//!   original's 160 gates (142 here: 36 inverters feeding inverted-phase
//!   NOR/OR logic, AND priority chain, OR merge trees). Every algorithm in
//!   this repository consumes gate-level *structure*, so the reconstruction
//!   exercises the identical code paths — including the `.bench` dialect
//!   quirks of the real distribution (lowercase keywords, digit-leading
//!   signal names) that the parser must accept.
//!
//! Input mapping of the reconstruction (channel-major): channel `i` reads
//! request bits `A_i`, `B_i`, `C_i` and enable `E_i` from the canonical
//! input names in declaration order, four per channel. Outputs: `223gat`,
//! `329gat`, `370gat` are the bus-grant flags PA, PB, PC; `421gat`,
//! `432gat`, `431gat`, `430gat` encode the winning channel index (bit 3
//! down to bit 0), gated by "any grant".

use autolock_netlist::{parse_bench, Netlist};

/// The canonical `.bench` text of ISCAS-85 c17 (5 inputs, 2 outputs, 6 NAND
/// gates).
pub const C17_BENCH: &str = "\
# c17 ISCAS-85 benchmark
INPUT(G1gat)
INPUT(G2gat)
INPUT(G3gat)
INPUT(G6gat)
INPUT(G7gat)
OUTPUT(G22gat)
OUTPUT(G23gat)
G10gat = NAND(G1gat, G3gat)
G11gat = NAND(G3gat, G6gat)
G16gat = NAND(G2gat, G11gat)
G19gat = NAND(G11gat, G7gat)
G22gat = NAND(G10gat, G16gat)
G23gat = NAND(G16gat, G19gat)
";

/// Returns the c17 `.bench` source text.
pub fn c17_bench_text() -> &'static str {
    C17_BENCH
}

/// Parses and returns the c17 netlist.
///
/// # Panics
///
/// Never panics in practice; the embedded text is valid.
pub fn c17() -> Netlist {
    parse_bench("c17", C17_BENCH).expect("embedded c17 is valid")
}

/// `.bench` text of the c432 reconstruction (see the [module
/// documentation](self) for provenance): 36 inputs, 7 outputs, 142 gates
/// (36 NOT, 35 NOR, 52 OR, 19 AND). Lowercase gate keywords and
/// digit-leading names follow the circulating ISCAS-85 distribution.
pub const C432_BENCH: &str = "\
# c432 27-channel interrupt controller (reconstruction from the published
# high-level model; canonical interface, see autolock_circuits::iscas docs)
# 36 inputs, 7 outputs, 142 gates
INPUT(1gat)
INPUT(4gat)
INPUT(8gat)
INPUT(11gat)
INPUT(14gat)
INPUT(17gat)
INPUT(21gat)
INPUT(24gat)
INPUT(27gat)
INPUT(30gat)
INPUT(34gat)
INPUT(37gat)
INPUT(40gat)
INPUT(43gat)
INPUT(47gat)
INPUT(50gat)
INPUT(53gat)
INPUT(56gat)
INPUT(60gat)
INPUT(63gat)
INPUT(66gat)
INPUT(69gat)
INPUT(73gat)
INPUT(76gat)
INPUT(79gat)
INPUT(82gat)
INPUT(86gat)
INPUT(89gat)
INPUT(92gat)
INPUT(95gat)
INPUT(99gat)
INPUT(102gat)
INPUT(105gat)
INPUT(108gat)
INPUT(112gat)
INPUT(115gat)
OUTPUT(223gat)
OUTPUT(329gat)
OUTPUT(370gat)
OUTPUT(421gat)
OUTPUT(430gat)
OUTPUT(431gat)
OUTPUT(432gat)
# channel 0: A=1gat B=4gat C=8gat E=11gat
na0gat = not(1gat)
nb0gat = not(4gat)
nc0gat = not(8gat)
ne0gat = not(11gat)
ae0gat = nor(na0gat, ne0gat)
nbe0gat = or(nb0gat, ne0gat)
bq0gat = nor(nbe0gat, 1gat)
nce0gat = or(nc0gat, ne0gat)
cq0gat = nor(nce0gat, 1gat, 4gat)
g0gat = or(ae0gat, bq0gat, cq0gat)
# channel 1: A=14gat B=17gat C=21gat E=24gat
na1gat = not(14gat)
nb1gat = not(17gat)
nc1gat = not(21gat)
ne1gat = not(24gat)
ae1gat = nor(na1gat, ne1gat)
nbe1gat = or(nb1gat, ne1gat)
bq1gat = nor(nbe1gat, 14gat)
nce1gat = or(nc1gat, ne1gat)
cq1gat = nor(nce1gat, 14gat, 17gat)
g1gat = or(ae1gat, bq1gat, cq1gat)
ng1gat = nor(ae1gat, bq1gat, cq1gat)
# channel 2: A=27gat B=30gat C=34gat E=37gat
na2gat = not(27gat)
nb2gat = not(30gat)
nc2gat = not(34gat)
ne2gat = not(37gat)
ae2gat = nor(na2gat, ne2gat)
nbe2gat = or(nb2gat, ne2gat)
bq2gat = nor(nbe2gat, 27gat)
nce2gat = or(nc2gat, ne2gat)
cq2gat = nor(nce2gat, 27gat, 30gat)
g2gat = or(ae2gat, bq2gat, cq2gat)
ng2gat = nor(ae2gat, bq2gat, cq2gat)
# channel 3: A=40gat B=43gat C=47gat E=50gat
na3gat = not(40gat)
nb3gat = not(43gat)
nc3gat = not(47gat)
ne3gat = not(50gat)
ae3gat = nor(na3gat, ne3gat)
nbe3gat = or(nb3gat, ne3gat)
bq3gat = nor(nbe3gat, 40gat)
nce3gat = or(nc3gat, ne3gat)
cq3gat = nor(nce3gat, 40gat, 43gat)
g3gat = or(ae3gat, bq3gat, cq3gat)
ng3gat = nor(ae3gat, bq3gat, cq3gat)
# channel 4: A=53gat B=56gat C=60gat E=63gat
na4gat = not(53gat)
nb4gat = not(56gat)
nc4gat = not(60gat)
ne4gat = not(63gat)
ae4gat = nor(na4gat, ne4gat)
nbe4gat = or(nb4gat, ne4gat)
bq4gat = nor(nbe4gat, 53gat)
nce4gat = or(nc4gat, ne4gat)
cq4gat = nor(nce4gat, 53gat, 56gat)
g4gat = or(ae4gat, bq4gat, cq4gat)
ng4gat = nor(ae4gat, bq4gat, cq4gat)
# channel 5: A=66gat B=69gat C=73gat E=76gat
na5gat = not(66gat)
nb5gat = not(69gat)
nc5gat = not(73gat)
ne5gat = not(76gat)
ae5gat = nor(na5gat, ne5gat)
nbe5gat = or(nb5gat, ne5gat)
bq5gat = nor(nbe5gat, 66gat)
nce5gat = or(nc5gat, ne5gat)
cq5gat = nor(nce5gat, 66gat, 69gat)
g5gat = or(ae5gat, bq5gat, cq5gat)
ng5gat = nor(ae5gat, bq5gat, cq5gat)
# channel 6: A=79gat B=82gat C=86gat E=89gat
na6gat = not(79gat)
nb6gat = not(82gat)
nc6gat = not(86gat)
ne6gat = not(89gat)
ae6gat = nor(na6gat, ne6gat)
nbe6gat = or(nb6gat, ne6gat)
bq6gat = nor(nbe6gat, 79gat)
nce6gat = or(nc6gat, ne6gat)
cq6gat = nor(nce6gat, 79gat, 82gat)
g6gat = or(ae6gat, bq6gat, cq6gat)
ng6gat = nor(ae6gat, bq6gat, cq6gat)
# channel 7: A=92gat B=95gat C=99gat E=102gat
na7gat = not(92gat)
nb7gat = not(95gat)
nc7gat = not(99gat)
ne7gat = not(102gat)
ae7gat = nor(na7gat, ne7gat)
nbe7gat = or(nb7gat, ne7gat)
bq7gat = nor(nbe7gat, 92gat)
nce7gat = or(nc7gat, ne7gat)
cq7gat = nor(nce7gat, 92gat, 95gat)
g7gat = or(ae7gat, bq7gat, cq7gat)
ng7gat = nor(ae7gat, bq7gat, cq7gat)
# channel 8: A=105gat B=108gat C=112gat E=115gat
na8gat = not(105gat)
nb8gat = not(108gat)
nc8gat = not(112gat)
ne8gat = not(115gat)
ae8gat = nor(na8gat, ne8gat)
nbe8gat = or(nb8gat, ne8gat)
bq8gat = nor(nbe8gat, 105gat)
nce8gat = or(nc8gat, ne8gat)
cq8gat = nor(nce8gat, 105gat, 108gat)
g8gat = or(ae8gat, bq8gat, cq8gat)
ng8gat = nor(ae8gat, bq8gat, cq8gat)
# priority chain: channel 8 highest
h7gat = and(g7gat, ng8gat)
cum6gat = and(ng8gat, ng7gat)
h6gat = and(g6gat, cum6gat)
cum5gat = and(cum6gat, ng6gat)
h5gat = and(g5gat, cum5gat)
cum4gat = and(cum5gat, ng5gat)
h4gat = and(g4gat, cum4gat)
cum3gat = and(cum4gat, ng4gat)
h3gat = and(g3gat, cum3gat)
cum2gat = and(cum3gat, ng3gat)
h2gat = and(g2gat, cum2gat)
cum1gat = and(cum2gat, ng2gat)
h1gat = and(g1gat, cum1gat)
cum0gat = and(cum1gat, ng1gat)
h0gat = and(g0gat, cum0gat)
# bus grant flags PA / PB / PC
pa1gat = or(ae0gat, ae1gat, ae2gat)
pa2gat = or(ae3gat, ae4gat, ae5gat)
pa3gat = or(ae6gat, ae7gat, ae8gat)
223gat = or(pa1gat, pa2gat, pa3gat)
pb1gat = or(bq0gat, bq1gat, bq2gat)
pb2gat = or(bq3gat, bq4gat, bq5gat)
pb3gat = or(bq6gat, bq7gat, bq8gat)
329gat = or(pb1gat, pb2gat, pb3gat)
pc1gat = or(cq0gat, cq1gat, cq2gat)
pc2gat = or(cq3gat, cq4gat, cq5gat)
pc3gat = or(cq6gat, cq7gat, cq8gat)
370gat = or(pc1gat, pc2gat, pc3gat)
# any-grant flag over the one-hot channel vector
any1gat = or(h0gat, h1gat, h2gat)
any2gat = or(h3gat, h4gat, h5gat)
any3gat = or(h6gat, h7gat, g8gat)
anygat = or(any1gat, any2gat, any3gat)
# winning-channel address, gated by any-grant
b0agat = or(h1gat, h3gat)
b0bgat = or(h5gat, h7gat)
b0gat = or(b0agat, b0bgat)
430gat = and(b0gat, anygat)
b1agat = or(h2gat, h3gat)
b1bgat = or(h6gat, h7gat)
b1gat = or(b1agat, b1bgat)
431gat = and(b1gat, anygat)
b2agat = or(h4gat, h5gat)
b2bgat = or(h6gat, h7gat)
b2gat = or(b2agat, b2bgat)
432gat = and(b2gat, anygat)
421gat = and(g8gat, anygat)
";

/// Returns the c432 `.bench` source text (see [`C432_BENCH`]).
pub fn c432_bench_text() -> &'static str {
    C432_BENCH
}

/// Parses and returns the c432 netlist.
///
/// # Panics
///
/// Never panics in practice; the embedded text is valid.
pub fn c432() -> Netlist {
    parse_bench("c432", C432_BENCH).expect("embedded c432 is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_shape() {
        let nl = c17();
        assert_eq!(nl.num_inputs(), 5);
        assert_eq!(nl.num_outputs(), 2);
        assert_eq!(nl.num_logic_gates(), 6);
        nl.validate().unwrap();
    }

    #[test]
    fn c17_truth_spot_checks() {
        let nl = c17();
        // Inputs in declaration order: G1, G2, G3, G6, G7.
        // All zeros: G10 = NAND(0,0)=1, G11=1, G16=NAND(0,1)=1, G19=NAND(1,0)=1,
        // G22=NAND(1,1)=0, G23=NAND(1,1)=0.
        assert_eq!(
            nl.evaluate(&[false, false, false, false, false]).unwrap(),
            vec![false, false]
        );
        // All ones: G10=NAND(1,1)=0, G11=0, G16=NAND(1,0)=1, G19=NAND(0,1)=1,
        // G22=NAND(0,1)=1, G23=NAND(1,1)=0.
        assert_eq!(
            nl.evaluate(&[true, true, true, true, true]).unwrap(),
            vec![true, false]
        );
    }

    #[test]
    fn c17_all_gates_are_nand() {
        let nl = c17();
        use autolock_netlist::GateKind;
        for (_, g) in nl.iter() {
            if !g.kind.is_input() {
                assert_eq!(g.kind, GateKind::Nand);
            }
        }
    }

    #[test]
    fn c432_shape() {
        let nl = c432();
        assert_eq!(nl.num_inputs(), 36);
        assert_eq!(nl.num_outputs(), 7);
        assert_eq!(nl.num_logic_gates(), 142);
        nl.validate().unwrap();
    }

    #[test]
    fn c432_gate_inventory() {
        use autolock_netlist::GateKind;
        let nl = c432();
        let count = |k: GateKind| nl.iter().filter(|(_, g)| g.kind == k).count();
        assert_eq!(count(GateKind::Not), 36);
        assert_eq!(count(GateKind::Nor), 35);
        assert_eq!(count(GateKind::Or), 52);
        assert_eq!(count(GateKind::And), 19);
    }

    /// Sets `A_ch`/`B_ch`/`C_ch` request bits with their enables and checks
    /// the seven outputs (PA, PB, PC, addr3, addr0, addr1, addr2).
    fn eval_c432(requests: &[(char, usize)]) -> Vec<bool> {
        let nl = c432();
        let mut inputs = vec![false; 36];
        for &(bus, ch) in requests {
            let lane = match bus {
                'A' => 0,
                'B' => 1,
                'C' => 2,
                _ => panic!("bus must be A/B/C"),
            };
            inputs[4 * ch + lane] = true;
            inputs[4 * ch + 3] = true; // enable the channel
        }
        nl.evaluate(&inputs).unwrap()
    }

    #[test]
    fn c432_idle_bus_is_all_zero() {
        assert_eq!(eval_c432(&[]), vec![false; 7]);
    }

    #[test]
    fn c432_channel0_request_raises_pa_with_address_zero() {
        // PA=1, PB=PC=0, address 0, any-grant folded into the address bits.
        assert_eq!(
            eval_c432(&[('A', 0)]),
            vec![true, false, false, false, false, false, false]
        );
    }

    #[test]
    fn c432_highest_channel_wins_priority_encoding() {
        // B request on channel 3 and C request on channel 5: both buses
        // grant (B beats nothing on ch3, C unopposed on ch5), and the
        // priority encoder reports channel 5 (binary 0101 -> bit0, bit2).
        assert_eq!(
            eval_c432(&[('B', 3), ('C', 5)]),
            vec![false, true, true, false, true, false, true]
        );
    }

    #[test]
    fn c432_bus_priority_a_beats_b_beats_c() {
        // All three buses request channel 2: only bus A is granted.
        let out = eval_c432(&[('A', 2), ('B', 2), ('C', 2)]);
        assert!(out[0], "PA");
        assert!(!out[1], "PB masked by A");
        assert!(!out[2], "PC masked by A and B");
        // Address = 2 -> bit1 only.
        assert_eq!(&out[3..], &[false, false, true, false]);
    }

    #[test]
    fn c432_channel8_sets_address_bit3() {
        let out = eval_c432(&[('A', 8)]);
        assert!(out[0], "PA");
        assert_eq!(&out[3..], &[true, false, false, false]);
    }
}
