//! The ISCAS-85 c17 benchmark, reproduced exactly from its public `.bench`
//! description.

use autolock_netlist::{parse_bench, Netlist};

/// The canonical `.bench` text of ISCAS-85 c17 (5 inputs, 2 outputs, 6 NAND
/// gates).
pub const C17_BENCH: &str = "\
# c17 ISCAS-85 benchmark
INPUT(G1gat)
INPUT(G2gat)
INPUT(G3gat)
INPUT(G6gat)
INPUT(G7gat)
OUTPUT(G22gat)
OUTPUT(G23gat)
G10gat = NAND(G1gat, G3gat)
G11gat = NAND(G3gat, G6gat)
G16gat = NAND(G2gat, G11gat)
G19gat = NAND(G11gat, G7gat)
G22gat = NAND(G10gat, G16gat)
G23gat = NAND(G16gat, G19gat)
";

/// Returns the c17 `.bench` source text.
pub fn c17_bench_text() -> &'static str {
    C17_BENCH
}

/// Parses and returns the c17 netlist.
///
/// # Panics
///
/// Never panics in practice; the embedded text is valid.
pub fn c17() -> Netlist {
    parse_bench("c17", C17_BENCH).expect("embedded c17 is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_shape() {
        let nl = c17();
        assert_eq!(nl.num_inputs(), 5);
        assert_eq!(nl.num_outputs(), 2);
        assert_eq!(nl.num_logic_gates(), 6);
        nl.validate().unwrap();
    }

    #[test]
    fn c17_truth_spot_checks() {
        let nl = c17();
        // Inputs in declaration order: G1, G2, G3, G6, G7.
        // All zeros: G10 = NAND(0,0)=1, G11=1, G16=NAND(0,1)=1, G19=NAND(1,0)=1,
        // G22=NAND(1,1)=0, G23=NAND(1,1)=0.
        assert_eq!(
            nl.evaluate(&[false, false, false, false, false]).unwrap(),
            vec![false, false]
        );
        // All ones: G10=NAND(1,1)=0, G11=0, G16=NAND(1,0)=1, G19=NAND(0,1)=1,
        // G22=NAND(0,1)=1, G23=NAND(1,1)=0.
        assert_eq!(
            nl.evaluate(&[true, true, true, true, true]).unwrap(),
            vec![true, false]
        );
    }

    #[test]
    fn c17_all_gates_are_nand() {
        let nl = c17();
        use autolock_netlist::GateKind;
        for (_, g) in nl.iter() {
            if !g.kind.is_input() {
                assert_eq!(g.kind, GateKind::Nand);
            }
        }
    }
}
