//! Deterministic synthetic combinational-circuit generator.
//!
//! The generator produces ISCAS-like netlists: a configurable number of
//! primary inputs, a target number of logic gates arranged in levels, a
//! realistic gate-kind mix (NAND/NOR heavy, some XOR, a sprinkle of
//! inverters/buffers) and a locality-biased wiring rule (gates prefer to read
//! from recently created signals, which yields the narrow, deep cones typical
//! of synthesized logic rather than a uniformly random bipartite mess).
//!
//! Generation is fully determined by the seed, so every experiment in the
//! repository is reproducible.

use autolock_netlist::{GateId, GateKind, Netlist};
use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic circuit generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Design name of the generated netlist.
    pub name: String,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
    /// Target number of logic gates.
    pub num_gates: usize,
    /// Locality window: a new gate draws its fan-ins from the last `window`
    /// created signals (plus a small chance of a long-range connection).
    /// Smaller windows produce deeper circuits.
    pub locality_window: usize,
    /// Probability of a long-range (outside the window) fan-in connection.
    pub long_range_prob: f64,
    /// Probability that a new 2-input gate is wired in a *reconvergent motif*:
    /// it reads an existing wire's driver **and** its sink (as in carry/sum
    /// pairs, AOI cells and enable logic). Real synthesized netlists are full
    /// of such triangles; they are what link-prediction attacks key on.
    pub motif_prob: f64,
    /// Relative weights of gate kinds `[AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF]`.
    pub kind_weights: [f64; 8],
    /// RNG seed.
    pub seed: u64,
}

impl GeneratorConfig {
    /// A configuration with ISCAS-like defaults for a circuit of roughly
    /// `num_gates` gates.
    pub fn sized(
        name: impl Into<String>,
        num_inputs: usize,
        num_outputs: usize,
        num_gates: usize,
    ) -> Self {
        GeneratorConfig {
            name: name.into(),
            num_inputs,
            num_outputs,
            num_gates,
            locality_window: 12,
            long_range_prob: 0.06,
            motif_prob: 0.45,
            // NAND/NOR-heavy mix as in technology-mapped ISCAS netlists.
            kind_weights: [1.5, 3.0, 1.2, 2.2, 0.7, 0.5, 1.2, 0.4],
            seed: 0x00A0_70CC_5EED,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig::sized("synth", 16, 8, 200)
    }
}

/// Synthetic circuit generator. See the [module documentation](self) for the
/// generation model.
#[derive(Debug, Clone)]
pub struct CircuitGenerator {
    config: GeneratorConfig,
}

impl CircuitGenerator {
    /// Creates a generator for the given configuration.
    pub fn new(config: GeneratorConfig) -> Self {
        CircuitGenerator { config }
    }

    /// Access to the configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates the netlist. The same configuration always yields the same
    /// netlist.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests zero inputs or zero outputs.
    pub fn generate(&self) -> Netlist {
        let cfg = &self.config;
        assert!(cfg.num_inputs > 0, "need at least one primary input");
        assert!(cfg.num_outputs > 0, "need at least one primary output");
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut nl = Netlist::new(cfg.name.clone());

        let mut signals: Vec<GateId> = (0..cfg.num_inputs)
            .map(|i| nl.add_input(format!("in{i}")))
            .collect();

        let kinds = [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
            GateKind::Buf,
        ];
        let kind_dist = WeightedIndex::new(cfg.kind_weights).expect("non-negative weights");

        for g in 0..cfg.num_gates {
            let kind = kinds[kind_dist.sample(&mut rng)];
            let arity = match kind {
                GateKind::Not | GateKind::Buf => 1,
                _ => {
                    // Mostly 2-input gates, occasionally 3 or 4 (as after
                    // technology mapping with a small cell library).
                    match rng.gen_range(0..10) {
                        0 => 3,
                        1 => 4,
                        _ => 2,
                    }
                }
            };
            // Reconvergent motif: read a recent wire's driver and sink, which
            // creates the triangles (carry/sum, AOI, enable logic) that give
            // real netlists their learnable local structure.
            let motif = arity >= 2
                && nl.num_logic_gates() > 0
                && rng.gen_bool(cfg.motif_prob.clamp(0.0, 1.0));
            let mut fanin = Vec::with_capacity(arity);
            if motif {
                // Pick a recent logic gate and one of its fan-ins.
                let window = cfg.locality_window.max(1).min(signals.len());
                for _ in 0..16 {
                    let cand = signals[signals.len() - 1 - rng.gen_range(0..window)];
                    let cand_gate = nl.gate(cand);
                    if cand_gate.fanin.is_empty() {
                        continue;
                    }
                    let parent = cand_gate.fanin[rng.gen_range(0..cand_gate.fanin.len())];
                    fanin.push(parent);
                    fanin.push(cand);
                    break;
                }
            }
            while fanin.len() < arity {
                let pick = self.pick_signal(&signals, &mut rng);
                fanin.push(pick);
            }
            fanin.truncate(arity);
            // Avoid degenerate single-signal multi-input gates where possible.
            if arity >= 2 && fanin.iter().all(|&f| f == fanin[0]) && signals.len() > 1 {
                let alt = self.pick_signal(&signals, &mut rng);
                fanin[1] = alt;
            }
            let id = nl
                .add_gate(format!("n{g}"), kind, fanin)
                .expect("generator produces valid gates");
            signals.push(id);
        }

        // Outputs: prefer gates near the end (deep logic) that are not already
        // driving anything, mimicking real primary outputs.
        let fanouts = nl.fanouts();
        let mut sinks: Vec<GateId> = nl
            .ids()
            .filter(|id| fanouts[id.index()].is_empty() && !nl.gate(*id).kind.is_input())
            .collect();
        // Deterministic order: by id descending (latest gates first).
        sinks.sort_by_key(|id| std::cmp::Reverse(id.index()));
        let mut outputs: Vec<GateId> = sinks.into_iter().take(cfg.num_outputs).collect();
        // If not enough dangling gates, take the last created gates.
        let mut idx = signals.len();
        while outputs.len() < cfg.num_outputs && idx > 0 {
            idx -= 1;
            let cand = signals[idx];
            if !outputs.contains(&cand) && !nl.gate(cand).kind.is_input() {
                outputs.push(cand);
            }
        }
        for o in outputs {
            nl.mark_output(o);
        }
        debug_assert!(nl.validate().is_ok());
        nl
    }

    fn pick_signal<R: Rng + ?Sized>(&self, signals: &[GateId], rng: &mut R) -> GateId {
        let cfg = &self.config;
        let n = signals.len();
        if n == 1 {
            return signals[0];
        }
        if rng.gen_bool(cfg.long_range_prob.clamp(0.0, 1.0)) {
            signals[rng.gen_range(0..n)]
        } else {
            let window = cfg.locality_window.max(1).min(n);
            signals[n - 1 - rng.gen_range(0..window)]
        }
    }
}

/// Convenience: generates a synthetic circuit with `num_gates` gates using the
/// default ISCAS-like profile and the given seed.
pub fn synth_circuit(
    name: &str,
    num_inputs: usize,
    num_outputs: usize,
    num_gates: usize,
    seed: u64,
) -> Netlist {
    CircuitGenerator::new(
        GeneratorConfig::sized(name, num_inputs, num_outputs, num_gates).with_seed(seed),
    )
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolock_netlist::{stats, topo};

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig::sized("det", 10, 4, 150).with_seed(42);
        let a = CircuitGenerator::new(cfg.clone()).generate();
        let b = CircuitGenerator::new(cfg).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = synth_circuit("a", 10, 4, 150, 1);
        let b = synth_circuit("b", 10, 4, 150, 2);
        // Same shape parameters but different wiring.
        assert_eq!(a.num_logic_gates(), b.num_logic_gates());
        assert_ne!(
            autolock_netlist::write_bench(&a).replace("# a", ""),
            autolock_netlist::write_bench(&b).replace("# b", "")
        );
    }

    #[test]
    fn generated_circuit_is_valid_and_sized() {
        let nl = synth_circuit("t", 12, 6, 300, 7);
        nl.validate().unwrap();
        assert_eq!(nl.num_inputs(), 12);
        assert_eq!(nl.num_outputs(), 6);
        assert_eq!(nl.num_logic_gates(), 300);
        let depth = topo::depth(&nl).unwrap();
        assert!(depth > 5, "expected non-trivial depth, got {depth}");
    }

    #[test]
    fn gate_mix_reflects_weights() {
        let nl = synth_circuit("mix", 16, 8, 1000, 3);
        let s = stats::netlist_stats(&nl).unwrap();
        use autolock_netlist::GateKind;
        // NAND should be the most common 2-input kind by construction.
        assert!(s.count(GateKind::Nand) > s.count(GateKind::Xor));
        assert!(s.count(GateKind::Nand) > s.count(GateKind::Buf));
    }

    #[test]
    fn outputs_do_not_include_inputs() {
        let nl = synth_circuit("o", 8, 4, 60, 11);
        for &o in nl.outputs() {
            assert!(!nl.gate(o).kind.is_input());
        }
    }

    #[test]
    #[should_panic(expected = "at least one primary input")]
    fn zero_inputs_panics() {
        let cfg = GeneratorConfig::sized("bad", 0, 1, 10);
        CircuitGenerator::new(cfg).generate();
    }
}
