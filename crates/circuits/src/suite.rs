//! The standard benchmark suite used by every experiment in this repository.
//!
//! The suite mirrors the ISCAS-85 family — c432, c880, c1355, c1908, c2670,
//! c3540, c5315, c6288 and c7552 — in three tiers:
//!
//! * **real circuits**: c17 and the c432 reconstruction, embedded as
//!   `.bench` text ([`crate::iscas`]);
//! * **random synthetic stand-ins** (`s<gates>`): netlists from the
//!   locality-biased random generator ([`crate::generator`]) whose interface
//!   and gate counts match a classic benchmark — kept for continuity with
//!   the small-circuit experiments;
//! * **structured stand-ins** (`st<iscas-number>`): datapath compositions
//!   from [`crate::structured`] (adder trees, carry-select adders, array
//!   multipliers, mux/decode control) with realistic depth, fanout and
//!   reconvergence. `st6288` is the array-multiplier member standing in for
//!   c6288, which has no random stand-in because uniform random gates
//!   cannot imitate a multiplier grid.
//!
//! A fourth tier exercises the AIGER ingestion front door: **round-trip
//! members** (`<base>_aig`) are existing members serialized to ASCII AIGER
//! (`.aag`) and re-ingested through
//! [`autolock_netlist::ingest::parse_aag`], so the AND/inverter-graph
//! lowering and AIG simplification pass run inside the suite itself. Their
//! interfaces match the base member; their gate counts are the measured
//! post-round-trip values, pinned by tests.
//!
//! [`SuiteScale`] selects how much of the suite an experiment sees:
//! [`SuiteScale::Quick`] is the CI-sized tier (everything up to the
//! c7552-class member), [`SuiteScale::Full`] adds the beyond-ISCAS `xl`
//! member for paper-scale runs. The `AUTOLOCK_SUITE_SCALE` environment
//! variable (`quick`/`full`) picks the scale at runtime via
//! [`SuiteScale::from_env`].

use crate::generator::synth_circuit;
use crate::iscas::{c17, c432};
use crate::structured::{synth_structured, StructuredBlock, StructuredConfig};
use autolock_netlist::Netlist;
use serde::{Deserialize, Serialize};

/// How much of the suite an experiment instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SuiteScale {
    /// The CI-sized tier: every member up to the c7552-class structured
    /// circuit (~3.5k gates).
    #[default]
    Quick,
    /// Everything, including the beyond-ISCAS `xl` member (~11k gates).
    Full,
}

impl SuiteScale {
    /// Reads the scale from the `AUTOLOCK_SUITE_SCALE` environment variable:
    /// `"full"` selects [`SuiteScale::Full`], anything else (or unset)
    /// selects [`SuiteScale::Quick`].
    pub fn from_env() -> Self {
        match std::env::var("AUTOLOCK_SUITE_SCALE").ok().as_deref() {
            Some("full") | Some("FULL") | Some("Full") => SuiteScale::Full,
            _ => SuiteScale::Quick,
        }
    }
}

/// Descriptor of one suite member.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuiteEntry {
    /// Circuit name (e.g. `c17`, `s432`, `st6288`).
    pub name: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of logic gates (exact for every member).
    pub gates: usize,
    /// ISCAS-85 benchmark this member stands in for (`None` for real
    /// circuits and the beyond-ISCAS `xl` member).
    pub stands_in_for: Option<String>,
    /// `true` for members built by the structured (datapath) generator.
    pub structured: bool,
}

/// Descriptors of all members at the given scale, in increasing size.
pub fn suite_entries(scale: SuiteScale) -> Vec<SuiteEntry> {
    let synth =
        |name: &str, inputs: usize, outputs: usize, gates: usize, original: &str| SuiteEntry {
            name: name.to_string(),
            inputs,
            outputs,
            gates,
            stands_in_for: Some(original.to_string()),
            structured: false,
        };
    let real = |name: &str, inputs: usize, outputs: usize, gates: usize| SuiteEntry {
        name: name.to_string(),
        inputs,
        outputs,
        gates,
        stands_in_for: None,
        structured: false,
    };
    let aig = |name: &str, inputs: usize, outputs: usize, gates: usize, base: &str| SuiteEntry {
        name: name.to_string(),
        inputs,
        outputs,
        gates,
        stands_in_for: Some(base.to_string()),
        structured: false,
    };
    let mut entries = vec![
        real("c17", 5, 2, 6),
        real("c432", 36, 7, 142),
        aig("c17_aig", 5, 2, 14, "c17"),
        aig("s160_aig", 36, 7, 131, "s160"),
        synth("s160", 36, 7, 160, "c432"),
        synth("s380", 60, 26, 380, "c880"),
        synth("s540", 41, 32, 540, "c1355"),
        synth("s880", 33, 25, 880, "c1908"),
        synth("s1190", 233, 140, 1190, "c2670"),
        synth("s1660", 50, 22, 1660, "c3540"),
        synth("s2300", 178, 123, 2300, "c5315"),
        synth("s3500", 207, 108, 3500, "c7552"),
    ];
    entries.extend(structured_entries(scale));
    entries.sort_by_key(|e| e.gates);
    entries
}

/// Descriptors of only the structured (datapath) members at the given
/// scale, in increasing size. The interface and gate counts are the
/// measured values of the deterministic generator output, pinned by tests.
pub fn structured_entries(scale: SuiteScale) -> Vec<SuiteEntry> {
    let structured =
        |name: &str, inputs: usize, outputs: usize, gates: usize, original: Option<&str>| {
            SuiteEntry {
                name: name.to_string(),
                inputs,
                outputs,
                gates,
                stands_in_for: original.map(str::to_string),
                structured: true,
            }
        };
    let mut entries = vec![
        structured("st1355", 41, 19, 559, Some("c1355")),
        structured("st2670", 128, 86, 1193, Some("c2670")),
        structured("st3540", 50, 119, 1669, Some("c3540")),
        structured("st5315", 178, 164, 2307, Some("c5315")),
        structured("st6288", 40, 83, 2406, Some("c6288")),
        structured("st7552", 207, 231, 3512, Some("c7552")),
    ];
    if scale == SuiteScale::Full {
        entries.push(structured("xl11k", 256, 386, 11143, None));
    }
    entries
}

/// The structured-generator configuration of a structured suite member.
///
/// Block shapes are chosen so the deterministic output lands on the
/// benchmark's published gate count (glue gates make up the remainder);
/// the `xl` member extends the same recipe past ISCAS-85 scale.
pub fn structured_spec(name: &str) -> Option<StructuredConfig> {
    use StructuredBlock::*;
    let (num_inputs, blocks, glue_gates) = match name {
        "st1355" => (
            41,
            vec![AdderTree {
                width: 16,
                lanes: 8,
            }],
            0,
        ),
        "st2670" => (
            128,
            vec![
                MuxDecode {
                    select_bits: 5,
                    data_words: 24,
                    word_bits: 16,
                },
                AdderTree {
                    width: 16,
                    lanes: 4,
                },
                CarrySelectAdder {
                    width: 24,
                    block: 6,
                },
            ],
            130,
        ),
        "st3540" => (
            50,
            vec![
                ArrayMultiplier { width: 12 },
                CarrySelectAdder {
                    width: 32,
                    block: 4,
                },
                AdderTree {
                    width: 12,
                    lanes: 6,
                },
            ],
            314,
        ),
        "st5315" => (
            178,
            vec![
                MuxDecode {
                    select_bits: 5,
                    data_words: 20,
                    word_bits: 24,
                },
                CarrySelectAdder {
                    width: 48,
                    block: 6,
                },
                ArrayMultiplier { width: 10 },
                AdderTree {
                    width: 20,
                    lanes: 4,
                },
            ],
            282,
        ),
        "st6288" => (40, vec![ArrayMultiplier { width: 20 }], 166),
        "st7552" => (
            207,
            vec![
                ArrayMultiplier { width: 14 },
                CarrySelectAdder {
                    width: 40,
                    block: 5,
                },
                MuxDecode {
                    select_bits: 5,
                    data_words: 28,
                    word_bits: 20,
                },
                AdderTree {
                    width: 16,
                    lanes: 8,
                },
            ],
            630,
        ),
        "xl11k" => (
            256,
            vec![
                ArrayMultiplier { width: 24 },
                ArrayMultiplier { width: 18 },
                CarrySelectAdder {
                    width: 64,
                    block: 8,
                },
                MuxDecode {
                    select_bits: 6,
                    data_words: 48,
                    word_bits: 32,
                },
                AdderTree {
                    width: 32,
                    lanes: 6,
                },
                AdderTree {
                    width: 24,
                    lanes: 10,
                },
            ],
            1200,
        ),
        _ => return None,
    };
    Some(StructuredConfig {
        name: name.to_string(),
        num_inputs,
        blocks,
        glue_gates,
        seed: seed_for(name),
    })
}

/// Deterministic per-circuit seed so every suite member is stable across runs.
fn seed_for(name: &str) -> u64 {
    // FNV-1a over the name, fixed offset.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Instantiates a suite member by name (any scale).
///
/// Returns `None` for unknown names.
pub fn suite_circuit(name: &str) -> Option<Netlist> {
    if let Some(base) = name.strip_suffix("_aig") {
        // Round-trip member: serialize the base member to ASCII AIGER and
        // re-ingest it, exercising the AND/inverter lowering + AIG
        // simplification pass on a known-good circuit.
        let base_nl = suite_circuit(base)?;
        let text = autolock_netlist::ingest::write_aag(&base_nl)
            .expect("suite members serialize to AIGER");
        let seq = autolock_netlist::ingest::parse_aag(name, &text)
            .expect("suite AIGER writer output parses");
        return seq.into_combinational().ok();
    }
    if name == "c17" {
        return Some(c17());
    }
    if name == "c432" {
        return Some(c432());
    }
    if let Some(spec) = structured_spec(name) {
        return Some(synth_structured(&spec));
    }
    let entry = suite_entries(SuiteScale::Full)
        .into_iter()
        .find(|e| e.name == name)?;
    Some(synth_circuit(
        &entry.name,
        entry.inputs,
        entry.outputs,
        entry.gates,
        seed_for(&entry.name),
    ))
}

/// Instantiates the whole suite at a scale (sorted by size ascending).
pub fn standard_suite(scale: SuiteScale) -> Vec<Netlist> {
    suite_entries(scale)
        .iter()
        .map(|e| suite_circuit(&e.name).expect("suite entries are instantiable"))
        .collect()
}

/// The subset of the suite small enough for fast experiments (used by unit
/// tests and CI-scale benchmark runs): c17 plus the two smallest synthetic
/// members.
pub fn small_suite() -> Vec<Netlist> {
    ["c17", "s160", "s380"]
        .iter()
        .map(|n| suite_circuit(n).expect("known members"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_entries_instantiate_and_validate() {
        for entry in suite_entries(SuiteScale::Full) {
            let nl = suite_circuit(&entry.name).unwrap();
            nl.validate().unwrap();
            assert_eq!(nl.num_inputs(), entry.inputs, "{}", entry.name);
            assert_eq!(nl.num_outputs(), entry.outputs, "{}", entry.name);
            assert_eq!(nl.num_logic_gates(), entry.gates, "{}", entry.name);
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let a = suite_circuit("s380").unwrap();
        let b = suite_circuit("s380").unwrap();
        assert_eq!(a, b);
        let a = suite_circuit("st3540").unwrap();
        let b = suite_circuit("st3540").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_name_returns_none() {
        assert!(suite_circuit("nope").is_none());
        assert!(suite_circuit("nope_aig").is_none());
    }

    #[test]
    fn aiger_round_trip_member_is_equivalent_to_its_base() {
        let base = suite_circuit("c17").unwrap();
        let rt = suite_circuit("c17_aig").unwrap();
        assert_eq!(rt.num_inputs(), base.num_inputs());
        assert_eq!(rt.num_outputs(), base.num_outputs());
        assert!(autolock_netlist::equiv::exhaustive_equivalent(&base, &[], &rt, &[]).unwrap());
    }

    #[test]
    fn small_suite_members() {
        let s = small_suite();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].name(), "c17");
    }

    #[test]
    fn entries_sorted_by_size_at_both_scales() {
        for scale in [SuiteScale::Quick, SuiteScale::Full] {
            let sizes: Vec<usize> = suite_entries(scale).iter().map(|e| e.gates).collect();
            let mut sorted = sizes.clone();
            sorted.sort();
            assert_eq!(sizes, sorted);
        }
    }

    #[test]
    fn full_scale_extends_quick() {
        let quick = suite_entries(SuiteScale::Quick);
        let full = suite_entries(SuiteScale::Full);
        assert!(full.len() > quick.len());
        for e in &quick {
            assert!(full.contains(e), "{} missing at full scale", e.name);
        }
    }

    #[test]
    fn stand_ins_are_documented() {
        let entries = suite_entries(SuiteScale::Full);
        assert!(entries
            .iter()
            .filter(|e| e.name.starts_with('s'))
            .all(|e| e.stands_in_for.is_some() || e.structured));
        // Every big ISCAS-85 member named in the module docs has a stand-in
        // (or is embedded): the c6288 slot is covered by st6288.
        for original in [
            "c432", "c880", "c1355", "c1908", "c2670", "c3540", "c5315", "c6288", "c7552",
        ] {
            assert!(
                entries
                    .iter()
                    .any(|e| e.stands_in_for.as_deref() == Some(original) || e.name == original),
                "{original} has no suite member"
            );
        }
    }

    #[test]
    fn structured_members_are_flagged_and_large() {
        let quick = structured_entries(SuiteScale::Quick);
        assert!(quick.iter().all(|e| e.structured));
        // The E12 regime needs at least four quick structured members with
        // >= 1000 gates.
        assert!(quick.iter().filter(|e| e.gates >= 1000).count() >= 4);
    }

    #[test]
    fn scale_from_env() {
        std::env::remove_var("AUTOLOCK_SUITE_SCALE");
        assert_eq!(SuiteScale::from_env(), SuiteScale::Quick);
        std::env::set_var("AUTOLOCK_SUITE_SCALE", "full");
        assert_eq!(SuiteScale::from_env(), SuiteScale::Full);
        std::env::set_var("AUTOLOCK_SUITE_SCALE", "quick");
        assert_eq!(SuiteScale::from_env(), SuiteScale::Quick);
        std::env::remove_var("AUTOLOCK_SUITE_SCALE");
    }
}
