//! The standard benchmark suite used by every experiment in this repository.
//!
//! The suite mirrors the ISCAS-85 family in spirit: one tiny real circuit
//! (c17) plus synthetic circuits whose interface and gate counts roughly match
//! the classic benchmarks (c432, c880, c1355, c1908, c2670, c3540, c5315,
//! c7552). Synthetic members are named `s<gates>` to make the substitution
//! explicit in every table.

use crate::generator::synth_circuit;
use crate::iscas::c17;
use autolock_netlist::Netlist;
use serde::{Deserialize, Serialize};

/// Descriptor of one suite member.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuiteEntry {
    /// Circuit name (e.g. `c17`, `s432`).
    pub name: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Approximate number of logic gates.
    pub gates: usize,
    /// ISCAS-85 benchmark this member stands in for (`None` for real circuits).
    pub stands_in_for: Option<String>,
}

/// Descriptors of all members of the standard suite, in increasing size.
pub fn suite_entries() -> Vec<SuiteEntry> {
    let synth =
        |name: &str, inputs: usize, outputs: usize, gates: usize, original: &str| SuiteEntry {
            name: name.to_string(),
            inputs,
            outputs,
            gates,
            stands_in_for: Some(original.to_string()),
        };
    vec![
        SuiteEntry {
            name: "c17".into(),
            inputs: 5,
            outputs: 2,
            gates: 6,
            stands_in_for: None,
        },
        synth("s160", 36, 7, 160, "c432"),
        synth("s380", 60, 26, 380, "c880"),
        synth("s540", 41, 32, 540, "c1355"),
        synth("s880", 33, 25, 880, "c1908"),
        synth("s1190", 233, 140, 1190, "c2670"),
        synth("s1660", 50, 22, 1660, "c3540"),
        synth("s2300", 178, 123, 2300, "c5315"),
        synth("s3500", 207, 108, 3500, "c7552"),
    ]
}

/// Deterministic per-circuit seed so every suite member is stable across runs.
fn seed_for(name: &str) -> u64 {
    // FNV-1a over the name, fixed offset.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Instantiates a suite member by name.
///
/// Returns `None` for unknown names.
pub fn suite_circuit(name: &str) -> Option<Netlist> {
    if name == "c17" {
        return Some(c17());
    }
    let entry = suite_entries().into_iter().find(|e| e.name == name)?;
    Some(synth_circuit(
        &entry.name,
        entry.inputs,
        entry.outputs,
        entry.gates,
        seed_for(&entry.name),
    ))
}

/// Instantiates the whole standard suite (sorted by size ascending).
pub fn standard_suite() -> Vec<Netlist> {
    suite_entries()
        .iter()
        .map(|e| suite_circuit(&e.name).expect("suite entries are instantiable"))
        .collect()
}

/// The subset of the suite small enough for fast experiments (used by unit
/// tests and CI-scale benchmark runs): c17 plus the two smallest synthetic
/// members.
pub fn small_suite() -> Vec<Netlist> {
    ["c17", "s160", "s380"]
        .iter()
        .map(|n| suite_circuit(n).expect("known members"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_entries_instantiate_and_validate() {
        for entry in suite_entries() {
            let nl = suite_circuit(&entry.name).unwrap();
            nl.validate().unwrap();
            assert_eq!(nl.num_inputs(), entry.inputs, "{}", entry.name);
            assert_eq!(nl.num_outputs(), entry.outputs, "{}", entry.name);
            if entry.name != "c17" {
                assert_eq!(nl.num_logic_gates(), entry.gates, "{}", entry.name);
            }
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let a = suite_circuit("s380").unwrap();
        let b = suite_circuit("s380").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_name_returns_none() {
        assert!(suite_circuit("nope").is_none());
    }

    #[test]
    fn small_suite_members() {
        let s = small_suite();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].name(), "c17");
    }

    #[test]
    fn standard_suite_sorted_by_size() {
        let suite = standard_suite();
        let sizes: Vec<usize> = suite.iter().map(|n| n.num_logic_gates()).collect();
        let mut sorted = sizes.clone();
        sorted.sort();
        assert_eq!(sizes, sorted);
    }

    #[test]
    fn stand_ins_are_documented() {
        let entries = suite_entries();
        assert!(entries
            .iter()
            .filter(|e| e.name != "c17")
            .all(|e| e.stands_in_for.is_some()));
    }
}
