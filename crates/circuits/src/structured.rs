//! Structured (datapath-style) circuit generators.
//!
//! The random generator in [`crate::generator`] matches ISCAS gate *counts*
//! but not ISCAS *shape*: real benchmarks are dominated by regular datapath
//! blocks — adder chains, multiplier arrays, decoders — whose carry chains
//! and merge trees produce long logic depth, high-fanout select nets and
//! massive reconvergence. Those are exactly the structures link-prediction
//! attacks key on, so the large suite members are built from them instead.
//!
//! Four block families are provided, mirroring the documented high-level
//! models of the big ISCAS-85 members:
//!
//! * **ripple adder trees** ([`StructuredBlock::AdderTree`]) — XOR-heavy
//!   reduction logic in the c1355/c499 (ECC) mould,
//! * **carry-select adders** ([`StructuredBlock::CarrySelectAdder`]) —
//!   duplicated carry chains joined by MUX select nets whose block-carry
//!   signal fans out across a whole block (c3540-style ALU datapath),
//! * **array multipliers** ([`StructuredBlock::ArrayMultiplier`]) — the
//!   c6288 structure: a partial-product AND plane reduced by a grid of
//!   full adders, the deepest and most reconvergent member of the family,
//! * **mux/decode control logic** ([`StructuredBlock::MuxDecode`]) — an
//!   address decoder gating data words into OR merge trees
//!   (c2670/c5315-style random-control flavour).
//!
//! [`synth_structured`] composes blocks into one netlist: every block draws
//! its operand bits from a shared, locality-biased signal pool that contains
//! the primary inputs *and all previous blocks' outputs*, so later blocks
//! reconverge on earlier ones the way synthesized hierarchies do. A
//! configurable sprinkle of glue gates cross-couples block outputs.
//! Generation is fully determined by the seed.

use autolock_netlist::{GateId, GateKind, Netlist};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One datapath block of a structured circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StructuredBlock {
    /// `lanes` operand buses of `width` bits reduced pairwise through
    /// ripple-carry adders (a balanced adder tree).
    AdderTree {
        /// Bits per operand bus.
        width: usize,
        /// Number of operand buses.
        lanes: usize,
    },
    /// A `width`-bit carry-select adder split into blocks of `block` bits:
    /// each block computes both carry assumptions and a MUX stage picks the
    /// real one, giving the block-carry net a fanout of `block + 1`.
    CarrySelectAdder {
        /// Total adder width in bits.
        width: usize,
        /// Bits per carry-select block.
        block: usize,
    },
    /// A `width × width` array multiplier: AND partial-product plane plus a
    /// carry-save grid of ripple adders (the c6288 structure).
    ArrayMultiplier {
        /// Operand width in bits.
        width: usize,
    },
    /// An address decoder over `select_bits` lines gating `data_words` words
    /// of `word_bits` bits into per-bit OR merge trees, plus a word-valid
    /// flag.
    MuxDecode {
        /// Number of select (address) lines.
        select_bits: usize,
        /// Number of decoded data words (at most `2^select_bits`).
        data_words: usize,
        /// Bits per data word.
        word_bits: usize,
    },
}

/// Configuration of [`synth_structured`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StructuredConfig {
    /// Design name of the generated netlist.
    pub name: String,
    /// Number of primary inputs shared by all blocks.
    pub num_inputs: usize,
    /// The datapath blocks, instantiated in order.
    pub blocks: Vec<StructuredBlock>,
    /// Random 2-input glue gates cross-coupling block outputs at the end.
    pub glue_gates: usize,
    /// RNG seed; generation is fully determined by it.
    pub seed: u64,
}

/// Incremental netlist builder shared by the block constructors.
struct Builder {
    nl: Netlist,
    /// Every signal created so far (inputs first, then gates in creation
    /// order). Operand draws are locality-biased over this pool.
    pool: Vec<GateId>,
    rng: ChaCha8Rng,
    counter: usize,
}

/// Locality window of operand draws: how far back in the pool a block
/// normally reaches for its operands.
const DRAW_WINDOW: usize = 96;
/// Probability that an operand draw instead reaches uniformly across the
/// whole pool (a long-range connection).
const LONG_RANGE_PROB: f64 = 0.08;

impl Builder {
    fn new(config: &StructuredConfig) -> Self {
        assert!(config.num_inputs > 0, "need at least one primary input");
        let mut nl = Netlist::new(config.name.clone());
        let pool = (0..config.num_inputs)
            .map(|i| nl.add_input(format!("in{i}")))
            .collect();
        Builder {
            nl,
            pool,
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            counter: 0,
        }
    }

    /// Adds a gate with a fresh name and records it in the pool.
    fn gate(&mut self, kind: GateKind, fanin: Vec<GateId>) -> GateId {
        let id = self
            .nl
            .add_gate(format!("n{}", self.counter), kind, fanin)
            .expect("structured blocks produce valid gates");
        self.counter += 1;
        self.pool.push(id);
        id
    }

    /// Draws one operand signal: usually from the trailing locality window,
    /// occasionally (long-range) from anywhere in the pool.
    fn draw(&mut self) -> GateId {
        let n = self.pool.len();
        if n == 1 {
            return self.pool[0];
        }
        if self.rng.gen_bool(LONG_RANGE_PROB) {
            self.pool[self.rng.gen_range(0..n)]
        } else {
            let window = DRAW_WINDOW.min(n);
            self.pool[n - 1 - self.rng.gen_range(0..window)]
        }
    }

    /// Draws a bus of `width` operand signals.
    fn draw_bus(&mut self, width: usize) -> Vec<GateId> {
        (0..width).map(|_| self.draw()).collect()
    }

    /// Half adder: returns `(sum, carry)`.
    fn half_adder(&mut self, a: GateId, b: GateId) -> (GateId, GateId) {
        let s = self.gate(GateKind::Xor, vec![a, b]);
        let c = self.gate(GateKind::And, vec![a, b]);
        (s, c)
    }

    /// Full adder: returns `(sum, carry)`.
    fn full_adder(&mut self, a: GateId, b: GateId, cin: GateId) -> (GateId, GateId) {
        let axb = self.gate(GateKind::Xor, vec![a, b]);
        let s = self.gate(GateKind::Xor, vec![axb, cin]);
        let g = self.gate(GateKind::And, vec![a, b]);
        let p = self.gate(GateKind::And, vec![axb, cin]);
        let c = self.gate(GateKind::Or, vec![g, p]);
        (s, c)
    }

    /// Ripple-carry addition of two buses (possibly of different widths).
    /// Returns the sum bus, one bit wider than the longer operand.
    fn ripple_sum(&mut self, a: &[GateId], b: &[GateId]) -> Vec<GateId> {
        let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        assert!(!short.is_empty(), "ripple_sum needs non-empty operands");
        let mut sums = Vec::with_capacity(long.len() + 1);
        let (s0, mut carry) = self.half_adder(short[0], long[0]);
        sums.push(s0);
        for i in 1..long.len() {
            let (s, c) = if i < short.len() {
                self.full_adder(short[i], long[i], carry)
            } else {
                // Carry propagation into the longer operand's high bits.
                self.half_adder(long[i], carry)
            };
            sums.push(s);
            carry = c;
        }
        sums.push(carry);
        sums
    }

    /// Pairwise reduction of `lanes` drawn buses through ripple adders.
    fn adder_tree(&mut self, width: usize, lanes: usize) -> Vec<GateId> {
        assert!(width > 0 && lanes > 0, "adder tree needs width and lanes");
        let mut buses: Vec<Vec<GateId>> = (0..lanes).map(|_| self.draw_bus(width)).collect();
        while buses.len() > 1 {
            let mut next = Vec::with_capacity(buses.len().div_ceil(2));
            let mut iter = buses.into_iter();
            while let Some(a) = iter.next() {
                match iter.next() {
                    Some(b) => next.push(self.ripple_sum(&a, &b)),
                    None => next.push(a),
                }
            }
            buses = next;
        }
        buses.pop().unwrap_or_default()
    }

    /// Carry-select adder over two drawn `width`-bit buses.
    fn carry_select(&mut self, width: usize, block: usize) -> Vec<GateId> {
        assert!(width > 0, "carry-select needs a non-zero width");
        let block = block.clamp(1, width);
        let a = self.draw_bus(width);
        let b = self.draw_bus(width);
        let mut sums = Vec::with_capacity(width + 1);
        // Block 0 is a plain ripple chain (no incoming carry).
        let hi0 = block.min(width);
        let (s, mut carry) = self.half_adder(a[0], b[0]);
        sums.push(s);
        for i in 1..hi0 {
            let (s, c) = self.full_adder(a[i], b[i], carry);
            sums.push(s);
            carry = c;
        }
        // Each later block computes both carry assumptions; the real block
        // carry selects between them, fanning out to `block + 1` MUXes.
        let mut lo = hi0;
        while lo < width {
            let hi = (lo + block).min(width);
            // carry-in = 0 chain: starts as a half adder.
            let (mut s0, mut c0) = self.half_adder(a[lo], b[lo]);
            // carry-in = 1 chain: sum inverts, carry becomes OR.
            let mut s1 = self.gate(GateKind::Xnor, vec![a[lo], b[lo]]);
            let mut c1 = self.gate(GateKind::Or, vec![a[lo], b[lo]]);
            let mut pending = vec![(s0, s1)];
            for i in lo + 1..hi {
                (s0, c0) = self.full_adder(a[i], b[i], c0);
                (s1, c1) = self.full_adder(a[i], b[i], c1);
                pending.push((s0, s1));
            }
            for (s0, s1) in pending {
                sums.push(self.gate(GateKind::Mux, vec![carry, s0, s1]));
            }
            carry = self.gate(GateKind::Mux, vec![carry, c0, c1]);
            lo = hi;
        }
        sums.push(carry);
        sums
    }

    /// Schoolbook array multiplier over two drawn `width`-bit buses.
    fn array_multiplier(&mut self, width: usize) -> Vec<GateId> {
        assert!(width > 0, "multiplier needs a non-zero width");
        let a = self.draw_bus(width);
        let b = self.draw_bus(width);
        let row = |builder: &mut Builder, j: usize| -> Vec<GateId> {
            (0..width)
                .map(|i| builder.gate(GateKind::And, vec![a[i], b[j]]))
                .collect()
        };
        let mut result = Vec::with_capacity(2 * width);
        let mut acc = row(self, 0);
        for j in 1..width {
            let pp = row(self, j);
            result.push(acc[0]);
            acc = self.ripple_sum(&acc[1..], &pp);
        }
        result.extend(acc);
        result
    }

    /// Address decoder gating data words into per-bit OR merge trees.
    fn mux_decode(
        &mut self,
        select_bits: usize,
        data_words: usize,
        word_bits: usize,
    ) -> Vec<GateId> {
        assert!(select_bits > 0 && word_bits > 0, "decoder needs shape");
        let data_words = data_words.clamp(1, 1usize << select_bits.min(20));
        let sel = self.draw_bus(select_bits);
        let nsel: Vec<GateId> = sel
            .iter()
            .map(|&s| self.gate(GateKind::Not, vec![s]))
            .collect();
        // Decode line k = AND of the select literals of k's binary code.
        let decode: Vec<GateId> = (0..data_words)
            .map(|k| {
                let literals: Vec<GateId> = (0..select_bits)
                    .map(|bit| {
                        if k >> bit & 1 == 1 {
                            sel[bit]
                        } else {
                            nsel[bit]
                        }
                    })
                    .collect();
                self.gate(GateKind::And, literals)
            })
            .collect();
        // Gate each drawn data word by its decode line.
        let gated: Vec<Vec<GateId>> = decode
            .iter()
            .map(|&dec| {
                let word = self.draw_bus(word_bits);
                word.into_iter()
                    .map(|d| self.gate(GateKind::And, vec![dec, d]))
                    .collect()
            })
            .collect();
        // Per-bit OR merge trees across words, plus a word-valid flag.
        let mut outs = Vec::with_capacity(word_bits + 1);
        for bit in 0..word_bits {
            let column: Vec<GateId> = gated.iter().map(|w| w[bit]).collect();
            outs.push(self.or_tree(&column));
        }
        outs.push(self.or_tree(&decode));
        outs
    }

    /// Balanced OR reduction of a signal list (2/3-input OR gates).
    fn or_tree(&mut self, signals: &[GateId]) -> GateId {
        assert!(!signals.is_empty(), "or_tree needs at least one signal");
        let mut level = signals.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(3));
            for chunk in level.chunks(3) {
                next.push(if chunk.len() == 1 {
                    chunk[0]
                } else {
                    self.gate(GateKind::Or, chunk.to_vec())
                });
            }
            level = next;
        }
        level[0]
    }

    fn build_block(&mut self, block: &StructuredBlock) -> Vec<GateId> {
        match *block {
            StructuredBlock::AdderTree { width, lanes } => self.adder_tree(width, lanes),
            StructuredBlock::CarrySelectAdder { width, block } => self.carry_select(width, block),
            StructuredBlock::ArrayMultiplier { width } => self.array_multiplier(width),
            StructuredBlock::MuxDecode {
                select_bits,
                data_words,
                word_bits,
            } => self.mux_decode(select_bits, data_words, word_bits),
        }
    }

    /// Random 2-input glue gates cross-coupling whatever is in the pool.
    fn glue(&mut self, count: usize) {
        const KINDS: [GateKind; 5] = [
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::And,
            GateKind::Or,
        ];
        for _ in 0..count {
            let kind = KINDS[self.rng.gen_range(0..KINDS.len())];
            let a = self.draw();
            let mut b = self.draw();
            if b == a && self.pool.len() > 1 {
                b = self.pool[self.rng.gen_range(0..self.pool.len())];
            }
            self.gate(kind, vec![a, b]);
        }
    }

    /// Marks every dangling logic gate as a primary output (latest first),
    /// mimicking how real benches expose their result buses.
    fn finish(mut self) -> Netlist {
        let fanouts = self.nl.fanouts();
        let mut sinks: Vec<GateId> = self
            .nl
            .ids()
            .filter(|id| fanouts[id.index()].is_empty() && !self.nl.gate(*id).kind.is_input())
            .collect();
        sinks.sort_by_key(|id| std::cmp::Reverse(id.index()));
        for o in sinks {
            self.nl.mark_output(o);
        }
        debug_assert!(self.nl.validate().is_ok());
        self.nl
    }
}

/// Generates a structured circuit: every block in order, drawing operands
/// from the shared locality-biased pool (inputs + all earlier signals), then
/// the configured glue gates, then output marking. Deterministic in the
/// configuration.
///
/// # Panics
///
/// Panics if the configuration requests zero inputs, an empty block list,
/// or a degenerate block shape (zero width/lanes).
pub fn synth_structured(config: &StructuredConfig) -> Netlist {
    assert!(!config.blocks.is_empty(), "need at least one block");
    let mut b = Builder::new(config);
    for block in &config.blocks {
        let outs = b.build_block(block);
        debug_assert!(!outs.is_empty());
    }
    b.glue(config.glue_gates);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolock_netlist::topo;

    fn cfg(blocks: Vec<StructuredBlock>, glue: usize, seed: u64) -> StructuredConfig {
        StructuredConfig {
            name: "t".into(),
            num_inputs: 48,
            blocks,
            glue_gates: glue,
            seed,
        }
    }

    #[test]
    fn adder_tree_is_deep_and_xor_heavy() {
        let nl = synth_structured(&cfg(
            vec![StructuredBlock::AdderTree {
                width: 12,
                lanes: 8,
            }],
            0,
            1,
        ));
        nl.validate().unwrap();
        let depth = topo::depth(&nl).unwrap();
        // Three reduction levels of ripple chains: depth far beyond the
        // random generator's shallow cones.
        assert!(depth >= 20, "depth {depth}");
        let xors = nl.iter().filter(|(_, g)| g.kind == GateKind::Xor).count();
        assert!(xors * 3 >= nl.num_logic_gates(), "xor share too low");
    }

    #[test]
    fn carry_select_has_high_fanout_select_net() {
        let nl = synth_structured(&cfg(
            vec![StructuredBlock::CarrySelectAdder {
                width: 24,
                block: 6,
            }],
            0,
            2,
        ));
        nl.validate().unwrap();
        let fanouts = nl.fanouts();
        let max_fanout = fanouts.iter().map(Vec::len).max().unwrap();
        // The block-carry select net drives `block + 1` MUXes.
        assert!(max_fanout >= 7, "max fanout {max_fanout}");
        assert!(nl.iter().any(|(_, g)| g.kind == GateKind::Mux));
    }

    #[test]
    fn array_multiplier_shape() {
        let nl = synth_structured(&cfg(
            vec![StructuredBlock::ArrayMultiplier { width: 8 }],
            0,
            3,
        ));
        nl.validate().unwrap();
        // width^2 partial products plus the adder grid.
        assert!(nl.num_logic_gates() > 8 * 8 * 4);
        let depth = topo::depth(&nl).unwrap();
        assert!(depth >= 2 * 8, "depth {depth}");
    }

    #[test]
    fn mux_decode_shape() {
        let nl = synth_structured(&cfg(
            vec![StructuredBlock::MuxDecode {
                select_bits: 4,
                data_words: 12,
                word_bits: 8,
            }],
            0,
            4,
        ));
        nl.validate().unwrap();
        // 9 merge-tree roots (8 data bits + valid) are the dangling outputs.
        assert_eq!(nl.num_outputs(), 9);
    }

    #[test]
    fn composition_is_deterministic() {
        let c = cfg(
            vec![
                StructuredBlock::ArrayMultiplier { width: 6 },
                StructuredBlock::CarrySelectAdder {
                    width: 16,
                    block: 4,
                },
                StructuredBlock::MuxDecode {
                    select_bits: 3,
                    data_words: 8,
                    word_bits: 6,
                },
            ],
            25,
            7,
        );
        let a = synth_structured(&c);
        let b = synth_structured(&c);
        assert_eq!(a, b);
        let mut c2 = c.clone();
        c2.seed = 8;
        assert_ne!(synth_structured(&c2), a);
    }
}
