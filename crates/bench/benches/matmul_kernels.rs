//! Micro-benchmarks of the shared `mlcore` dense-kernel layer: the blocked
//! `matmul`/`matmul_tn`/`matmul_nt` against their naive references, and the
//! parallel MLP-ensemble fan-out against serial training/scoring.
//!
//! Besides the usual Criterion entries, this bench writes a
//! **machine-readable perf trajectory** to
//! `<results>/BENCH_kernels.json` — one entry per (op, dims, threads) with
//! ns/iter and the speedup over its baseline (naive kernel, or the serial
//! pool) — so future PRs can diff kernel performance instead of eyeballing
//! bench logs. On a multi-core runner the blocked kernels should hold
//! ≥ 1.5× naive on the ≥128×128 shapes and the 4-thread ensemble rows
//! should beat serial; the JSON records whether they did. (The determinism
//! suites prove blocked-vs-naive and parallel-vs-serial outputs are
//! bit-identical, so every entry is a pure wall-clock comparison.)
//!
//! Set `AUTOLOCK_BENCH_QUICK=1` for a CI smoke run (fewer samples, smaller
//! shapes) that still exercises every kernel and writes the JSON.

use autolock_bench::results_dir;
use autolock_bench::trajectory::{median_ns, BenchEntry, BenchTrajectory};
use autolock_mlcore::{Dataset, Matrix, MlpConfig, MlpEnsemble, MlpEnsembleConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

/// CI smoke mode: fewer samples, smaller shapes, same coverage.
fn quick() -> bool {
    std::env::var_os("AUTOLOCK_BENCH_QUICK").is_some()
}

fn bench_config() -> Criterion {
    Criterion::default().sample_size(if quick() { 3 } else { 10 })
}

/// Square matmul shapes; always includes the 128³ point the perf target is
/// stated against.
fn shapes() -> Vec<usize> {
    if quick() {
        vec![32, 128]
    } else {
        vec![32, 64, 128, 256]
    }
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Matrix::random(rows, cols, 1.0, &mut rng)
}

/// A linearly-separable-ish training set for the ensemble rows.
fn ensemble_dataset(n: usize, dim: usize) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB0B);
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let label = f64::from(i % 2 == 0);
        let base = if label > 0.5 { 0.8 } else { -0.8 };
        rows.push(
            (0..dim)
                .map(|d| base * f64::from(d % 2 == 0) + rng.gen_range(-0.5..0.5))
                .collect(),
        );
        labels.push(label);
    }
    Dataset::from_rows(rows, labels).unwrap()
}

fn ensemble_config(threads: usize) -> MlpEnsembleConfig {
    MlpEnsembleConfig {
        mlp: MlpConfig {
            input_dim: 16,
            hidden: vec![16],
            epochs: if quick() { 4 } else { 10 },
            ..Default::default()
        },
        members: 8,
        threads,
    }
}

// ---------------------------------------------------------------------------
// Criterion entries
// ---------------------------------------------------------------------------

fn bench_blocked_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("K1_matmul");
    for &s in &shapes() {
        let a = random_matrix(s, s, 1000 + s as u64);
        let b = random_matrix(s, s, 2000 + s as u64);
        group.bench_function(&format!("matmul_blocked_{s}x{s}"), |bch| {
            bch.iter(|| black_box(&a).matmul(black_box(&b)))
        });
        group.bench_function(&format!("matmul_naive_{s}x{s}"), |bch| {
            bch.iter(|| black_box(&a).matmul_naive(black_box(&b)))
        });
        group.bench_function(&format!("matmul_tn_blocked_{s}x{s}"), |bch| {
            bch.iter(|| black_box(&a).matmul_tn(black_box(&b)))
        });
        group.bench_function(&format!("matmul_tn_naive_{s}x{s}"), |bch| {
            bch.iter(|| black_box(&a).matmul_tn_naive(black_box(&b)))
        });
        group.bench_function(&format!("matmul_nt_blocked_{s}x{s}"), |bch| {
            bch.iter(|| black_box(&a).matmul_nt(black_box(&b)))
        });
        group.bench_function(&format!("matmul_nt_naive_{s}x{s}"), |bch| {
            bch.iter(|| black_box(&a).matmul_nt_naive(black_box(&b)))
        });
    }
    group.finish();
}

/// Parallel vs serial bagged-ensemble training and batch scoring. The
/// ensemble determinism suite proves outputs are bit-identical for every
/// thread count, so these entries are a pure wall-clock comparison; on a
/// multi-core machine the 4-thread rows should clearly beat serial.
fn bench_ensemble_parallel(c: &mut Criterion) {
    let data = ensemble_dataset(if quick() { 64 } else { 256 }, 16);
    let rows: Vec<Vec<f64>> = (0..data.len())
        .map(|i| data.features_of(i).to_vec())
        .collect();
    let mut group = c.benchmark_group("K2_ensemble");
    for threads in [1usize, 2, 4] {
        group.bench_function(&format!("train_8members_{threads}threads"), |bch| {
            bch.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(7);
                MlpEnsemble::train(ensemble_config(threads), black_box(&data), &mut rng)
            })
        });
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ensemble = MlpEnsemble::train(ensemble_config(threads), &data, &mut rng);
        group.bench_function(&format!("predict_batch_{threads}threads"), |bch| {
            bch.iter(|| ensemble.predict_batch(black_box(&rows)))
        });
    }
    group.finish();
}

// ---------------------------------------------------------------------------
// Machine-readable trajectory (shared schema: autolock_bench::trajectory)
// ---------------------------------------------------------------------------

/// A boxed timing routine (blocked or naive variant of one op).
type TimedOp<'a> = Box<dyn Fn() + 'a>;

/// Measures every kernel and fan-out pair and writes the JSON trajectory.
/// Runs as a Criterion target so `cargo bench --bench matmul_kernels`
/// always refreshes the file.
fn emit_trajectory(_c: &mut Criterion) {
    // More samples than the criterion smoke: these medians feed the gated
    // JSON trajectory, so buy extra noise margin (the ops are sub-ms).
    let samples = if quick() { 5 } else { 9 };
    let mut entries = Vec::new();

    for &s in &shapes() {
        let a = random_matrix(s, s, 1000 + s as u64);
        let b = random_matrix(s, s, 2000 + s as u64);
        let ops: Vec<(&str, TimedOp, TimedOp)> = vec![
            (
                "matmul",
                Box::new(|| {
                    black_box(black_box(&a).matmul(black_box(&b)));
                }),
                Box::new(|| {
                    black_box(black_box(&a).matmul_naive(black_box(&b)));
                }),
            ),
            (
                "matmul_tn",
                Box::new(|| {
                    black_box(black_box(&a).matmul_tn(black_box(&b)));
                }),
                Box::new(|| {
                    black_box(black_box(&a).matmul_tn_naive(black_box(&b)));
                }),
            ),
            (
                "matmul_nt",
                Box::new(|| {
                    black_box(black_box(&a).matmul_nt(black_box(&b)));
                }),
                Box::new(|| {
                    black_box(black_box(&a).matmul_nt_naive(black_box(&b)));
                }),
            ),
        ];
        for (op, blocked, naive) in ops {
            let blocked_ns = median_ns(samples, &*blocked);
            let naive_ns = median_ns(samples, &*naive);
            entries.push(BenchEntry {
                op: op.to_string(),
                dims: format!("{s}x{s}x{s}"),
                threads: 1,
                ns_per_iter: blocked_ns,
                baseline: "naive".to_string(),
                baseline_ns_per_iter: naive_ns,
                speedup_vs_baseline: naive_ns / blocked_ns,
            });
        }
    }

    let data = ensemble_dataset(if quick() { 64 } else { 256 }, 16);
    let rows: Vec<Vec<f64>> = (0..data.len())
        .map(|i| data.features_of(i).to_vec())
        .collect();
    let train_ns = |threads: usize| {
        median_ns(samples, || {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            black_box(MlpEnsemble::train(
                ensemble_config(threads),
                black_box(&data),
                &mut rng,
            ));
        })
    };
    let serial_train = train_ns(1);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let serial_ensemble = MlpEnsemble::train(ensemble_config(1), &data, &mut rng);
    let serial_predict = median_ns(samples, || {
        black_box(serial_ensemble.predict_batch(black_box(&rows)));
    });
    for threads in [1usize, 2, 4] {
        let t_train = if threads == 1 {
            serial_train
        } else {
            train_ns(threads)
        };
        entries.push(BenchEntry {
            op: "ensemble_train".to_string(),
            dims: format!("8members_x_{}examples", data.len()),
            threads,
            ns_per_iter: t_train,
            baseline: "threads=1".to_string(),
            baseline_ns_per_iter: serial_train,
            speedup_vs_baseline: serial_train / t_train,
        });
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ensemble = MlpEnsemble::train(ensemble_config(threads), &data, &mut rng);
        let t_predict = if threads == 1 {
            serial_predict
        } else {
            median_ns(samples, || {
                black_box(ensemble.predict_batch(black_box(&rows)));
            })
        };
        entries.push(BenchEntry {
            op: "ensemble_predict_batch".to_string(),
            dims: format!("8members_x_{}rows", rows.len()),
            threads,
            ns_per_iter: t_predict,
            baseline: "threads=1".to_string(),
            baseline_ns_per_iter: serial_predict,
            speedup_vs_baseline: serial_predict / t_predict,
        });
    }

    BenchTrajectory {
        bench: "matmul_kernels".to_string(),
        quick: quick(),
        entries,
    }
    .emit(&results_dir(), "BENCH_kernels.json");
}

criterion_group! {
    name = kernels;
    config = bench_config();
    targets = bench_blocked_vs_naive, bench_ensemble_parallel, emit_trajectory
}
criterion_main!(kernels);
