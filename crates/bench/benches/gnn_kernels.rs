//! Micro-benchmarks of the DGCNN kernels: graph-conv forward/backward,
//! SortPooling, full-model scoring, one training epoch, and the
//! parallel-vs-serial comparison of batched training/scoring.
//!
//! Like `matmul_kernels`, this bench also writes a **machine-readable perf
//! trajectory** — `<results>/BENCH_gnn_kernels.json`, one entry per
//! (op, dims, threads) with ns/iter and the speedup over its baseline
//! (serial pool, or the materialized training path for the streamed
//! entry) — which CI diffs against the committed baseline with
//! `.github/scripts/check_bench_regression.py`.
//!
//! Set `AUTOLOCK_BENCH_QUICK=1` for a CI smoke run (fewer samples, smaller
//! batches) that still exercises every kernel and prints the
//! parallel-vs-serial numbers.

use autolock_bench::results_dir;
use autolock_bench::trajectory::{median_ns, BenchEntry, BenchTrajectory};
use autolock_gnn::{
    Dgcnn, DgcnnConfig, GraphConv, GraphSource, LinkPredictor, SortPooling, SourceTensor,
    SubgraphTensor,
};
use autolock_mlcore::Matrix;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

/// CI smoke mode: fewer samples, smaller batches, same coverage.
fn quick() -> bool {
    std::env::var_os("AUTOLOCK_BENCH_QUICK").is_some()
}

fn bench_config() -> Criterion {
    Criterion::default().sample_size(if quick() { 3 } else { 10 })
}

/// A random connected graph tensor with `n` nodes and `f` features.
fn random_graph(n: usize, f: usize, seed: u64) -> SubgraphTensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, f);
    for r in 0..n {
        for c in 0..f {
            x.set(r, c, rng.gen_range(-1.0..1.0));
        }
    }
    let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    for _ in 0..n {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
            edges.push((a, b));
        }
    }
    let mut degree = vec![0usize; n];
    for &(a, b) in &edges {
        degree[a] += 1;
        degree[b] += 1;
    }
    let mut adj: Vec<Vec<(usize, f64)>> = (0..n).map(|i| vec![(i, 1.0)]).collect();
    for &(a, b) in &edges {
        adj[a].push((b, 1.0));
        adj[b].push((a, 1.0));
    }
    for (i, row) in adj.iter_mut().enumerate() {
        let norm = 1.0 / (degree[i] as f64 + 1.0);
        for e in row.iter_mut() {
            e.1 *= norm;
        }
    }
    SubgraphTensor::from_parts(x, adj)
}

fn bench_conv(c: &mut Criterion) {
    let graph = random_graph(40, 22, 1);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let conv = GraphConv::new(22, 16, &mut rng);
    let mut group = c.benchmark_group("G1_graphconv");
    group.bench_function("forward_40n_22f_16c", |b| {
        b.iter(|| conv.forward(black_box(&graph), black_box(graph.features())))
    });
    let cache = conv.forward(&graph, graph.features());
    let grad = Matrix::from_vec(40, 16, vec![0.01; 40 * 16]);
    group.bench_function("backward_40n_22f_16c", |b| {
        b.iter(|| conv.backward(black_box(&graph), black_box(&cache), black_box(&grad)))
    });
    group.finish();
}

fn bench_sortpool(c: &mut Criterion) {
    let graph = random_graph(60, 33, 3);
    let pool = SortPooling::new(10);
    let mut group = c.benchmark_group("G2_sortpool");
    group.bench_function("forward_60n_33f_k10", |b| {
        b.iter(|| pool.forward(black_box(graph.features())))
    });
    group.finish();
}

fn bench_model(c: &mut Criterion) {
    let count = if quick() { 8 } else { 32 };
    let graphs: Vec<SubgraphTensor> = (0..count)
        .map(|i| random_graph(30, 22, 10 + i as u64))
        .collect();
    let labels: Vec<f64> = (0..count).map(|i| f64::from(i % 2 == 0)).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let mut model = Dgcnn::new(
        DgcnnConfig {
            epochs: 1,
            num_threads: 1,
            ..DgcnnConfig::for_features(22)
        },
        &mut rng,
    );
    let mut group = c.benchmark_group("G3_dgcnn");
    group.bench_function("score_30n", |b| {
        b.iter(|| model.score(black_box(&graphs[0])))
    });
    group.bench_function(&format!("train_epoch_{count}graphs"), |b| {
        b.iter(|| model.train(black_box(&graphs), black_box(&labels), &mut rng))
    });
    group.finish();
}

/// Parallel vs serial batched forward/backward (one training epoch over one
/// large mini-batch) and batched scoring. The determinism suite proves the
/// outputs are bit-identical for every thread count, so these entries are a
/// pure wall-clock comparison; on a multi-core machine the 4-thread rows
/// should run ≥2x faster than the serial ones.
fn bench_parallel(c: &mut Criterion) {
    let count = if quick() { 16 } else { 64 };
    let graphs: Vec<SubgraphTensor> = (0..count)
        .map(|i| random_graph(40, 22, 100 + i as u64))
        .collect();
    let labels: Vec<f64> = (0..count).map(|i| f64::from(i % 2 == 0)).collect();
    let mut group = c.benchmark_group("G4_parallel");
    for threads in [1usize, 2, 4] {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut model = Dgcnn::new(
            DgcnnConfig {
                epochs: 1,
                batch_size: count, // one parallel fan-out per epoch
                num_threads: threads,
                ..DgcnnConfig::for_features(22)
            },
            &mut rng,
        );
        group.bench_function(&format!("train_epoch_{count}x40n_{threads}threads"), |b| {
            b.iter(|| model.train(black_box(&graphs), black_box(&labels), &mut rng))
        });
        group.bench_function(&format!("score_batch_{count}x40n_{threads}threads"), |b| {
            b.iter(|| model.score_batch(black_box(&graphs)))
        });
    }
    group.finish();
}

// ---------------------------------------------------------------------------
// Machine-readable trajectory (shared schema: autolock_bench::trajectory)
// ---------------------------------------------------------------------------

/// A streaming source over a materialized set that serves **owned** tensor
/// rebuilds — the per-epoch tensor-construction cost the streamed attack
/// path pays, isolated from cache/extraction effects.
struct RebuildSource {
    graphs: Vec<SubgraphTensor>,
    labels: Vec<f64>,
}

impl GraphSource for RebuildSource {
    fn len(&self) -> usize {
        self.graphs.len()
    }

    fn label(&self, idx: usize) -> f64 {
        self.labels[idx]
    }

    fn num_nodes(&self, idx: usize) -> usize {
        self.graphs[idx].num_nodes()
    }

    fn tensor(&self, idx: usize) -> SourceTensor<'_> {
        SourceTensor::Owned(self.graphs[idx].clone())
    }
}

/// Measures the parallel-vs-serial training/scoring fan-outs and the
/// streamed-vs-materialized training path, then writes the JSON trajectory.
/// Runs as a Criterion target so `cargo bench --bench gnn_kernels` always
/// refreshes the file.
fn emit_trajectory(_c: &mut Criterion) {
    let samples = if quick() { 5 } else { 9 };
    let count = if quick() { 16 } else { 64 };
    let graphs: Vec<SubgraphTensor> = (0..count)
        .map(|i| random_graph(40, 22, 100 + i as u64))
        .collect();
    let labels: Vec<f64> = (0..count).map(|i| f64::from(i % 2 == 0)).collect();
    let dims = format!("{count}x40n");
    let mut entries = Vec::new();

    let model_for = |threads: usize| {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        Dgcnn::new(
            DgcnnConfig {
                epochs: 1,
                batch_size: count, // one parallel fan-out per epoch
                num_threads: threads,
                ..DgcnnConfig::for_features(22)
            },
            &mut rng,
        )
    };
    let train_ns = |threads: usize| {
        let mut model = model_for(threads);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        median_ns(samples, || {
            black_box(model.train(black_box(&graphs), black_box(&labels), &mut rng));
        })
    };
    let score_ns = |threads: usize| {
        let model = model_for(threads);
        median_ns(samples, || {
            black_box(model.score_batch(black_box(&graphs)));
        })
    };
    let serial_train = train_ns(1);
    let serial_score = score_ns(1);
    for threads in [1usize, 2, 4] {
        let t_train = if threads == 1 {
            serial_train
        } else {
            train_ns(threads)
        };
        entries.push(BenchEntry {
            op: "gnn_train_epoch".to_string(),
            dims: dims.clone(),
            threads,
            ns_per_iter: t_train,
            baseline: "threads=1".to_string(),
            baseline_ns_per_iter: serial_train,
            speedup_vs_baseline: serial_train / t_train,
        });
        let t_score = if threads == 1 {
            serial_score
        } else {
            score_ns(threads)
        };
        entries.push(BenchEntry {
            op: "gnn_score_batch".to_string(),
            dims: dims.clone(),
            threads,
            ns_per_iter: t_score,
            baseline: "threads=1".to_string(),
            baseline_ns_per_iter: serial_score,
            speedup_vs_baseline: serial_score / t_score,
        });
    }

    // Streamed (owned per-example rebuilds) vs materialized (borrowed
    // slices), serial: records that the memory-lean path stays at speed
    // parity with the path it replaced.
    let streamed_ns = {
        let source = RebuildSource {
            graphs: graphs.clone(),
            labels: labels.clone(),
        };
        let mut model = model_for(1);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        median_ns(samples, || {
            black_box(model.train_source(black_box(&source), &mut rng));
        })
    };
    entries.push(BenchEntry {
        op: "gnn_train_epoch_streamed".to_string(),
        dims: dims.clone(),
        threads: 1,
        ns_per_iter: streamed_ns,
        baseline: "materialized".to_string(),
        baseline_ns_per_iter: serial_train,
        speedup_vs_baseline: serial_train / streamed_ns,
    });

    // Observability overhead: the identical streamed epoch with the obs
    // registry recording. `train_source` carries the densest
    // instrumentation in the workspace (gnn.train / gnn.train_epoch spans,
    // per-batch counters), so this ratio is the worst-case *enabled* cost;
    // while disabled (the baseline above) every site is one relaxed load.
    let obs_on_ns = {
        let source = RebuildSource {
            graphs: graphs.clone(),
            labels: labels.clone(),
        };
        let mut model = model_for(1);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        autolock_obs::reset();
        autolock_obs::enable();
        let ns = median_ns(samples, || {
            black_box(model.train_source(black_box(&source), &mut rng));
        });
        autolock_obs::disable();
        autolock_obs::reset();
        ns
    };
    entries.push(BenchEntry {
        op: "gnn_train_epoch_obs_enabled".to_string(),
        dims: dims.clone(),
        threads: 1,
        ns_per_iter: obs_on_ns,
        baseline: "obs_disabled".to_string(),
        baseline_ns_per_iter: streamed_ns,
        speedup_vs_baseline: streamed_ns / obs_on_ns,
    });

    BenchTrajectory {
        bench: "gnn_kernels".to_string(),
        quick: quick(),
        entries,
    }
    .emit(&results_dir(), "BENCH_gnn_kernels.json");
}

criterion_group! {
    name = gnn;
    config = bench_config();
    targets = bench_conv, bench_sortpool, bench_model, bench_parallel, emit_trajectory
}
criterion_main!(gnn);
