//! Micro-benchmarks of the DGCNN kernels: graph-conv forward/backward,
//! SortPooling, full-model scoring, one training epoch, and the
//! parallel-vs-serial comparison of batched training/scoring.
//!
//! Set `AUTOLOCK_BENCH_QUICK=1` for a CI smoke run (fewer samples, smaller
//! batches) that still exercises every kernel and prints the
//! parallel-vs-serial numbers.

use autolock_gnn::{Dgcnn, DgcnnConfig, GraphConv, LinkPredictor, SortPooling, SubgraphTensor};
use autolock_mlcore::Matrix;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

/// CI smoke mode: fewer samples, smaller batches, same coverage.
fn quick() -> bool {
    std::env::var_os("AUTOLOCK_BENCH_QUICK").is_some()
}

fn bench_config() -> Criterion {
    Criterion::default().sample_size(if quick() { 3 } else { 10 })
}

/// A random connected graph tensor with `n` nodes and `f` features.
fn random_graph(n: usize, f: usize, seed: u64) -> SubgraphTensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, f);
    for r in 0..n {
        for c in 0..f {
            x.set(r, c, rng.gen_range(-1.0..1.0));
        }
    }
    let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    for _ in 0..n {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
            edges.push((a, b));
        }
    }
    let mut degree = vec![0usize; n];
    for &(a, b) in &edges {
        degree[a] += 1;
        degree[b] += 1;
    }
    let mut adj: Vec<Vec<(usize, f64)>> = (0..n).map(|i| vec![(i, 1.0)]).collect();
    for &(a, b) in &edges {
        adj[a].push((b, 1.0));
        adj[b].push((a, 1.0));
    }
    for (i, row) in adj.iter_mut().enumerate() {
        let norm = 1.0 / (degree[i] as f64 + 1.0);
        for e in row.iter_mut() {
            e.1 *= norm;
        }
    }
    SubgraphTensor::from_parts(x, adj)
}

fn bench_conv(c: &mut Criterion) {
    let graph = random_graph(40, 22, 1);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let conv = GraphConv::new(22, 16, &mut rng);
    let mut group = c.benchmark_group("G1_graphconv");
    group.bench_function("forward_40n_22f_16c", |b| {
        b.iter(|| conv.forward(black_box(&graph), black_box(graph.features())))
    });
    let cache = conv.forward(&graph, graph.features());
    let grad = Matrix::from_vec(40, 16, vec![0.01; 40 * 16]);
    group.bench_function("backward_40n_22f_16c", |b| {
        b.iter(|| conv.backward(black_box(&graph), black_box(&cache), black_box(&grad)))
    });
    group.finish();
}

fn bench_sortpool(c: &mut Criterion) {
    let graph = random_graph(60, 33, 3);
    let pool = SortPooling::new(10);
    let mut group = c.benchmark_group("G2_sortpool");
    group.bench_function("forward_60n_33f_k10", |b| {
        b.iter(|| pool.forward(black_box(graph.features())))
    });
    group.finish();
}

fn bench_model(c: &mut Criterion) {
    let count = if quick() { 8 } else { 32 };
    let graphs: Vec<SubgraphTensor> = (0..count)
        .map(|i| random_graph(30, 22, 10 + i as u64))
        .collect();
    let labels: Vec<f64> = (0..count).map(|i| f64::from(i % 2 == 0)).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let mut model = Dgcnn::new(
        DgcnnConfig {
            epochs: 1,
            num_threads: 1,
            ..DgcnnConfig::for_features(22)
        },
        &mut rng,
    );
    let mut group = c.benchmark_group("G3_dgcnn");
    group.bench_function("score_30n", |b| {
        b.iter(|| model.score(black_box(&graphs[0])))
    });
    group.bench_function(&format!("train_epoch_{count}graphs"), |b| {
        b.iter(|| model.train(black_box(&graphs), black_box(&labels), &mut rng))
    });
    group.finish();
}

/// Parallel vs serial batched forward/backward (one training epoch over one
/// large mini-batch) and batched scoring. The determinism suite proves the
/// outputs are bit-identical for every thread count, so these entries are a
/// pure wall-clock comparison; on a multi-core machine the 4-thread rows
/// should run ≥2x faster than the serial ones.
fn bench_parallel(c: &mut Criterion) {
    let count = if quick() { 16 } else { 64 };
    let graphs: Vec<SubgraphTensor> = (0..count)
        .map(|i| random_graph(40, 22, 100 + i as u64))
        .collect();
    let labels: Vec<f64> = (0..count).map(|i| f64::from(i % 2 == 0)).collect();
    let mut group = c.benchmark_group("G4_parallel");
    for threads in [1usize, 2, 4] {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut model = Dgcnn::new(
            DgcnnConfig {
                epochs: 1,
                batch_size: count, // one parallel fan-out per epoch
                num_threads: threads,
                ..DgcnnConfig::for_features(22)
            },
            &mut rng,
        );
        group.bench_function(&format!("train_epoch_{count}x40n_{threads}threads"), |b| {
            b.iter(|| model.train(black_box(&graphs), black_box(&labels), &mut rng))
        });
        group.bench_function(&format!("score_batch_{count}x40n_{threads}threads"), |b| {
            b.iter(|| model.score_batch(black_box(&graphs)))
        });
    }
    group.finish();
}

criterion_group! {
    name = gnn;
    config = bench_config();
    targets = bench_conv, bench_sortpool, bench_model, bench_parallel
}
criterion_main!(gnn);
