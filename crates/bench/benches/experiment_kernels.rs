//! Benchmark kernels, one per experiment (E1–E9).
//!
//! Each kernel times a *reduced but structurally identical* slice of the
//! corresponding experiment so `cargo bench` stays in the minutes range; the
//! full tables are produced by the `exp_e*` binaries (see `EXPERIMENTS.md`).

use autolock::operators::{CrossoverKind, LocusCrossover, LocusMutation, MutationKind};
use autolock::{
    random_genotype, AutoLock, AutoLockConfig, MultiObjectiveLockingFitness, ObjectiveKind,
};
use autolock_attacks::{
    KeyRecoveryAttack, MuxLinkAttack, MuxLinkConfig, RandomGuessAttack, SatAttack, SatAttackConfig,
};
use autolock_circuits::suite_circuit;
use autolock_evo::{Nsga2, Nsga2Config, SelectionMethod};
use autolock_locking::overhead::overhead_report;
use autolock_locking::{DMuxLocking, LockingScheme, XorLocking};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::sync::Arc;

/// A small AutoLock configuration shared by the GA-based kernels.
fn kernel_config(key_len: usize) -> AutoLockConfig {
    AutoLockConfig {
        key_len,
        population_size: 6,
        generations: 3,
        attack_repeats: 1,
        parallel: false,
        seed: 0xBE,
        ..Default::default()
    }
}

/// E1 kernel — one MuxLink attack on a D-MUX-locked netlist plus a miniature
/// AutoLock run (the two measurements the headline table compares).
fn e1_kernel(c: &mut Criterion) {
    let original = suite_circuit("s380").unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let dmux = DMuxLocking::default()
        .lock(&original, 16, &mut rng)
        .unwrap();
    let mut group = c.benchmark_group("E1_autolock_vs_dmux");
    group.bench_function("muxlink_attack_dmux_k16", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            black_box(
                MuxLinkAttack::new(MuxLinkConfig::fast())
                    .attack(&dmux, &mut rng)
                    .key_accuracy,
            )
        })
    });
    group.bench_function("autolock_mini_run_k16", |b| {
        b.iter(|| {
            let result = AutoLock::new(kernel_config(16)).run(&original).unwrap();
            black_box(result.final_attack_accuracy)
        })
    });
    group.finish();
}

/// E2/E3/E7/E9 kernel — one GA generation's worth of fitness evaluations
/// (population × one attack), the unit all convergence/sweep experiments scale
/// with.
fn e2_kernel(c: &mut Criterion) {
    let original = suite_circuit("s380").unwrap();
    c.bench_function("E2_E3_E7_E9_one_generation_equivalent", |b| {
        b.iter(|| {
            let mut cfg = kernel_config(16);
            cfg.generations = 1;
            let result = AutoLock::new(cfg).run(&original).unwrap();
            black_box(result.fitness_evaluations)
        })
    });
}

/// E4 kernel — the attack matrix row cost: each attack on one locked netlist.
fn e4_kernel(c: &mut Criterion) {
    let original = suite_circuit("s380").unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let dmux = DMuxLocking::default()
        .lock(&original, 16, &mut rng)
        .unwrap();
    let xor = XorLocking::default().lock(&original, 16, &mut rng).unwrap();
    let mut group = c.benchmark_group("E4_attack_matrix");
    group.bench_function("random_guess", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            black_box(RandomGuessAttack.attack(&dmux, &mut rng).key_accuracy)
        })
    });
    group.bench_function("locality_only_on_dmux", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            black_box(
                MuxLinkAttack::new(MuxLinkConfig::locality_only())
                    .attack(&dmux, &mut rng)
                    .key_accuracy,
            )
        })
    });
    group.bench_function("muxlink_on_xor", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            black_box(
                MuxLinkAttack::new(MuxLinkConfig::fast())
                    .attack(&xor, &mut rng)
                    .key_accuracy,
            )
        })
    });
    group.finish();
}

/// E5 kernel — the oracle-guided SAT attack on c17 and a 160-gate circuit.
fn e5_kernel(c: &mut Criterion) {
    let c17 = suite_circuit("c17").unwrap();
    let s160 = suite_circuit("s160").unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let locked_c17 = DMuxLocking::default().lock(&c17, 3, &mut rng).unwrap();
    let locked_s160 = DMuxLocking::default().lock(&s160, 8, &mut rng).unwrap();
    let mut group = c.benchmark_group("E5_sat_attack");
    group.bench_function("sat_attack_c17_k3", |b| {
        b.iter(|| black_box(SatAttack::default().attack(&locked_c17, &c17).iterations))
    });
    group.bench_function("sat_attack_s160_k8", |b| {
        b.iter(|| black_box(SatAttack::default().attack(&locked_s160, &s160).iterations))
    });
    group.finish();
}

/// E6 kernel — locking plus overhead-report computation per scheme.
fn e6_kernel(c: &mut Criterion) {
    let original = suite_circuit("s380").unwrap();
    let mut group = c.benchmark_group("E6_overhead");
    group.bench_function("dmux_lock_and_overhead_k32", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let locked = DMuxLocking::default()
                .lock(&original, 32, &mut rng)
                .unwrap();
            black_box(
                overhead_report(&original, &locked, 4, &mut rng)
                    .unwrap()
                    .area_overhead_pct(),
            )
        })
    });
    group.bench_function("xor_lock_and_overhead_k32", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let locked = XorLocking::default().lock(&original, 32, &mut rng).unwrap();
            black_box(
                overhead_report(&original, &locked, 4, &mut rng)
                    .unwrap()
                    .area_overhead_pct(),
            )
        })
    });
    group.finish();
}

/// E8 kernel — a miniature NSGA-II run with the accuracy/overhead objectives.
fn e8_kernel(c: &mut Criterion) {
    let original = Arc::new(suite_circuit("s380").unwrap());
    c.bench_function("E8_nsga2_mini_run", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(8);
            let initial: Vec<_> = (0..6)
                .map(|_| random_genotype(&original, 12, &mut rng).unwrap())
                .collect();
            let fitness = MultiObjectiveLockingFitness::new(
                original.clone(),
                MuxLinkConfig::fast(),
                SatAttackConfig {
                    max_iterations: 20,
                    timeout_ms: 5_000,
                    max_propagations_per_solve: None,
                    ..SatAttackConfig::default()
                },
                vec![ObjectiveKind::MuxLinkAccuracy, ObjectiveKind::AreaOverhead],
                8,
            );
            let crossover = LocusCrossover::new(original.clone(), 12, CrossoverKind::OnePoint);
            let mutation = LocusMutation::new(original.clone(), 12, MutationKind::Composite);
            let result = Nsga2::new(Nsga2Config {
                generations: 2,
                parallel: false,
                ..Default::default()
            })
            .run(initial, &fitness, &crossover, &mutation, &mut rng);
            black_box(result.front.len())
        })
    });
    // Keep the selection-method enum exercised so ablation configs stay valid.
    let _ = SelectionMethod::default();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = e1_kernel, e2_kernel, e4_kernel, e5_kernel, e6_kernel, e8_kernel
}
criterion_main!(kernels);
