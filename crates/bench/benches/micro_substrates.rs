//! Micro-benchmarks of the substrates (B1–B4 in `EXPERIMENTS.md`):
//! netlist parsing/simulation, SAT solving, enclosing-subgraph feature
//! extraction and one GA generation step.

use autolock_attacks::{visible_levels, LinkFeatureConfig, LinkFeatureExtractor, MuxLinkAttack};
use autolock_circuits::{suite_circuit, synth_circuit};
use autolock_evo::{
    CrossoverOperator, FitnessFunction, GaConfig, GeneticAlgorithm, MutationOperator,
};
use autolock_locking::{DMuxLocking, LockingScheme};
use autolock_netlist::graph::CsrGraph;
use autolock_netlist::ingest::{parse_auto, IngestOptions};
use autolock_netlist::{sim, topo, write_bench};
use autolock_satsolver::{CircuitEncoder, Lit, Solver};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;
use std::hint::black_box;

/// B1 — netlist substrate: `.bench` parsing, writing and 64-pattern
/// bit-parallel simulation of the s880 suite circuit.
fn bench_netlist(c: &mut Criterion) {
    let nl = suite_circuit("s880").expect("suite circuit");
    let text = write_bench(&nl);
    let mut group = c.benchmark_group("B1_netlist");
    let ingest_opts = IngestOptions::default();
    group.bench_function("parse_s880", |b| {
        b.iter(|| parse_auto("s880", black_box(&text), &ingest_opts).unwrap())
    });
    group.bench_function("write_s880", |b| b.iter(|| write_bench(black_box(&nl))));
    group.bench_function("topo_order_s880", |b| {
        b.iter(|| topo::topological_order(black_box(&nl)).unwrap())
    });
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let pi: Vec<u64> = (0..nl.num_inputs()).map(|_| rng.gen()).collect();
    group.bench_function("simulate_64_patterns_s880", |b| {
        b.iter(|| sim::simulate(black_box(&nl), black_box(&pi), &[], 64).unwrap())
    });
    group.finish();
}

/// B2 — SAT solver: random 3-SAT near the phase transition and a c17 miter.
fn bench_satsolver(c: &mut Criterion) {
    let mut group = c.benchmark_group("B2_satsolver");
    group.bench_function("random_3sat_60vars", |b| {
        b.iter_batched(
            || {
                let mut rng = ChaCha8Rng::seed_from_u64(7);
                let num_vars = 60;
                let clauses: Vec<Vec<(u32, bool)>> = (0..250)
                    .map(|_| {
                        (0..3)
                            .map(|_| (rng.gen_range(0..num_vars), rng.gen()))
                            .collect()
                    })
                    .collect();
                clauses
            },
            |clauses| {
                let mut solver = Solver::new();
                solver.reserve_vars(60);
                for clause in &clauses {
                    let lits: Vec<Lit> = clause
                        .iter()
                        .map(|&(v, pos)| Lit::new(autolock_satsolver::Var(v), pos))
                        .collect();
                    solver.add_clause(&lits);
                }
                black_box(solver.solve())
            },
            BatchSize::SmallInput,
        )
    });
    let c17 = suite_circuit("c17").unwrap();
    group.bench_function("encode_and_solve_c17_miter", |b| {
        b.iter(|| {
            let mut solver = Solver::new();
            let a = CircuitEncoder::encode(&mut solver, &c17);
            let bb = CircuitEncoder::encode(&mut solver, &c17);
            for pi in c17.inputs() {
                a.assert_equal(&mut solver, pi, &bb, pi);
            }
            // Force outputs to differ: UNSAT for identical circuits.
            let o = c17.outputs()[0];
            solver.add_clause(&[a.lit(o, true), bb.lit(o, true)]);
            solver.add_clause(&[!a.lit(o, true), !bb.lit(o, true)]);
            black_box(solver.solve())
        })
    });
    group.finish();
}

/// B3 — link-feature extraction over all key-MUX candidates of a D-MUX-locked
/// netlist (the inner loop of the MuxLink attack and of every fitness call).
fn bench_feature_extraction(c: &mut Criterion) {
    let original = synth_circuit("bfeat", 24, 12, 400, 5);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let locked = DMuxLocking::default()
        .lock(&original, 32, &mut rng)
        .unwrap();
    let netlist = locked.netlist();
    let hidden: HashSet<_> = MuxLinkAttack::hidden_gates(netlist);
    let graph = CsrGraph::from_netlist_filtered(netlist, |id| hidden.contains(&id));
    let levels = visible_levels(netlist, &hidden);
    let extractor = LinkFeatureExtractor::new(LinkFeatureConfig::default());
    let candidates = MuxLinkAttack::find_candidates(netlist);
    c.bench_function("B3_extract_features_64_candidates", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for cand in &candidates {
                let f =
                    extractor.extract(netlist, &graph, &levels, cand.cand_key0, cand.sink, false);
                acc += f.iter().sum::<f64>();
            }
            black_box(acc)
        })
    });
}

/// B4 — one GA generation step on a synthetic OneMax-style problem (isolates
/// the evolutionary engine from the attack cost).
fn bench_ga_generation(c: &mut Criterion) {
    struct OneMax;
    impl FitnessFunction<Vec<bool>> for OneMax {
        fn evaluate(&self, g: &Vec<bool>) -> f64 {
            g.iter().filter(|&&b| b).count() as f64
        }
    }
    struct Uniform;
    impl CrossoverOperator<Vec<bool>> for Uniform {
        fn crossover(
            &self,
            a: &Vec<bool>,
            b: &Vec<bool>,
            rng: &mut dyn RngCore,
        ) -> (Vec<bool>, Vec<bool>) {
            let mut c = a.clone();
            let mut d = b.clone();
            for i in 0..a.len() {
                if rng.gen_bool(0.5) {
                    c[i] = b[i];
                    d[i] = a[i];
                }
            }
            (c, d)
        }
    }
    struct Flip;
    impl MutationOperator<Vec<bool>> for Flip {
        fn mutate(&self, g: &mut Vec<bool>, rng: &mut dyn RngCore) {
            let i = rng.gen_range(0..g.len());
            g[i] = !g[i];
        }
    }
    c.bench_function("B4_ga_20_generations_onemax", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let initial: Vec<Vec<bool>> = (0..32)
                .map(|_| (0..64).map(|_| rng.gen_bool(0.3)).collect())
                .collect();
            let result = GeneticAlgorithm::new(GaConfig {
                generations: 20,
                parallel: false,
                ..Default::default()
            })
            .run(initial, &OneMax, &Uniform, &Flip, &mut rng);
            black_box(result.best_fitness)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_netlist, bench_satsolver, bench_feature_extraction, bench_ga_generation
}
criterion_main!(benches);
