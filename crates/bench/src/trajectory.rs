//! The machine-readable perf-trajectory format shared by the kernel
//! benches.
//!
//! `matmul_kernels` and `gnn_kernels` both emit a `BENCH_*.json` file that
//! `.github/scripts/check_bench_regression.py` diffs against its committed
//! baseline. The schema (and the median timer feeding it) lives here once,
//! so a format change cannot silently fork between the benches and the CI
//! gate.

use serde::Serialize;
use std::path::Path;
use std::time::Instant;

/// One measured point of a perf trajectory.
#[derive(Serialize)]
pub struct BenchEntry {
    /// Operation name (e.g. `matmul`, `ensemble_train`, `gnn_train_epoch`).
    pub op: String,
    /// Workload shape (e.g. `128x128x128`, `16x40n`).
    pub dims: String,
    /// Thread count of this entry.
    pub threads: usize,
    /// Median wall clock per iteration, nanoseconds.
    pub ns_per_iter: f64,
    /// What `speedup_vs_baseline` compares against (e.g. `naive`,
    /// `threads=1`, `materialized`).
    pub baseline: String,
    /// Median ns/iter of the baseline.
    pub baseline_ns_per_iter: f64,
    /// `baseline_ns_per_iter / ns_per_iter` — > 1 means this entry beats
    /// its baseline.
    pub speedup_vs_baseline: f64,
}

/// A `BENCH_*.json` file: which bench produced it, whether in quick (CI
/// smoke) mode, and its entries.
#[derive(Serialize)]
pub struct BenchTrajectory {
    /// Bench name (`matmul_kernels`, `gnn_kernels`).
    pub bench: String,
    /// `true` when measured under `AUTOLOCK_BENCH_QUICK`.
    pub quick: bool,
    /// The measured points.
    pub entries: Vec<BenchEntry>,
}

impl BenchTrajectory {
    /// Prints every entry and writes the trajectory to
    /// `<dir>/<file_name>`. I/O problems are reported to stderr but not
    /// fatal (a bench run should never die on a read-only results dir).
    pub fn emit(&self, dir: &Path, file_name: &str) {
        for e in &self.entries {
            println!(
                "trajectory {}/{} threads={}: {:.0} ns/iter, {:.2}x vs {}",
                e.op, e.dims, e.threads, e.ns_per_iter, e.speedup_vs_baseline, e.baseline
            );
        }
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(file_name);
        match serde_json::to_string_pretty(self) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("warning: cannot write {}: {e}", path.display());
                } else {
                    println!("(wrote {})", path.display());
                }
            }
            Err(e) => eprintln!("warning: cannot serialize trajectory: {e}"),
        }
    }
}

/// Median ns/iter of `f` over `samples` timed runs (one discarded warm-up).
pub fn median_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_ns_is_positive_and_ordered() {
        let ns = median_ns(5, || {
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert!(ns > 0.0);
    }

    #[test]
    fn trajectory_serializes_with_gate_keys() {
        let t = BenchTrajectory {
            bench: "test".into(),
            quick: true,
            entries: vec![BenchEntry {
                op: "op".into(),
                dims: "1x1".into(),
                threads: 1,
                ns_per_iter: 2.0,
                baseline: "naive".into(),
                baseline_ns_per_iter: 4.0,
                speedup_vs_baseline: 2.0,
            }],
        };
        let json = serde_json::to_string(&t).unwrap();
        // The exact keys check_bench_regression.py loads.
        for key in ["entries", "op", "dims", "threads", "speedup_vs_baseline"] {
            assert!(json.contains(key), "missing gate key {key}");
        }
    }
}
