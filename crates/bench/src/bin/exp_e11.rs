//! E11: AutoLock evolved against the DGCNN adversary end-to-end
//!
//! Run with `cargo run --release -p autolock_bench --bin exp_e11`.
//! Set `AUTOLOCK_SCALE=full` for the paper-sized (slower) version.

use autolock_bench::experiments::e11_gnn_adversary_evolution;
use autolock_bench::{experiment_scale, results_dir, ObsRun};

fn main() {
    let scale = experiment_scale();
    // Record the run: manifest + span trace under <results>/obs/.
    let _obs = ObsRun::start("e11", 11);
    eprintln!("running E11: GNN-targeted evolution at {scale:?} scale...");
    let table = e11_gnn_adversary_evolution(scale);
    table.emit(&results_dir());
}
