//! E4: attack-vs-scheme accuracy matrix
//!
//! Run with `cargo run --release -p autolock-bench --bin exp_e4`.
//! Set `AUTOLOCK_SCALE=full` for the paper-sized (slower) version.

use autolock_bench::experiments::e4_attack_matrix;
use autolock_bench::{experiment_scale, results_dir, ObsRun};

fn main() {
    let scale = experiment_scale();
    // Record the run: manifest + span trace under <results>/obs/.
    let _obs = ObsRun::start("e4", 4);
    eprintln!("running E4: attack-vs-scheme accuracy matrix at {scale:?} scale...");
    let table = e4_attack_matrix(scale);
    table.emit(&results_dir());
}
