//! E6: area/delay/power overhead
//!
//! Run with `cargo run --release -p autolock-bench --bin exp_e6`.
//! Set `AUTOLOCK_SCALE=full` for the paper-sized (slower) version.

use autolock_bench::experiments::e6_overhead;
use autolock_bench::{experiment_scale, results_dir, ObsRun};

fn main() {
    let scale = experiment_scale();
    // Record the run: manifest + span trace under <results>/obs/.
    let _obs = ObsRun::start("e6", 6);
    eprintln!("running E6: area/delay/power overhead at {scale:?} scale...");
    let table = e6_overhead(scale);
    table.emit(&results_dir());
}
