//! E8: NSGA-II multi-objective Pareto front
//!
//! Run with `cargo run --release -p autolock-bench --bin exp_e8`.
//! Set `AUTOLOCK_SCALE=full` for the paper-sized (slower) version.

use autolock_bench::experiments::e8_multi_objective;
use autolock_bench::{experiment_scale, results_dir, ObsRun};

fn main() {
    let scale = experiment_scale();
    // Record the run: manifest + span trace under <results>/obs/.
    let _obs = ObsRun::start("e8", 8);
    eprintln!("running E8: NSGA-II multi-objective Pareto front at {scale:?} scale...");
    let table = e8_multi_objective(scale);
    table.emit(&results_dir());
}
