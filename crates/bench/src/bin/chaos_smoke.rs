//! Seeded chaos smoke for the fault-tolerant attack service.
//!
//! ```text
//! cargo run --release -p autolock_bench --bin chaos_smoke -- [--seed N] [--out DIR]
//! ```
//!
//! Runs the full demo job matrix (SAT + MuxLink + evolution per circuit)
//! twice: once fault-free to record the reference `rows.jsonl`, once under a
//! seeded random [`FaultPlan`] that injects a worker panic, corrupts every
//! mid-solve SAT checkpoint write for one victim job, and scatters further
//! recoverable faults — then simulates a kill (the victim's finished row is
//! torn out of the stream) and lets a clean engine recover. The run **fails**
//! (exit 1) unless all three gates hold:
//!
//! 1. the recovered stream is byte-for-byte identical to the reference,
//! 2. at least one injected panic was absorbed by the retry loop
//!    (`service.exec_retries` advanced), and
//! 3. at least one corrupt record was detected and quarantined
//!    (`service.store.quarantined` advanced).
//!
//! Every decision derives from `--seed`, so a CI failure reproduces locally
//! with the seed the job prints.

use autolock_bench::demo::write_quick_demo_circuits;
use autolock_service::{
    jobs_from_dir, DirJobConfig, DirJobKinds, EngineConfig, FaultKind, FaultPlan, FaultSpec,
    JobEngine, JobSpec, LockSpec,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

struct Options {
    seed: u64,
    out: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!("usage: chaos_smoke [--seed N] [--out DIR]");
    std::process::exit(1)
}

fn parse_args() -> Options {
    let mut opts = Options {
        seed: 0xC0FF_EE00,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--seed" => {
                opts.seed = value().parse().unwrap_or_else(|_| {
                    eprintln!("--seed takes a number");
                    usage()
                })
            }
            "--out" => opts.out = Some(PathBuf::from(value())),
            _ => {
                eprintln!("unknown flag: {arg}");
                usage()
            }
        }
    }
    opts
}

/// The demo job matrix: both quick demo circuits, all three job kinds.
fn demo_jobs(circuits: &Path) -> std::io::Result<Vec<JobSpec>> {
    write_quick_demo_circuits(circuits)?;
    let config = DirJobConfig {
        lock: LockSpec::Xor { key_len: 4 },
        seed: 0x0C4A_05C0,
        timeout_ms: 600_000,
        max_propagations_per_solve: None,
        max_iterations: 2000,
        kinds: DirJobKinds {
            sat: true,
            muxlink: true,
            evolve: true,
        },
        evolve_population: 3,
        evolve_generations: 1,
        evolve_islands: 1,
        unroll_frames: 2,
    };
    jobs_from_dir(circuits, &config)
}

/// Engine config shared by the reference and chaos runs: checkpoint every
/// conflict so SAT checkpoints always exist for the corruption to target.
fn engine_config(dir: &Path, faults: Arc<FaultPlan>) -> EngineConfig {
    let mut config = EngineConfig::rooted(dir, 2);
    config.sat_step_conflicts = Some(1);
    config.faults = faults;
    config
}

/// Builds the seeded fault plan. Two faults are guaranteed (they feed the
/// gates): a panic on some job's first execution attempt, and corruption of
/// every mid-solve checkpoint write for one SAT job. The rest is random
/// scatter over recoverable seams.
fn build_plan(rng: &mut ChaCha8Rng, jobs: &[JobSpec], sat_victim: &str) -> Arc<FaultPlan> {
    let panic_victim = &jobs[rng.gen_range(0..jobs.len())].id;
    let mut specs = vec![FaultSpec::new(
        format!("exec:{panic_victim}#1"),
        1,
        FaultKind::Panic,
    )];
    for occurrence in 1..=512 {
        specs.push(FaultSpec::new(
            format!("store.write:{sat_victim}.sat.json"),
            occurrence,
            FaultKind::CorruptBytes,
        ));
    }
    if rng.gen_bool(0.5) {
        let torn = &jobs[rng.gen_range(0..jobs.len())].id;
        specs.push(FaultSpec::new(
            format!("rows.append:{torn}"),
            1,
            FaultKind::TornWrite,
        ));
    }
    if rng.gen_bool(0.5) {
        specs.push(FaultSpec::new("rows.compact", 1, FaultKind::TornWrite));
    }
    FaultPlan::new(specs)
}

/// Rewrites `rows` without the line for `id` — the simulated kill that
/// forces the next engine life to re-run that job and read (then reject)
/// its corrupt checkpoint.
fn drop_row(rows: &Path, id: &str) -> std::io::Result<()> {
    let needle = format!("\"job_id\":\"{id}\"");
    let text = fs::read_to_string(rows)?;
    let kept: String = text
        .lines()
        .filter(|line| !line.contains(&needle))
        .map(|line| format!("{line}\n"))
        .collect();
    fs::write(rows, kept)
}

fn main() -> ExitCode {
    autolock_obs::enable();
    let opts = parse_args();
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    println!("chaos_smoke seed={}", opts.seed);

    let root = opts.out.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("autolock_chaos_smoke_{}", std::process::id()))
    });
    let _ = fs::remove_dir_all(&root);
    let circuits = root.join("circuits");
    let jobs = demo_jobs(&circuits).expect("demo circuits");
    let sat_jobs: Vec<&str> = jobs
        .iter()
        .filter(|j| !j.id.contains('.'))
        .map(|j| j.id.as_str())
        .collect();
    let sat_victim = sat_jobs[rng.gen_range(0..sat_jobs.len())].to_string();

    // Reference: the stream a fault-free run produces.
    let ref_dir = root.join("reference");
    JobEngine::new(engine_config(&ref_dir, FaultPlan::none()))
        .expect("reference engine")
        .run(&jobs)
        .expect("reference run");
    let reference = fs::read(ref_dir.join("rows.jsonl")).expect("reference stream");

    let retries_before = autolock_obs::counter("service.exec_retries").value();
    let quarantined_before = autolock_obs::counter("service.store.quarantined").value();

    // Life 1: run everything under the fault plan. The panic is retried in
    // place; the victim's checkpoints all land corrupt on disk.
    let plan = build_plan(&mut rng, &jobs, &sat_victim);
    let chaos_dir = root.join("chaos");
    JobEngine::new(engine_config(&chaos_dir, Arc::clone(&plan)))
        .expect("chaos engine")
        .run(&jobs)
        .expect("chaos run");
    println!("life 1: {} fault(s) fired", plan.fired());

    // The kill: tear the victim's row out of the stream so life 2 must
    // re-run it — and hit the corrupt checkpoint first.
    let rows = chaos_dir.join("rows.jsonl");
    drop_row(&rows, &sat_victim).expect("drop victim row");

    // Life 2: a clean engine recovers — detects the corrupt checkpoint,
    // quarantines it, recomputes the job from scratch.
    JobEngine::new(engine_config(&chaos_dir, FaultPlan::none()))
        .expect("recovery engine")
        .run(&jobs)
        .expect("recovery run");

    let recovered = fs::read(&rows).expect("recovered stream");
    let retries = autolock_obs::counter("service.exec_retries").value() - retries_before;
    let quarantined =
        autolock_obs::counter("service.store.quarantined").value() - quarantined_before;

    let mut ok = true;
    if recovered == reference {
        println!("gate 1 PASS: recovered stream is byte-identical to the reference");
    } else {
        println!(
            "gate 1 FAIL: recovered stream ({} bytes) differs from reference ({} bytes)",
            recovered.len(),
            reference.len()
        );
        ok = false;
    }
    if retries >= 1 {
        println!("gate 2 PASS: retry loop absorbed {retries} injected failure(s)");
    } else {
        println!("gate 2 FAIL: no retry was exercised");
        ok = false;
    }
    if quarantined >= 1 {
        println!("gate 3 PASS: {quarantined} corrupt record(s) quarantined");
    } else {
        println!("gate 3 FAIL: no quarantine was exercised");
        ok = false;
    }

    if ok {
        let _ = fs::remove_dir_all(&root);
        println!("chaos_smoke PASS (seed={})", opts.seed);
        ExitCode::SUCCESS
    } else {
        println!(
            "chaos_smoke FAIL (seed={}); artifacts kept at {}",
            opts.seed,
            root.display()
        );
        ExitCode::FAILURE
    }
}
