//! E9: GA hyper-parameter sensitivity
//!
//! Run with `cargo run --release -p autolock-bench --bin exp_e9`.
//! Set `AUTOLOCK_SCALE=full` for the paper-sized (slower) version.

use autolock_bench::experiments::e9_sensitivity;
use autolock_bench::{experiment_scale, results_dir, ObsRun};

fn main() {
    let scale = experiment_scale();
    // Record the run: manifest + span trace under <results>/obs/.
    let _obs = ObsRun::start("e9", 9);
    eprintln!("running E9: GA hyper-parameter sensitivity at {scale:?} scale...");
    let table = e9_sensitivity(scale);
    table.emit(&results_dir());
}
