//! E1: MuxLink accuracy, D-MUX vs AutoLock (headline claim)
//!
//! Run with `cargo run --release -p autolock-bench --bin exp_e1`.
//! Set `AUTOLOCK_SCALE=full` for the paper-sized (slower) version.

use autolock_bench::experiments::e1_autolock_vs_dmux;
use autolock_bench::{experiment_scale, results_dir, ObsRun};

fn main() {
    let scale = experiment_scale();
    // Record the run: manifest + span trace under <results>/obs/.
    let _obs = ObsRun::start("e1", 1);
    eprintln!(
        "running E1: MuxLink accuracy, D-MUX vs AutoLock (headline claim) at {scale:?} scale..."
    );
    let table = e1_autolock_vs_dmux(scale);
    table.emit(&results_dir());
}
