//! E14: island-model evolution at xl scale through the resumable job engine
//!
//! Run with `cargo run --release -p autolock_bench --bin exp_e14`.
//! Set `AUTOLOCK_SCALE=full` for the paper-sized (slower) version.

use autolock_bench::experiments::e14_island_evolution;
use autolock_bench::{experiment_scale, results_dir, ObsRun};

fn main() {
    let scale = experiment_scale();
    // Record the run: manifest + span trace under <results>/obs/.
    let _obs = ObsRun::start("e14", 14);
    eprintln!("running E14: island-model evolution at {scale:?} scale...");
    let table = e14_island_evolution(scale);
    table.emit(&results_dir());
}
