//! E15: sequential-circuit ingestion (AIGER cut/unroll) through the engine
//!
//! Run with `cargo run --release -p autolock_bench --bin exp_e15`.
//! Set `AUTOLOCK_SCALE=full` for the paper-sized (slower) version.

use autolock_bench::experiments::e15_sequential_ingestion;
use autolock_bench::{experiment_scale, results_dir, ObsRun};

fn main() {
    let scale = experiment_scale();
    // Record the run: manifest + span trace under <results>/obs/.
    let _obs = ObsRun::start("e15", 15);
    eprintln!("running E15: sequential-circuit ingestion at {scale:?} scale...");
    let table = e15_sequential_ingestion(scale);
    table.emit(&results_dir());
}
