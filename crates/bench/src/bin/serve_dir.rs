//! `serve_dir`: run the attack-as-a-service engine over a directory of
//! circuits — `.bench` and ASCII AIGER `.aag`, mixed freely — and emit one
//! JSONL status row per instance.
//!
//! ```text
//! cargo run --release -p autolock_bench --bin serve_dir -- \
//!     --dir circuits/ --out runs/smoke [--scheme xor|dmux] [--key-len N] \
//!     [--seed N] [--timeout-ms N] [--propagations N] [--iterations N] \
//!     [--attacks sat,muxlink,evolve] [--evolve-population N] \
//!     [--evolve-generations N] [--evolve-islands N] [--unroll N] \
//!     [--demo] [--demo-mixed]
//! ```
//!
//! Each circuit file becomes one job per attack in `--attacks` (default
//! `sat`): a SAT-attack job under the file stem, a MuxLink job under
//! `{stem}.muxlink`, an evolution job under `{stem}.evolve` — each with a
//! stable per-job seed and its own status row, so existing `.bench`
//! directories keep their historical ids and seeds. A **sequential**
//! circuit (an `.aag` with latches, or a `.bench` with `DFF`s) instead
//! fans out into two attack targets: the register cut under `{stem}.cut`
//! and the `--unroll N`-frame expansion under `{stem}.u{N}` (default 2),
//! each with the usual per-attack suffixes. Every row records the source
//! format in its `format` column. `--evolve-islands N` with
//! `N > 1` routes the evolve jobs through the island-model engine (ring
//! migration every generation) under the *same* ids and per-id seeds, so
//! enabling islands never reshuffles the other jobs' rows. Rows stream to
//! `<out>/rows.jsonl` as jobs finish; re-running against the same `--out`
//! directory resumes, skipping completed jobs, and the final stream is
//! bit-identical to an uninterrupted run. `--propagations` sets the
//! deterministic per-solve work cap, which is how CI induces a reproducible
//! `timeout` row; `--demo` first populates `--dir` with two quick synthetic
//! circuits plus the structurally hard `st6288`, and `--demo-mixed` with
//! the quick pair plus a sequential `.aag` (the ingestion smoke set).
//!
//! Exit status is 0 when every row is `ok`, 2 when any row is `timeout` or
//! `error`, and 1 on usage or I/O failures.

use autolock_bench::demo::{write_demo_circuits, write_mixed_demo_circuits};
use autolock_bench::experiment_threads;
use autolock_service::{
    jobs_from_dir, DirJobConfig, DirJobKinds, EngineConfig, JobEngine, JobStatus, LockSpec,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    dir: PathBuf,
    out: PathBuf,
    scheme: String,
    key_len: usize,
    seed: u64,
    timeout_ms: u64,
    propagations: Option<u64>,
    iterations: usize,
    kinds: DirJobKinds,
    evolve_population: usize,
    evolve_generations: usize,
    evolve_islands: usize,
    unroll_frames: usize,
    demo: bool,
    demo_mixed: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_dir --dir <circuits> --out <run-dir> [--scheme xor|dmux] \
         [--key-len N] [--seed N] [--timeout-ms N] [--propagations N] \
         [--iterations N] [--attacks sat,muxlink,evolve] [--evolve-population N] \
         [--evolve-generations N] [--evolve-islands N] [--unroll N] [--demo] \
         [--demo-mixed]"
    );
    std::process::exit(1);
}

fn parse_options() -> Options {
    let mut opts = Options {
        dir: PathBuf::new(),
        out: PathBuf::new(),
        scheme: "xor".to_string(),
        key_len: 16,
        seed: DirJobConfig::default().seed,
        timeout_ms: 60_000,
        propagations: None,
        iterations: 2000,
        kinds: DirJobKinds::default(),
        evolve_population: 4,
        evolve_generations: 2,
        evolve_islands: 1,
        unroll_frames: DirJobConfig::default().unroll_frames,
        demo: false,
        demo_mixed: false,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => opts.dir = PathBuf::from(value(&mut args, "--dir")),
            "--out" => opts.out = PathBuf::from(value(&mut args, "--out")),
            "--scheme" => opts.scheme = value(&mut args, "--scheme"),
            "--key-len" => opts.key_len = parse_num(&value(&mut args, "--key-len")),
            "--seed" => opts.seed = parse_num(&value(&mut args, "--seed")),
            "--timeout-ms" => opts.timeout_ms = parse_num(&value(&mut args, "--timeout-ms")),
            "--propagations" => {
                opts.propagations = Some(parse_num(&value(&mut args, "--propagations")));
            }
            "--iterations" => opts.iterations = parse_num(&value(&mut args, "--iterations")),
            "--attacks" => opts.kinds = parse_kinds(&value(&mut args, "--attacks")),
            "--evolve-population" => {
                opts.evolve_population = parse_num(&value(&mut args, "--evolve-population"));
            }
            "--evolve-generations" => {
                opts.evolve_generations = parse_num(&value(&mut args, "--evolve-generations"));
            }
            "--evolve-islands" => {
                opts.evolve_islands = parse_num(&value(&mut args, "--evolve-islands"));
            }
            "--unroll" => opts.unroll_frames = parse_num(&value(&mut args, "--unroll")),
            "--demo" => opts.demo = true,
            "--demo-mixed" => opts.demo_mixed = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    if opts.dir.as_os_str().is_empty() || opts.out.as_os_str().is_empty() {
        usage();
    }
    opts
}

fn parse_num<T: std::str::FromStr>(text: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("not a number: {text}");
        usage()
    })
}

/// Parses the comma-separated `--attacks` list into job kinds.
fn parse_kinds(text: &str) -> DirJobKinds {
    let mut kinds = DirJobKinds {
        sat: false,
        muxlink: false,
        evolve: false,
    };
    for part in text.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        match part {
            "sat" => kinds.sat = true,
            "muxlink" => kinds.muxlink = true,
            "evolve" => kinds.evolve = true,
            other => {
                eprintln!("unknown attack: {other} (expected sat, muxlink or evolve)");
                usage()
            }
        }
    }
    if !(kinds.sat || kinds.muxlink || kinds.evolve) {
        eprintln!("--attacks needs at least one of sat, muxlink, evolve");
        usage()
    }
    kinds
}

fn main() -> ExitCode {
    let opts = parse_options();
    let lock = match opts.scheme.as_str() {
        "xor" => LockSpec::Xor {
            key_len: opts.key_len,
        },
        "dmux" => LockSpec::DMux {
            key_len: opts.key_len,
        },
        other => {
            eprintln!("unknown scheme: {other} (expected xor or dmux)");
            return ExitCode::from(1);
        }
    };
    if opts.demo {
        if let Err(e) = write_demo_circuits(&opts.dir) {
            eprintln!("serve_dir: writing demo circuits: {e}");
            return ExitCode::from(1);
        }
    }
    if opts.demo_mixed {
        if let Err(e) = write_mixed_demo_circuits(&opts.dir) {
            eprintln!("serve_dir: writing mixed demo circuits: {e}");
            return ExitCode::from(1);
        }
    }

    let config = DirJobConfig {
        lock,
        seed: opts.seed,
        timeout_ms: opts.timeout_ms,
        max_propagations_per_solve: opts.propagations,
        max_iterations: opts.iterations,
        kinds: opts.kinds,
        evolve_population: opts.evolve_population,
        evolve_generations: opts.evolve_generations,
        evolve_islands: opts.evolve_islands,
        unroll_frames: opts.unroll_frames,
    };
    let jobs = match jobs_from_dir(&opts.dir, &config) {
        Ok(jobs) => jobs,
        Err(e) => {
            eprintln!("serve_dir: scanning {}: {e}", opts.dir.display());
            return ExitCode::from(1);
        }
    };
    if jobs.is_empty() {
        eprintln!("serve_dir: no .bench/.aag files in {}", opts.dir.display());
        return ExitCode::from(1);
    }
    eprintln!(
        "serve_dir: {} job(s) from {} -> {}",
        jobs.len(),
        opts.dir.display(),
        opts.out.display()
    );

    let engine = match JobEngine::new(EngineConfig::rooted(&opts.out, experiment_threads())) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("serve_dir: opening {}: {e}", opts.out.display());
            return ExitCode::from(1);
        }
    };
    let rows = match engine.run(&jobs) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("serve_dir: running jobs: {e}");
            return ExitCode::from(1);
        }
    };

    let mut all_ok = true;
    for row in &rows {
        let status = match row.status {
            JobStatus::Ok => "ok",
            JobStatus::Timeout => "timeout",
            JobStatus::Error => "error",
        };
        if row.status != JobStatus::Ok {
            all_ok = false;
        }
        println!(
            "{:<24} {:<7} {:<8} {:<8} key_len={} iterations={}{}",
            row.job_id,
            row.format,
            row.attack,
            status,
            row.key_len,
            row.iterations,
            row.error
                .as_deref()
                .map(|e| format!(" error={e}"))
                .unwrap_or_default()
        );
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
