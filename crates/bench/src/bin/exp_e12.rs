//! E12: MuxLink key accuracy vs circuit size × locking density on the
//! structured (ISCAS-shaped) suite tier.
//!
//! Run with `cargo run --release -p autolock_bench --bin exp_e12`.
//! Set `AUTOLOCK_SCALE=full` for more densities and retrained repeats, and
//! `AUTOLOCK_SUITE_SCALE=full` to include the `xl` suite member.

use autolock_bench::experiments::e12_size_density_sweep;
use autolock_bench::{experiment_scale, results_dir, ObsRun};

fn main() {
    let scale = experiment_scale();
    // Record the run: manifest + span trace under <results>/obs/.
    let _obs = ObsRun::start("e12", 12);
    eprintln!("running E12: size x density sweep at {scale:?} scale...");
    let table = e12_size_density_sweep(scale);
    table.emit(&results_dir());
}
