//! E7: evolutionary operator ablation
//!
//! Run with `cargo run --release -p autolock-bench --bin exp_e7`.
//! Set `AUTOLOCK_SCALE=full` for the paper-sized (slower) version.

use autolock_bench::experiments::e7_operator_ablation;
use autolock_bench::{experiment_scale, results_dir, ObsRun};

fn main() {
    let scale = experiment_scale();
    // Record the run: manifest + span trace under <results>/obs/.
    let _obs = ObsRun::start("e7", 7);
    eprintln!("running E7: evolutionary operator ablation at {scale:?} scale...");
    let table = e7_operator_ablation(scale);
    table.emit(&results_dir());
}
