//! E5: oracle-guided SAT attack comparison
//!
//! Run with `cargo run --release -p autolock-bench --bin exp_e5`.
//! Set `AUTOLOCK_SCALE=full` for the paper-sized (slower) version.

use autolock_bench::experiments::e5_sat_attack;
use autolock_bench::{experiment_scale, results_dir, ObsRun};

fn main() {
    let scale = experiment_scale();
    // Record the run: manifest + span trace under <results>/obs/.
    let _obs = ObsRun::start("e5", 5);
    eprintln!("running E5: oracle-guided SAT attack comparison at {scale:?} scale...");
    let table = e5_sat_attack(scale);
    table.emit(&results_dir());
}
