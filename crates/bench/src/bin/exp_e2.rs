//! E2: GA convergence curve
//!
//! Run with `cargo run --release -p autolock-bench --bin exp_e2`.
//! Set `AUTOLOCK_SCALE=full` for the paper-sized (slower) version.

use autolock_bench::experiments::e2_convergence;
use autolock_bench::{experiment_scale, results_dir, ObsRun};

fn main() {
    let scale = experiment_scale();
    // Record the run: manifest + span trace under <results>/obs/.
    let _obs = ObsRun::start("e2", 2);
    eprintln!("running E2: GA convergence curve at {scale:?} scale...");
    let table = e2_convergence(scale);
    table.emit(&results_dir());
}
