//! E3: key-length sweep
//!
//! Run with `cargo run --release -p autolock-bench --bin exp_e3`.
//! Set `AUTOLOCK_SCALE=full` for the paper-sized (slower) version.

use autolock_bench::experiments::e3_key_sweep;
use autolock_bench::{experiment_scale, results_dir, ObsRun};

fn main() {
    let scale = experiment_scale();
    // Record the run: manifest + span trace under <results>/obs/.
    let _obs = ObsRun::start("e3", 3);
    eprintln!("running E3: key-length sweep at {scale:?} scale...");
    let table = e3_key_sweep(scale);
    table.emit(&results_dir());
}
