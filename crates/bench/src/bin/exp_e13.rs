//! E13: DGCNN-backend MuxLink key accuracy vs circuit size on the
//! structured (ISCAS-shaped) suite tier, with streamed training and a
//! recorded peak-RSS column.
//!
//! Run with `cargo run --release -p autolock_bench --bin exp_e13`.
//! Set `AUTOLOCK_SCALE=full` for more repeats and every structured member,
//! and `AUTOLOCK_SUITE_SCALE=full` to include the `xl11k` member.

use autolock_bench::experiments::e13_gnn_structured_sweep;
use autolock_bench::{experiment_scale, results_dir, ObsRun};

fn main() {
    let scale = experiment_scale();
    // Record the run: manifest + span trace under <results>/obs/.
    let _obs = ObsRun::start("e13", 13);
    eprintln!("running E13: GNN-backend structured-tier sweep at {scale:?} scale...");
    let table = e13_gnn_structured_sweep(scale);
    table.emit(&results_dir());
}
