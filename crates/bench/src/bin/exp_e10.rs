//! E10: MuxLink backend comparison (enclosing-subgraph MLP vs DGCNN)
//!
//! Run with `cargo run --release -p autolock_bench --bin exp_e10`.
//! Set `AUTOLOCK_SCALE=full` for the paper-sized (slower) version.

use autolock_bench::experiments::e10_backend_comparison;
use autolock_bench::{experiment_scale, results_dir, ObsRun};

fn main() {
    let scale = experiment_scale();
    // Record the run: manifest + span trace under <results>/obs/.
    let _obs = ObsRun::start("e10", 10);
    eprintln!("running E10: MuxLink backend comparison at {scale:?} scale...");
    let table = e10_backend_comparison(scale);
    table.emit(&results_dir());
}
