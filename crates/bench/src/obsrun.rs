//! Per-driver observability scope: every `exp_e*` binary opens an [`ObsRun`]
//! before doing work and lets it drop at exit, which writes the run's
//! provenance manifest and span trace under `<results>/obs/`:
//!
//! * `obs/<exp>-manifest.json` — one [`autolock_obs::RunManifest`],
//! * `obs/<exp>-spans.jsonl` — one span event per line, in deterministic
//!   flush order.
//!
//! The guard enables the (otherwise dormant) global registry, so the
//! instrumentation baked into `gnn`/`attacks`/`evo`/`autolock` starts
//! recording; disabling it again on drop returns every site to its one-load
//! idle cost. Recording never changes results — the bit-for-bit contract is
//! pinned by `crates/attacks/tests/obs_equivalence.rs`.
//!
//! `AUTOLOCK_OBS=0` skips the whole scope (no files, registry stays off).

use crate::{experiment_scale, experiment_suite_scale, experiment_threads, results_dir, Scale};
use autolock_obs::manifest::{fingerprint, write_events_jsonl, RunManifest};
use std::time::Instant;

/// RAII scope that records one experiment run and emits manifest + spans
/// JSONL on drop. See the [module docs](self).
pub struct ObsRun {
    experiment: String,
    seed: u64,
    started: Instant,
    root: Option<autolock_obs::SpanGuard>,
}

impl ObsRun {
    /// Starts recording for `experiment` (e.g. `"e13"`). `seed` is the
    /// driver's base RNG seed, recorded for provenance only.
    ///
    /// Returns `None` — and leaves the registry untouched — when the user
    /// opted out (`AUTOLOCK_OBS=0`) or the workspace was built with the obs
    /// `noop` feature.
    pub fn start(experiment: &str, seed: u64) -> Option<ObsRun> {
        if autolock_obs::is_noop() || std::env::var("AUTOLOCK_OBS").as_deref() == Ok("0") {
            return None;
        }
        autolock_obs::reset();
        autolock_obs::enable();
        // Root span: the driver's whole run, named after the experiment.
        // One leaked string per process, so the span name can be 'static.
        let name: &'static str = Box::leak(format!("exp.{experiment}").into_boxed_str());
        Some(ObsRun {
            experiment: experiment.to_string(),
            seed,
            started: Instant::now(),
            root: Some(autolock_obs::span(name)),
        })
    }
}

impl Drop for ObsRun {
    fn drop(&mut self) {
        // Close the root span before draining so it is part of the flush.
        drop(self.root.take());
        autolock_obs::mem::record_rss_gauges();
        let snapshot = autolock_obs::drain();
        autolock_obs::disable();

        let scale = match experiment_scale() {
            Scale::Quick => "quick",
            Scale::Full => "full",
        };
        let tier = format!("{:?}", experiment_suite_scale(experiment_scale())).to_lowercase();
        let threads = experiment_threads();
        let fp = fingerprint(&[
            &self.experiment,
            scale,
            &tier,
            &threads.to_string(),
            &self.seed.to_string(),
        ]);
        let manifest = RunManifest::from_snapshot(
            &snapshot,
            &self.experiment,
            &fp,
            &tier,
            scale,
            self.seed,
            threads,
            self.started.elapsed().as_secs_f64() * 1e3,
        );

        let dir = results_dir().join("obs");
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let manifest_path = dir.join(format!("{}-manifest.json", self.experiment));
        match manifest.write(&manifest_path) {
            Ok(()) => println!("(wrote {})", manifest_path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", manifest_path.display()),
        }
        let spans_path = dir.join(format!("{}-spans.jsonl", self.experiment));
        match write_events_jsonl(&spans_path, &snapshot.events) {
            Ok(()) => println!("(wrote {})\n", spans_path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", spans_path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_run_writes_manifest_and_spans() {
        let dir = std::env::temp_dir().join("autolock_obsrun_test");
        std::fs::remove_dir_all(&dir).ok();
        std::env::set_var("AUTOLOCK_RESULTS_DIR", &dir);
        {
            let _run = ObsRun::start("etest", 42).expect("obs enabled by default");
            let _inner = autolock_obs::span!("test.stage");
            autolock_obs::counter("test.rows").add(3);
        }
        std::env::remove_var("AUTOLOCK_RESULTS_DIR");

        let manifest = std::fs::read_to_string(dir.join("obs/etest-manifest.json")).unwrap();
        for key in [
            "\"schema_version\"",
            "\"experiment\"",
            "\"config_fingerprint\"",
            "\"suite_tier\"",
            "\"seed\"",
            "\"threads\"",
            "\"git_describe\"",
            "\"wall_clock_ms\"",
            "\"top_spans\"",
            "\"counters\"",
            "\"gauges\"",
        ] {
            assert!(manifest.contains(key), "manifest missing {key}");
        }
        assert!(manifest.contains("exp.etest"));
        assert!(manifest.contains("test.rows"));

        let spans = std::fs::read_to_string(dir.join("obs/etest-spans.jsonl")).unwrap();
        let lines: Vec<&str> = spans.lines().collect();
        assert_eq!(lines.len(), 2, "inner stage + root span");
        assert!(lines[0].contains("exp.etest/test.stage"));
        assert!(lines[1].contains("\"exp.etest\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
