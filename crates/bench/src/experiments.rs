//! Experiment implementations (one per table/figure in `EXPERIMENTS.md`).
//!
//! Each function is pure computation returning a [`ResultTable`]; the
//! `exp_e*` binaries wrap them with output handling, and the Criterion
//! benches time representative slices of them.

use crate::{
    experiment_suite_scale, experiment_threads, parallel_map, pct, peak_rss_mb, ResultTable, Scale,
};
use autolock::operators::{CrossoverKind, MutationKind};
use autolock::{AutoLock, AutoLockConfig, MultiObjectiveLockingFitness, ObjectiveKind};
use autolock_attacks::{
    KeyRecoveryAttack, MuxLinkAttack, MuxLinkConfig, RandomGuessAttack, SatAttack, SatAttackConfig,
    XorStructuralAttack,
};
use autolock_circuits::suite_circuit;
use autolock_evo::{Nsga2, Nsga2Config, SelectionMethod};
use autolock_locking::overhead::overhead_report;
use autolock_locking::{DMuxLocking, LockedNetlist, LockingScheme, XorLocking};
use autolock_netlist::Netlist;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Circuits used at each scale.
///
/// The locking density matters: with key length 32, circuits below ~400 gates
/// are so saturated with MUXes that even the baseline attack degrades, which
/// is not the regime the paper evaluates. `s880` (≈880 gates) is the smallest
/// member with ISCAS-like density for a 32-bit key.
pub fn circuits_for(scale: Scale) -> Vec<&'static str> {
    match scale {
        Scale::Quick => vec!["s880"],
        Scale::Full => vec!["s380", "s880", "s1660"],
    }
}

fn circuit(name: &str) -> Netlist {
    suite_circuit(name).unwrap_or_else(|| panic!("unknown suite circuit {name}"))
}

/// Locality radius used when AutoLock seeds its population on structured
/// (datapath) circuits: both wires of a seeded MUX pair lie within this many
/// undirected hops, so locked pairs land on realistic reconvergent nets
/// (see `AutoLockConfig::structured` and
/// `PairSelectionStrategy::Localized`).
pub const STRUCTURED_LOCK_RADIUS: usize = 4;

/// Thread count for an attack that runs directly under the driver-level
/// repeat fan-out: serial while the driver pool is fanning (the precedence
/// chain documented on `MuxLinkConfig::threads` — nesting an all-cores pool
/// per attack under [`parallel_map`] would only oversubscribe), but all
/// cores when `AUTOLOCK_THREADS=1` makes the driver serial, so that mode
/// still uses the machine via intra-attack parallelism. Thread count never
/// changes outcomes either way.
fn attack_threads() -> usize {
    if crate::experiment_threads() == 1 {
        0
    } else {
        1
    }
}

/// The independent evaluation attack: the same MuxLink pipeline, but freshly
/// retrained with seeds never used inside the GA loop.
fn evaluation_attack() -> MuxLinkAttack {
    MuxLinkAttack::new(MuxLinkConfig::default().with_threads(attack_threads()))
}

/// MuxLink accuracy of the evaluation attack on a locked netlist, averaged
/// over three retrained attacker instances fanned across the driver pool
/// (summed in fixed seed order, so the mean is reproducible).
fn evaluated_accuracy(locked: &LockedNetlist, seed: u64) -> f64 {
    let seeds: Vec<u64> = (0..3u64)
        .map(|s| seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(s + 1)))
        .collect();
    let accs = parallel_map(&seeds, |&s| {
        let mut rng = ChaCha8Rng::seed_from_u64(s);
        evaluation_attack().attack(locked, &mut rng).key_accuracy
    });
    accs.iter().sum::<f64>() / accs.len() as f64
}

/// AutoLock configuration used by the headline experiments at a given scale.
pub fn autolock_config(scale: Scale, key_len: usize, seed: u64) -> AutoLockConfig {
    match scale {
        Scale::Quick => AutoLockConfig {
            key_len,
            population_size: 20,
            generations: 60,
            attack_repeats: 4,
            seed,
            ..Default::default()
        },
        Scale::Full => AutoLockConfig {
            key_len,
            population_size: 24,
            generations: 100,
            attack_repeats: 4,
            seed,
            ..Default::default()
        },
    }
}

/// A reduced AutoLock configuration for the sweep experiments (E7, E9), where
/// many runs are compared against each other and absolute depth matters less.
pub fn autolock_config_small(key_len: usize, seed: u64) -> AutoLockConfig {
    AutoLockConfig {
        key_len,
        population_size: 12,
        generations: 20,
        attack_repeats: 2,
        seed,
        ..Default::default()
    }
}

/// E1 — the paper's headline claim ("First Insights"): AutoLock lowers MuxLink
/// key-prediction accuracy by tens of percentage points compared to D-MUX.
pub fn e1_autolock_vs_dmux(scale: Scale) -> ResultTable {
    let mut table = ResultTable::new(
        "E1",
        "MuxLink accuracy: D-MUX vs AutoLock (paper: ~25 pp drop)",
        &[
            "circuit",
            "key len",
            "D-MUX accuracy",
            "AutoLock accuracy (in-loop attacker)",
            "AutoLock accuracy (retrained attacker)",
            "drop, in-loop (pp)",
            "drop, retrained (pp)",
        ],
    );
    let key_lens: Vec<usize> = match scale {
        Scale::Quick => vec![32],
        Scale::Full => vec![32, 64],
    };
    // At full suite scale the headline comparison also covers a structured
    // (datapath) member: D-MUX stays the published random-insertion
    // baseline, while AutoLock seeds its population with locality-aware
    // pairs (`AutoLockConfig::structured`) so evolved MUX pairs sit on
    // realistic reconvergent nets.
    let mut targets: Vec<(String, bool)> = circuits_for(scale)
        .into_iter()
        .map(|n| (n.to_string(), false))
        .collect();
    if experiment_suite_scale(scale) == autolock_circuits::SuiteScale::Full {
        targets.push(("st1355".to_string(), true));
    }
    for (name, structured) in &targets {
        let original = circuit(name);
        for &k in &key_lens {
            // Average the baseline over three independent D-MUX lockings to
            // smooth out the variance of any single random locking.
            let mut dmux_acc = 0.0;
            for seed in 0..3u64 {
                let mut rng = ChaCha8Rng::seed_from_u64(0xE1 + seed);
                let dmux = DMuxLocking::default().lock(&original, k, &mut rng).unwrap();
                dmux_acc += evaluated_accuracy(&dmux, 0xEAA + seed);
            }
            let dmux_acc = dmux_acc / 3.0;

            let mut config = autolock_config(scale, k, 0xE1);
            if *structured {
                config = config.structured(STRUCTURED_LOCK_RADIUS);
            }
            let result = AutoLock::new(config).run(&original).unwrap();
            let in_loop_acc = result.final_attack_accuracy;
            let retrained_acc = evaluated_accuracy(&result.locked, 0xEAA);

            table.push_row(vec![
                name.to_string(),
                k.to_string(),
                pct(dmux_acc),
                pct(in_loop_acc),
                pct(retrained_acc),
                format!("{:.1}", (dmux_acc - in_loop_acc) * 100.0),
                format!("{:.1}", (dmux_acc - retrained_acc) * 100.0),
            ]);
        }
    }
    table
}

/// E2 — GA convergence: best/mean attack accuracy per generation.
pub fn e2_convergence(scale: Scale) -> ResultTable {
    let mut table = ResultTable::new(
        "E2",
        "AutoLock convergence (attack accuracy per generation)",
        &[
            "generation",
            "best accuracy",
            "mean accuracy",
            "worst accuracy",
        ],
    );
    let original = circuit(circuits_for(scale)[0]);
    let key_len = 32;
    let result = AutoLock::new(autolock_config(scale, key_len, 0xE2))
        .run(&original)
        .unwrap();
    for rec in &result.history {
        table.push_row(vec![
            rec.generation.to_string(),
            pct(rec.best_attack_accuracy),
            pct(rec.mean_attack_accuracy),
            pct(rec.worst_attack_accuracy),
        ]);
    }
    table
}

/// E3 — key-length sweep.
pub fn e3_key_sweep(scale: Scale) -> ResultTable {
    let mut table = ResultTable::new(
        "E3",
        "Key-length sweep: D-MUX vs AutoLock accuracy and runtime",
        &[
            "key len",
            "D-MUX accuracy",
            "AutoLock accuracy",
            "drop (pp)",
            "AutoLock runtime (s)",
        ],
    );
    let original = circuit(circuits_for(scale)[0]);
    let key_lens: Vec<usize> = match scale {
        Scale::Quick => vec![16, 32, 64],
        Scale::Full => vec![8, 16, 32, 64, 128],
    };
    for &k in &key_lens {
        let mut rng = ChaCha8Rng::seed_from_u64(0xE3);
        let dmux = DMuxLocking::default().lock(&original, k, &mut rng).unwrap();
        let dmux_acc = evaluated_accuracy(&dmux, 0xE3A);
        let result = AutoLock::new(autolock_config(scale, k, 0xE3))
            .run(&original)
            .unwrap();
        let auto_acc = evaluated_accuracy(&result.locked, 0xE3A);
        table.push_row(vec![
            k.to_string(),
            pct(dmux_acc),
            pct(auto_acc),
            format!("{:.1}", (dmux_acc - auto_acc) * 100.0),
            format!("{:.1}", result.runtime_ms as f64 / 1000.0),
        ]);
    }
    table
}

/// E4 — attack-vs-scheme matrix.
pub fn e4_attack_matrix(scale: Scale) -> ResultTable {
    let mut table = ResultTable::new(
        "E4",
        "Key-recovery accuracy: attacks (rows) vs schemes (columns)",
        &["attack", "XOR-RLL", "D-MUX", "AutoLock"],
    );
    let original = circuit(circuits_for(scale)[0]);
    let key_len = 32;
    let mut rng = ChaCha8Rng::seed_from_u64(0xE4);
    let xor = XorLocking::default()
        .lock(&original, key_len, &mut rng)
        .unwrap();
    let dmux = DMuxLocking::default()
        .lock(&original, key_len, &mut rng)
        .unwrap();
    let auto = AutoLock::new(autolock_config(scale, key_len, 0xE4))
        .run(&original)
        .unwrap()
        .locked;

    let attacks: Vec<Box<dyn KeyRecoveryAttack>> = vec![
        Box::new(RandomGuessAttack),
        Box::new(XorStructuralAttack),
        Box::new(MuxLinkAttack::new(MuxLinkConfig::locality_only())),
        Box::new(evaluation_attack()),
    ];
    for attack in &attacks {
        let mut row = vec![attack.name().to_string()];
        for locked in [&xor, &dmux, &auto] {
            let mut rng = ChaCha8Rng::seed_from_u64(0xE4A);
            row.push(pct(attack.attack(locked, &mut rng).key_accuracy));
        }
        table.push_row(row);
    }
    table
}

/// E5 — oracle-guided SAT attack across schemes and key lengths.
pub fn e5_sat_attack(scale: Scale) -> ResultTable {
    let mut table = ResultTable::new(
        "E5",
        "SAT attack: oracle queries (DIPs) and runtime per scheme",
        &[
            "circuit",
            "scheme",
            "key len",
            "success",
            "DIP iterations",
            "runtime (ms)",
        ],
    );
    let (circuits, key_lens): (Vec<&str>, Vec<usize>) = match scale {
        Scale::Quick => (vec!["c17", "s160"], vec![4, 8]),
        Scale::Full => (vec!["c17", "s160", "s380"], vec![4, 8, 16]),
    };
    let schemes: Vec<Box<dyn LockingScheme>> = vec![
        Box::new(XorLocking::default()),
        Box::new(DMuxLocking::default()),
    ];
    for name in &circuits {
        let original = circuit(name);
        for scheme in &schemes {
            for &k in &key_lens {
                let mut rng = ChaCha8Rng::seed_from_u64(0xE5);
                let Ok(locked) = scheme.lock(&original, k, &mut rng) else {
                    continue; // key longer than the circuit supports (e.g. c17)
                };
                let outcome = SatAttack::new(SatAttackConfig {
                    max_iterations: 500,
                    timeout_ms: 30_000,
                    ..SatAttackConfig::default()
                })
                .attack(&locked, &original);
                table.push_row(vec![
                    name.to_string(),
                    scheme.name().to_string(),
                    k.to_string(),
                    outcome.success.to_string(),
                    outcome.iterations.to_string(),
                    outcome.runtime_ms.to_string(),
                ]);
            }
        }
        // AutoLock netlists are MUX-locked too; include one row per circuit.
        let k = key_lens[0].clamp(8, 16);
        if let Ok(result) = AutoLock::new(autolock_config(scale, k, 0xE5)).run(&original) {
            let outcome = SatAttack::new(SatAttackConfig {
                max_iterations: 500,
                timeout_ms: 30_000,
                ..SatAttackConfig::default()
            })
            .attack(&result.locked, &original);
            table.push_row(vec![
                name.to_string(),
                "autolock".to_string(),
                k.to_string(),
                outcome.success.to_string(),
                outcome.iterations.to_string(),
                outcome.runtime_ms.to_string(),
            ]);
        }
    }
    table
}

/// E6 — structural overhead (area / delay / switching proxies).
pub fn e6_overhead(scale: Scale) -> ResultTable {
    let mut table = ResultTable::new(
        "E6",
        "Overhead of locking: area, depth and switching-activity proxies",
        &[
            "circuit",
            "scheme",
            "key len",
            "area overhead",
            "depth overhead",
            "power overhead",
        ],
    );
    let key_lens: Vec<usize> = match scale {
        Scale::Quick => vec![16, 32],
        Scale::Full => vec![16, 32, 64],
    };
    for name in circuits_for(scale) {
        let original = circuit(name);
        for &k in &key_lens {
            let mut rng = ChaCha8Rng::seed_from_u64(0xE6);
            let entries: Vec<(String, LockedNetlist)> = vec![
                (
                    "xor-rll".into(),
                    XorLocking::default().lock(&original, k, &mut rng).unwrap(),
                ),
                (
                    "d-mux".into(),
                    DMuxLocking::default().lock(&original, k, &mut rng).unwrap(),
                ),
                (
                    "autolock".into(),
                    AutoLock::new(autolock_config(Scale::Quick, k, 0xE6))
                        .run(&original)
                        .unwrap()
                        .locked,
                ),
            ];
            for (scheme, locked) in &entries {
                let mut rng = ChaCha8Rng::seed_from_u64(0xE6A);
                let report = overhead_report(&original, locked, 8, &mut rng).unwrap();
                table.push_row(vec![
                    name.to_string(),
                    scheme.clone(),
                    k.to_string(),
                    pct(report.area_overhead_pct() / 100.0),
                    pct(report.delay_overhead_pct() / 100.0),
                    pct(report.power_overhead_pct() / 100.0),
                ]);
            }
        }
    }
    table
}

/// E7 — evolutionary-operator ablation (research-plan item on operator design).
pub fn e7_operator_ablation(scale: Scale) -> ResultTable {
    let mut table = ResultTable::new(
        "E7",
        "Operator ablation: final MuxLink accuracy per operator combination",
        &[
            "selection",
            "crossover",
            "mutation",
            "final accuracy",
            "best generation",
        ],
    );
    let original = circuit(circuits_for(scale)[0]);
    let key_len = 24;
    let selections: Vec<SelectionMethod> = match scale {
        Scale::Quick => vec![SelectionMethod::Tournament { size: 3 }],
        Scale::Full => vec![
            SelectionMethod::Tournament { size: 3 },
            SelectionMethod::Roulette,
            SelectionMethod::Rank,
        ],
    };
    let crossovers = [CrossoverKind::OnePoint, CrossoverKind::Uniform];
    let mutations = [
        MutationKind::KeyFlip,
        MutationKind::Relocate,
        MutationKind::Composite,
    ];
    for sel in &selections {
        for &cx in &crossovers {
            for &mu in &mutations {
                let mut cfg = autolock_config_small(key_len, 0xE7);
                cfg.selection = *sel;
                cfg.crossover_kind = cx;
                cfg.mutation_kind = mu;
                let result = AutoLock::new(cfg).run(&original).unwrap();
                table.push_row(vec![
                    sel.name().to_string(),
                    format!("{cx:?}"),
                    format!("{mu:?}"),
                    pct(result.final_attack_accuracy),
                    result.best_generation.to_string(),
                ]);
            }
        }
    }
    table
}

/// E8 — multi-objective optimization (research-plan item): Pareto front of
/// MuxLink accuracy vs area overhead.
pub fn e8_multi_objective(scale: Scale) -> ResultTable {
    let mut table = ResultTable::new(
        "E8",
        "NSGA-II Pareto front: MuxLink accuracy vs depth (delay) overhead",
        &["point", "MuxLink accuracy", "depth overhead", "key len"],
    );
    let original = Arc::new(circuit(circuits_for(scale)[0]));
    let key_len = 24;
    let (pop, gens) = match scale {
        Scale::Quick => (12, 10),
        Scale::Full => (20, 25),
    };
    let mut rng = ChaCha8Rng::seed_from_u64(0xE8);
    let initial: Vec<autolock::LockingGenotype> = (0..pop)
        .map(|_| autolock::random_genotype(&original, key_len, &mut rng).unwrap())
        .collect();
    // NSGA-II evaluates the population in parallel, so the in-loop attack
    // runs serially (the thread-knob precedence rule).
    let fitness = MultiObjectiveLockingFitness::new(
        original.clone(),
        MuxLinkConfig::fast().with_threads(1),
        SatAttackConfig {
            max_iterations: 100,
            timeout_ms: 10_000,
            ..SatAttackConfig::default()
        },
        vec![ObjectiveKind::MuxLinkAccuracy, ObjectiveKind::DepthOverhead],
        0xE8,
    );
    let crossover = autolock::operators::LocusCrossover::new(
        original.clone(),
        key_len,
        CrossoverKind::OnePoint,
    );
    let mutation =
        autolock::operators::LocusMutation::new(original.clone(), key_len, MutationKind::Composite);
    let result = Nsga2::new(Nsga2Config {
        generations: gens,
        parallel: true,
        ..Default::default()
    })
    .run(initial, &fitness, &crossover, &mutation, &mut rng);
    for (i, point) in result.front.iter().enumerate() {
        table.push_row(vec![
            i.to_string(),
            pct(point.objectives[0]),
            pct(point.objectives[1]),
            point.genotype.len().to_string(),
        ]);
    }
    table
}

/// E9 — GA hyper-parameter sensitivity: population size × mutation rate.
pub fn e9_sensitivity(scale: Scale) -> ResultTable {
    let mut table = ResultTable::new(
        "E9",
        "Hyper-parameter sensitivity: final accuracy per (population, mutation rate)",
        &[
            "population",
            "mutation rate",
            "final accuracy",
            "evaluations",
        ],
    );
    let original = circuit(circuits_for(scale)[0]);
    let key_len = 24;
    let pops: Vec<usize> = match scale {
        Scale::Quick => vec![6, 12],
        Scale::Full => vec![8, 16, 32],
    };
    let rates = [0.2, 0.6];
    for &pop in &pops {
        for &rate in &rates {
            let mut cfg = autolock_config_small(key_len, 0xE9);
            cfg.population_size = pop;
            cfg.mutation_rate = rate;
            let result = AutoLock::new(cfg).run(&original).unwrap();
            table.push_row(vec![
                pop.to_string(),
                format!("{rate:.1}"),
                pct(result.final_attack_accuracy),
                result.fitness_evaluations.to_string(),
            ]);
        }
    }
    table
}

/// E10 — MuxLink backend comparison: the seed's feature+MLP approximation vs
/// the faithful DGCNN (`autolock_gnn`) on the same locked circuits.
///
/// For every circuit, both backends attack the same D-MUX-locked netlist with
/// identical seeds; accuracy is averaged over three attacker seeds. The DGCNN
/// is the stronger, paper-faithful adversary; this table quantifies the gap
/// the `gnn` crate closes.
pub fn e10_backend_comparison(scale: Scale) -> ResultTable {
    use autolock_circuits::synth_circuit;
    use std::time::Instant;

    let mut table = ResultTable::new(
        "E10",
        "MuxLink backends: enclosing-subgraph MLP vs DGCNN (key accuracy, mean of 3 seeds)",
        &["circuit", "backend", "key accuracy", "runtime ms"],
    );
    let key_len = match scale {
        Scale::Quick => 16,
        Scale::Full => 32,
    };
    let mut targets: Vec<(String, Netlist)> = vec![(
        "synth600".to_string(),
        synth_circuit("synth600", 24, 10, 600, 0xE10),
    )];
    for name in circuits_for(scale) {
        targets.push((name.to_string(), circuit(name)));
    }
    // At full suite scale the backend comparison also covers a structured
    // (datapath-shaped) member — the regime the DGCNN was built for.
    if experiment_suite_scale(scale) == autolock_circuits::SuiteScale::Full {
        targets.push(("st2670".to_string(), circuit("st2670")));
    }
    for (name, original) in &targets {
        let mut rng = ChaCha8Rng::seed_from_u64(0xE10);
        let locked = DMuxLocking::default()
            .lock(original, key_len, &mut rng)
            .unwrap();
        for (backend, config) in [
            ("mlp", MuxLinkConfig::default()),
            ("dgcnn", MuxLinkConfig::gnn()),
            // DGCNN with the paper's percentile rule for SortPooling k
            // instead of the fixed k = 10.
            (
                "dgcnn-adaptive-k",
                MuxLinkConfig::gnn().with_adaptive_k(0.6),
            ),
        ] {
            // The three retrains fan across the driver pool; each attack
            // runs serially underneath (`attack_threads`, the thread-knob
            // precedence rule), and accuracies reduce in fixed seed order.
            // Runtime is wall clock per attack, timed inside the fan-out:
            // with enough idle cores it matches the serial per-attack cost,
            // but when workers oversubscribe the machine it includes
            // time-slicing — run with AUTOLOCK_THREADS=1 for the cleanest
            // runtime column.
            let attack = MuxLinkAttack::new(config.with_threads(attack_threads()));
            let seeds: Vec<u64> = (0..3u64).map(|s| 0xE10A + s).collect();
            let runs = parallel_map(&seeds, |&s| {
                let mut rng = ChaCha8Rng::seed_from_u64(s);
                let start = Instant::now();
                let accuracy = attack.attack(&locked, &mut rng).key_accuracy;
                (accuracy, start.elapsed().as_millis())
            });
            table.push_row(vec![
                name.clone(),
                backend.to_string(),
                pct(runs.iter().map(|r| r.0).sum::<f64>() / 3.0),
                format!("{}", runs.iter().map(|r| r.1).sum::<u128>() / 3),
            ]);
        }
    }
    table
}

/// E11 — GNN-targeted evolution: AutoLock evolves a locking **against the
/// DGCNN adversary itself** (batch-parallel training, adaptive percentile-k
/// SortPooling), closing the loop that E10 only measured on fixed lockings.
///
/// The in-loop fitness oracle is `MuxLinkConfig::gnn_fast()` with adaptive
/// `k`; the table reports the GNN's accuracy on the plain D-MUX baseline
/// (the initial population) vs the evolved locking, plus the evolution cost.
pub fn e11_gnn_adversary_evolution(scale: Scale) -> ResultTable {
    use autolock_circuits::synth_circuit;

    let mut table = ResultTable::new(
        "E11",
        "AutoLock vs the DGCNN adversary (in-loop GNN fitness, adaptive sortpool-k)",
        &[
            "circuit",
            "key len",
            "D-MUX accuracy (GNN)",
            "evolved accuracy (GNN)",
            "drop (pp)",
            "generations",
            "fitness evals",
            "runtime ms",
        ],
    );
    // The GNN fitness oracle is ~an order of magnitude costlier than the MLP
    // one, so E11 runs smaller populations than the E1-series.
    let (mut targets, key_len, population_size, generations): (Vec<(String, Netlist)>, _, _, _) =
        match scale {
            Scale::Quick => (
                vec![(
                    "synth300".to_string(),
                    synth_circuit("synth300", 16, 8, 300, 0xE11),
                )],
                12,
                6,
                3,
            ),
            Scale::Full => (
                circuits_for(scale)
                    .into_iter()
                    .map(|name| (name.to_string(), circuit(name)))
                    .collect(),
                24,
                10,
                12,
            ),
        };
    // At full suite scale, evolve against the GNN on a structured member
    // too (the smallest one — the GA × GNN loop dominates the runtime).
    if experiment_suite_scale(scale) == autolock_circuits::SuiteScale::Full {
        targets.push(("st1355".to_string(), circuit("st1355")));
    }
    // Per-circuit runs are independent, so they fan across the driver pool
    // (rows collected in fixed target order). Exactly one level of the
    // stack runs parallel (the precedence rule on `MuxLinkConfig::threads`):
    // when the circuits actually fan, each AutoLock run evaluates its GA
    // population serially; when the driver pool is inactive (one target, or
    // AUTOLOCK_THREADS=1), the GA keeps its all-cores population pool. The
    // in-loop attack always trains serially — the GA level above it is the
    // parallel one either way. None of this changes outcomes (the
    // determinism contract); it only avoids nested-pool oversubscription.
    let fan_circuits = experiment_threads() != 1 && targets.len() > 1;
    let rows = parallel_map(&targets, |(name, original)| {
        let mut config = AutoLockConfig {
            key_len,
            population_size,
            generations,
            attack: MuxLinkConfig::gnn_fast()
                .with_adaptive_k(0.6)
                .with_threads(1),
            attack_repeats: 1,
            seed: 0xE11,
            parallel: !fan_circuits,
            ..Default::default()
        };
        // Structured members evolve from locality-aware seed lockings;
        // random synthetics keep the paper's uniform insertion.
        if name.starts_with("st") || name.starts_with("xl") {
            config = config.structured(STRUCTURED_LOCK_RADIUS);
        }
        let result = AutoLock::new(config).run(original).expect("E11 run failed");
        vec![
            name.clone(),
            key_len.to_string(),
            pct(result.baseline_attack_accuracy),
            pct(result.final_attack_accuracy),
            format!("{:.1}", result.accuracy_drop_pp()),
            result.history.len().saturating_sub(1).to_string(),
            result.fitness_evaluations.to_string(),
            result.runtime_ms.to_string(),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    table
}

/// E12 — the paper's headline regime at last: MuxLink key accuracy as a
/// function of **circuit size × locking density** on the structured
/// (ISCAS-shaped) suite tier.
///
/// For every structured member and density, a D-MUX locking with
/// `key_len = density × gates` is attacked by the retrained MLP-backend
/// MuxLink (the evaluation attack, never trained in any GA loop). One
/// attack instance is shared across the retrained repeats of a cell, so the
/// LRU subgraph cache ([`MuxLinkConfig::subgraph_cache`]) serves repeated
/// candidate neighbourhoods — the table reports the hit rate alongside the
/// accuracy. Cells fan across the driver pool (`AUTOLOCK_THREADS`), rows
/// are emitted in fixed (member, density) order.
///
/// Row format (documented in `crates/bench/README.md`): `circuit`, `gates`,
/// `density` (fraction of gates carrying a key bit), `key len`, `key
/// accuracy` (mean over the repeats), `mean runtime ms` (per attack, wall
/// clock inside the fan-out), `cache hit rate` (hits / lookups across the
/// cell's repeats).
pub fn e12_size_density_sweep(scale: Scale) -> ResultTable {
    use std::time::Instant;

    let mut table = ResultTable::new(
        "E12",
        "MuxLink accuracy vs circuit size × locking density (structured suite)",
        &[
            "circuit",
            "gates",
            "density",
            "key len",
            "key accuracy",
            "mean runtime ms",
            "cache hit rate",
        ],
    );
    let members = autolock_circuits::structured_entries(experiment_suite_scale(scale));
    // Two retrained repeats even at quick scale: the second repeat scores
    // the identical candidate set, so the subgraph cache column reflects
    // real reuse.
    let (densities, repeats): (Vec<f64>, u64) = match scale {
        Scale::Quick => (vec![0.02, 0.05], 2),
        Scale::Full => (vec![0.01, 0.02, 0.05], 3),
    };
    let cells: Vec<(String, usize, f64)> = members
        .iter()
        .flat_map(|m| densities.iter().map(|&d| (m.name.clone(), m.gates, d)))
        .collect();
    let rows = parallel_map(&cells, |(name, gates, density)| {
        let original = circuit(name);
        let key_len = ((*gates as f64 * density).round() as usize).max(8);
        let mut rng = ChaCha8Rng::seed_from_u64(0xE12);
        let locked = DMuxLocking::default()
            .lock(&original, key_len, &mut rng)
            .expect("structured members have enough lockable wires");
        // One shared instance per cell: repeats reuse the subgraph cache.
        let attack = MuxLinkAttack::new(MuxLinkConfig::fast().with_threads(attack_threads()));
        let mut accuracy = 0.0;
        let mut runtime_ms = 0u128;
        for seed in 0..repeats {
            let mut rng = ChaCha8Rng::seed_from_u64(0xE12A + seed);
            let start = Instant::now();
            accuracy += attack.attack(&locked, &mut rng).key_accuracy;
            runtime_ms += start.elapsed().as_millis();
        }
        let stats = attack.cache_stats();
        let lookups = stats.hits + stats.misses;
        vec![
            name.clone(),
            gates.to_string(),
            format!("{density:.2}"),
            key_len.to_string(),
            pct(accuracy / repeats as f64),
            format!("{}", runtime_ms / repeats as u128),
            pct(if lookups == 0 {
                0.0
            } else {
                stats.hits as f64 / lookups as f64
            }),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    table
}

/// E13 — the *DGCNN* backend on the structured tier: key accuracy vs
/// circuit size, the sweep the streamed training pipeline exists for.
///
/// E12 already sweeps size × density with the MLP backend; E13 runs the
/// paper-faithful DGCNN (`MuxLinkConfig::gnn_fast`, streamed training
/// through the subgraph cache) over the structured members — up to `st7552`
/// at quick scale, plus `xl11k` when the suite tier is Full. Each cell
/// D-MUX-locks the member at ~1% density and reports the GNN's key
/// accuracy, per-attack wall clock, subgraph-cache hit rate, and the
/// process's **peak RSS** so the streamed pipeline's memory behaviour is a
/// committed number rather than a claim (`peak RSS MB` is process-wide and
/// monotone across rows; the last row records the run's peak).
///
/// Row format (documented in `crates/bench/README.md`): `circuit`, `gates`,
/// `key len`, `key accuracy` (mean over the scale's repeats), `mean runtime
/// ms`, `cache hit rate`, `peak RSS MB`.
pub fn e13_gnn_structured_sweep(scale: Scale) -> ResultTable {
    use std::time::Instant;

    let mut table = ResultTable::new(
        "E13",
        "DGCNN-backend MuxLink accuracy vs circuit size (structured suite, streamed training)",
        &[
            "circuit",
            "gates",
            "key len",
            "key accuracy",
            "mean runtime ms",
            "cache hit rate",
            "peak RSS MB",
        ],
    );
    let members = autolock_circuits::structured_entries(experiment_suite_scale(scale));
    // Quick scale spans the tier's size range with three members (the GNN
    // attack is ~an order of magnitude costlier than the MLP's, and the
    // largest quick member is the acceptance gate) — plus `xl11k` whenever
    // the *suite* tier is Full (a dispatch-triggered Full sweep adds the xl
    // member without also paying Full experiment depth). Full experiment
    // scale runs everything the suite tier offers, twice.
    let (names, repeats): (Vec<String>, u64) = match scale {
        Scale::Quick => (
            ["st1355", "st3540", "st7552", "xl11k"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            1,
        ),
        Scale::Full => (members.iter().map(|m| m.name.clone()).collect(), 2),
    };
    let cells: Vec<(String, usize)> = members
        .iter()
        .filter(|m| names.contains(&m.name))
        .map(|m| (m.name.clone(), m.gates))
        .collect();
    // Cells run **serially**, unlike E12: the peak-RSS column only means
    // "the largest footprint any cell needed so far" if no other cell is
    // training concurrently when a row samples VmHWM. The machine is still
    // used — each attack parallelizes internally (`AUTOLOCK_THREADS`
    // reaches `MuxLinkConfig::threads` directly here; `0` = all cores).
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|(name, gates)| {
            let original = circuit(name);
            let key_len = ((*gates as f64 * 0.01).round() as usize).max(8);
            let mut rng = ChaCha8Rng::seed_from_u64(0xE13);
            let locked = DMuxLocking::default()
                .lock(&original, key_len, &mut rng)
                .expect("structured members have enough lockable wires");
            // One shared instance per cell: repeats (and streamed training
            // epochs) reuse the subgraph cache.
            let attack =
                MuxLinkAttack::new(MuxLinkConfig::gnn_fast().with_threads(experiment_threads()));
            let mut accuracy = 0.0;
            let mut runtime_ms = 0u128;
            for seed in 0..repeats {
                let mut rng = ChaCha8Rng::seed_from_u64(0xE13A + seed);
                let start = Instant::now();
                accuracy += attack.attack(&locked, &mut rng).key_accuracy;
                runtime_ms += start.elapsed().as_millis();
            }
            let stats = attack.cache_stats();
            let lookups = stats.hits + stats.misses;
            vec![
                name.clone(),
                gates.to_string(),
                key_len.to_string(),
                pct(accuracy / repeats as f64),
                format!("{}", runtime_ms / repeats as u128),
                pct(if lookups == 0 {
                    0.0
                } else {
                    stats.hits as f64 / lookups as f64
                }),
                peak_rss_mb().map_or_else(|| "n/a".to_string(), |mb| format!("{mb:.0}")),
            ]
        })
        .collect();
    for row in rows {
        table.push_row(row);
    }
    table
}

/// E14 — island-model evolution at the `xl` tier, driven end-to-end through
/// the resumable job engine.
///
/// One [`autolock_service::JobKind::EvolveIslands`] job locks the target
/// (quick: a small synthetic; full: `xl11k`, the suite's largest member)
/// and evolves it with ring-migrating islands, surrogate screening (the
/// cheap MLP attack ranks each generation; only the top half pay the
/// DGCNN-backend fitness) and the shared fingerprint-keyed fitness cache.
/// The engine checkpoints every generation under `{id}.iga.json` through
/// the unified `Resumable` path.
///
/// Quick mode **self-gates** the PR's acceptance criteria: the run must
/// apply at least one migration round and score a nonzero fitness-cache
/// hit rate, and a second engine seeded with a genuine mid-run checkpoint
/// must resume to a byte-identical `rows.jsonl` (the `resume check`
/// column). Full mode skips the duplicate run (`-`).
///
/// Row format (documented in `crates/bench/README.md`): `circuit`,
/// `key len`, `islands`, `generations`, `migrations`, `key accuracy`,
/// `cache hit rate`, `surrogate rejected`, `resume check`.
pub fn e14_island_evolution(scale: Scale) -> ResultTable {
    use autolock_circuits::synth_circuit;
    use autolock_evo::Resumable;
    use autolock_netlist::write_bench;
    use autolock_service::{EngineConfig, IslandEvolveJob, JobEngine, JobKind, JobSpec, JobStatus};

    let mut table = ResultTable::new(
        "E14",
        "Island-model evolution through the resumable job engine (surrogate-screened DGCNN fitness)",
        &[
            "circuit",
            "key len",
            "islands",
            "generations",
            "migrations",
            "key accuracy",
            "cache hit rate",
            "surrogate rejected",
            "resume check",
        ],
    );
    let (name, original, key_len, population_size, generations, islands, interval, migrants) =
        match scale {
            Scale::Quick => (
                "synth240",
                synth_circuit("synth240", 12, 6, 240, 0xE14),
                6usize,
                6usize,
                2usize,
                2usize,
                1usize,
                1usize,
            ),
            Scale::Full => ("xl11k", circuit("xl11k"), 32, 12, 4, 4, 2, 2),
        };
    let spec = JobSpec {
        id: format!("{name}.evolve"),
        circuit: name.to_string(),
        source: write_bench(&original),
        seed: 0xE14,
        sequential: Default::default(),
        kind: JobKind::EvolveIslands {
            key_len,
            population_size,
            generations,
            islands,
            migration_interval: interval,
            migrants,
            surrogate: true,
        },
    };

    // Counter deltas around the engine run; reads are non-destructive, so
    // the ObsRun manifest still drains the totals at process exit.
    let read = |name: &'static str| autolock_obs::counter(name).value();
    let before = (
        read("autolock.fitness_cache.hits"),
        read("autolock.fitness_cache.misses"),
        read("evo.migrations"),
        read("evo.surrogate.rejected"),
        read("service.jobs_completed"),
    );
    let run_dir = crate::results_dir().join("e14-service");
    let engine = JobEngine::new(EngineConfig::rooted(&run_dir, experiment_threads()))
        .expect("E14 engine opens");
    let rows = engine
        .run(std::slice::from_ref(&spec))
        .expect("E14 batch runs");
    let row = rows.first().expect("one row per job");
    assert_eq!(row.status, JobStatus::Ok, "E14 job failed: {:?}", row.error);
    let hits = read("autolock.fitness_cache.hits") - before.0;
    let misses = read("autolock.fitness_cache.misses") - before.1;
    let migrations = read("evo.migrations") - before.2;
    let rejected = read("evo.surrogate.rejected") - before.3;
    let completed = read("service.jobs_completed") > before.4;
    // The acceptance gates only apply when the job actually evolved in this
    // process — a re-run against an existing results dir resumes the
    // finished row and moves no counters.
    if scale == Scale::Quick && completed {
        assert!(migrations >= 1, "quick E14 must apply a migration round");
        assert!(hits > 0, "quick E14 must score fitness-cache hits");
    }

    // Kill/resume gate: seed a second engine with a genuine generation-1
    // checkpoint (built through the same `Resumable` bundle the engine
    // uses) and require a byte-identical row stream.
    let resume_check = if scale == Scale::Quick {
        let resume_dir = crate::results_dir().join("e14-service-resume");
        let _ = std::fs::remove_dir_all(&resume_dir);
        let engine_b = JobEngine::new(EngineConfig::rooted(&resume_dir, experiment_threads()))
            .expect("E14 resume engine opens");
        let bundle = IslandEvolveJob::from_spec(&spec, 1).expect("E14 spec bundles");
        let job = bundle.resumable();
        let mut state = job.init_state();
        assert!(
            job.step(&mut state),
            "quick E14 has more than one generation"
        );
        let ckpt = serde_json::to_string(&job.checkpoint(&state)).expect("checkpoint serializes");
        engine_b
            .store()
            .write(
                &JobEngine::island_checkpoint_name(&spec.id),
                ckpt.as_bytes(),
            )
            .expect("checkpoint seeds");
        let resumes_before = read("service.evolve_resumes");
        engine_b
            .run(std::slice::from_ref(&spec))
            .expect("E14 resumed batch runs");
        assert!(
            read("service.evolve_resumes") > resumes_before,
            "the resumed engine must pick up the seeded checkpoint"
        );
        let reference = std::fs::read(run_dir.join("rows.jsonl")).expect("reference rows");
        let resumed = std::fs::read(resume_dir.join("rows.jsonl")).expect("resumed rows");
        assert_eq!(
            reference, resumed,
            "resumed E14 row stream must be byte-identical"
        );
        "identical"
    } else {
        "-"
    };

    let lookups = hits + misses;
    table.push_row(vec![
        name.to_string(),
        key_len.to_string(),
        islands.to_string(),
        row.iterations.to_string(),
        migrations.to_string(),
        row.key_accuracy.map_or_else(|| "n/a".into(), pct),
        pct(if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        }),
        rejected.to_string(),
        resume_check.to_string(),
    ]);
    table
}

/// E15 — sequential-circuit ingestion through the unified front door.
///
/// Writes a mixed-format directory — a deterministic **sequential** ASCII
/// AIGER circuit ([`autolock_circuits::synth_sequential`] serialized with
/// [`autolock_netlist::ingest::write_aag_seq`]) next to a combinational
/// `.bench` control — then scans it with
/// [`autolock_service::jobs_from_dir`] and runs the SAT + MuxLink attacks
/// through the job engine. The sequential source fans out into its two
/// attack targets: the register **cut** (`{stem}.cut`) and the 2-frame
/// **unrolling** (`{stem}.u2`), extending the E12/E13 scenario tables to
/// registered circuits.
///
/// Quick mode **self-gates** the PR's acceptance criteria: both sequential
/// variants must produce rows, the SAT attack must reach a provably
/// correct key (nonzero key recovery) on at least one variant, and a
/// second engine run in a fresh directory must produce a byte-identical
/// `rows.jsonl` (the determinism column). Full mode skips the duplicate
/// run (`-`).
///
/// Row format (documented in `crates/bench/README.md`): `job`, `format`,
/// `variant`, `attack`, `status`, `key len`, `success`, `key accuracy`,
/// `iterations`.
pub fn e15_sequential_ingestion(scale: Scale) -> ResultTable {
    use autolock_circuits::{synth_circuit, synth_sequential};
    use autolock_netlist::ingest::write_aag_seq;
    use autolock_netlist::write_bench;
    use autolock_service::{
        jobs_from_dir, DirJobConfig, DirJobKinds, EngineConfig, JobEngine, JobStatus, LockSpec,
    };

    let mut table = ResultTable::new(
        "E15",
        "Sequential-circuit ingestion: SAT + MuxLink on register-cut and unrolled AIGER variants",
        &[
            "job",
            "format",
            "variant",
            "attack",
            "status",
            "key len",
            "success",
            "key accuracy",
            "iterations",
            "determinism",
        ],
    );
    let (seq_name, seq, bench_name, bench_nl, key_len) = match scale {
        Scale::Quick => (
            "seq240",
            synth_sequential("seq240", 10, 4, 240, 0xE15),
            "comb160",
            synth_circuit("comb160", 10, 5, 160, 0x00E1_5002),
            8usize,
        ),
        Scale::Full => (
            "seq900",
            synth_sequential("seq900", 16, 8, 900, 0xE15),
            "comb540",
            synth_circuit("comb540", 16, 8, 540, 0x00E1_5002),
            16,
        ),
    };
    let circuits_dir = crate::results_dir().join("e15-circuits");
    std::fs::create_dir_all(&circuits_dir).expect("E15 circuits dir");
    std::fs::write(
        circuits_dir.join(format!("{seq_name}.aag")),
        write_aag_seq(&seq).expect("sequential demo serializes"),
    )
    .expect("E15 .aag writes");
    std::fs::write(
        circuits_dir.join(format!("{bench_name}.bench")),
        write_bench(&bench_nl),
    )
    .expect("E15 .bench writes");

    let config = DirJobConfig {
        lock: LockSpec::DMux { key_len },
        seed: 0xE15,
        timeout_ms: 600_000,
        max_propagations_per_solve: None,
        max_iterations: 2000,
        kinds: DirJobKinds {
            sat: true,
            muxlink: true,
            evolve: false,
        },
        evolve_population: 4,
        evolve_generations: 2,
        evolve_islands: 1,
        unroll_frames: 2,
    };
    let jobs = jobs_from_dir(&circuits_dir, &config).expect("E15 job scan");
    let run = |dir: &std::path::Path| {
        let engine = JobEngine::new(EngineConfig::rooted(dir, experiment_threads()))
            .expect("E15 engine opens");
        engine.run(&jobs).expect("E15 batch runs")
    };
    let run_dir = crate::results_dir().join("e15-service");
    let rows = run(&run_dir);

    let cut_base = format!("{seq_name}.cut");
    let unrolled_base = format!("{seq_name}.u2");
    let row_of = |id: &str| {
        rows.iter()
            .find(|r| r.job_id == id)
            .unwrap_or_else(|| panic!("E15 row {id} missing"))
    };
    let cut_sat = row_of(&cut_base);
    let unrolled_sat = row_of(&unrolled_base);
    assert_eq!(
        cut_sat.format, "aiger",
        "cut variant must record its format"
    );
    assert_eq!(row_of(bench_name).format, "bench");
    if scale == Scale::Quick {
        assert!(
            cut_sat.success || unrolled_sat.success,
            "E15 must provably recover the key on at least one sequential variant \
             (cut: {:?}, unrolled: {:?})",
            cut_sat.error,
            unrolled_sat.error
        );
    }

    // Determinism gate: a second engine in a fresh directory must produce a
    // byte-identical row stream (covers ingestion, job fan-out and the
    // attacks themselves).
    let determinism = if scale == Scale::Quick {
        let rerun_dir = crate::results_dir().join("e15-service-rerun");
        let _ = std::fs::remove_dir_all(&rerun_dir);
        run(&rerun_dir);
        let reference = std::fs::read(run_dir.join("rows.jsonl")).expect("reference rows");
        let rerun = std::fs::read(rerun_dir.join("rows.jsonl")).expect("rerun rows");
        assert_eq!(reference, rerun, "E15 reruns must be byte-identical");
        "identical"
    } else {
        "-"
    };

    for row in &rows {
        let variant = if row.job_id.contains(".cut") {
            "cut"
        } else if row.job_id.contains(".u2") {
            "unrolled(2)"
        } else {
            "-"
        };
        let status = match row.status {
            JobStatus::Ok => "ok",
            JobStatus::Timeout => "timeout",
            JobStatus::Error => "error",
        };
        table.push_row(vec![
            row.job_id.clone(),
            row.format.clone(),
            variant.to_string(),
            row.attack.clone(),
            status.to_string(),
            row.key_len.to_string(),
            row.success.to_string(),
            row.key_accuracy.map_or_else(|| "n/a".into(), pct),
            row.iterations.to_string(),
            determinism.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circuits_lists_are_non_empty_and_known() {
        for scale in [Scale::Quick, Scale::Full] {
            let list = circuits_for(scale);
            assert!(!list.is_empty());
            for name in list {
                assert!(suite_circuit(name).is_some(), "{name} missing from suite");
            }
        }
    }

    #[test]
    fn autolock_config_scales() {
        let quick = autolock_config(Scale::Quick, 16, 1);
        let full = autolock_config(Scale::Full, 16, 1);
        assert!(full.generations > quick.generations);
        assert!(full.population_size > quick.population_size);
        assert_eq!(quick.key_len, 16);
    }
}
