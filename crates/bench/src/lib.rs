//! Shared experiment harness for the AutoLock reproduction.
//!
//! Every experiment binary (`exp_e1` … `exp_e9`) uses the helpers in this
//! crate to build circuits, run schemes and attacks, and emit results both as
//! human-readable tables (stdout) and machine-readable JSON (under
//! `results/`). The mapping from experiment id to paper claim is documented in
//! `EXPERIMENTS.md`.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use serde::Serialize;
use std::fmt::Write as _;
use std::path::PathBuf;

pub mod demo;
pub mod experiments;
mod obsrun;
pub mod trajectory;

pub use obsrun::ObsRun;

/// A simple result table: named columns plus rows of cells, rendered as
/// GitHub-flavoured markdown and serialized to JSON.
#[derive(Debug, Clone, Serialize)]
pub struct ResultTable {
    /// Experiment identifier (e.g. `"E1"`).
    pub experiment: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates an empty table.
    pub fn new(experiment: impl Into<String>, title: impl Into<String>, columns: &[&str]) -> Self {
        ResultTable {
            experiment: experiment.into(),
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row/column mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.experiment, self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Prints the table to stdout and writes `<results_dir>/<experiment>.json`.
    /// Errors writing the file are reported to stderr but not fatal.
    pub fn emit(&self, results_dir: &std::path::Path) {
        println!("{}", self.to_markdown());
        if let Err(e) = std::fs::create_dir_all(results_dir) {
            eprintln!("warning: cannot create {}: {e}", results_dir.display());
            return;
        }
        let path = results_dir.join(format!("{}.json", self.experiment.to_lowercase()));
        match serde_json::to_string_pretty(self) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("warning: cannot write {}: {e}", path.display());
                } else {
                    println!("(wrote {})\n", path.display());
                }
            }
            Err(e) => eprintln!("warning: cannot serialize results: {e}"),
        }
    }
}

/// Default results directory: `./results` relative to the workspace root (or
/// the current directory when run elsewhere).
pub fn results_dir() -> PathBuf {
    std::env::var_os("AUTOLOCK_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Reads the scale of the experiments from the `AUTOLOCK_SCALE` environment
/// variable: `"quick"` (default, CI-sized) or `"full"` (paper-sized; slower).
pub fn experiment_scale() -> Scale {
    match std::env::var("AUTOLOCK_SCALE").ok().as_deref() {
        Some("full") => Scale::Full,
        _ => Scale::Quick,
    }
}

/// The benchmark-suite tier the experiment drivers draw circuits from
/// (E10/E11/E12 and the attack-suite tests honour this): the
/// `AUTOLOCK_SUITE_SCALE` environment variable when set (`quick`/`full`,
/// via [`autolock_circuits::SuiteScale::from_env`]), otherwise the tier
/// matching the experiment depth `scale`. CI exports nothing and gets the
/// Quick tier; a nightly or manual dispatch exports
/// `AUTOLOCK_SUITE_SCALE=full` to sweep the `xl` member and the structured
/// E10/E11 targets without touching code.
pub fn experiment_suite_scale(scale: Scale) -> autolock_circuits::SuiteScale {
    if std::env::var_os("AUTOLOCK_SUITE_SCALE").is_some() {
        return autolock_circuits::SuiteScale::from_env();
    }
    match scale {
        Scale::Quick => autolock_circuits::SuiteScale::Quick,
        Scale::Full => autolock_circuits::SuiteScale::Full,
    }
}

/// Worker count for the experiment drivers' own fan-outs (independent
/// attack repeats, per-circuit runs): the `AUTOLOCK_THREADS` environment
/// variable, `0`/unset = all available cores, `1` = serial.
///
/// This knob sits *above* the attack-level [`MuxLinkConfig::threads`]
/// (`autolock_attacks`) in the precedence chain documented there: drivers
/// that fan whole repeats across workers run each attack with
/// `threads = 1`, so the machine is never oversubscribed. Like every
/// thread knob in this workspace it only trades wall clock — results are
/// bit-for-bit identical for every value because [`parallel_map`] preserves
/// order and reductions stay serial.
///
/// [`MuxLinkConfig::threads`]: autolock_attacks::MuxLinkConfig
pub fn experiment_threads() -> usize {
    std::env::var("AUTOLOCK_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Order-preserving parallel map across [`experiment_threads`] workers:
/// `out[i]` answers `items[i]` no matter which thread computed it, so any
/// fixed-order reduction over the result is identical to the serial loop.
/// Serial when `AUTOLOCK_THREADS=1` or for singleton batches. (The shared
/// pooled-map pattern lives in `autolock_mlcore::parallel`.)
pub fn parallel_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    autolock_mlcore::parallel::pooled_map(experiment_threads(), items, f)
}

/// Peak resident-set size of this process in mebibytes — a re-export of
/// [`autolock_obs::mem::peak_rss_mb`], which replaced this crate's old
/// ad-hoc `VmHWM` parser. Returns `None` where procfs is unavailable
/// (non-Linux dev machines) — callers should print `n/a`.
///
/// The value is process-wide and monotone non-decreasing, so in a table
/// whose rows run in one process, each row's number is "the largest
/// footprint any cell needed *so far*" and the final row records the run's
/// peak. That is exactly what the memory-regression record needs: the E13
/// table turns the streamed-DGCNN memory claim into a committed number.
pub fn peak_rss_mb() -> Option<f64> {
    autolock_obs::mem::peak_rss_mb()
}

/// Experiment scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small circuits / few generations so the whole suite runs in minutes.
    Quick,
    /// Larger circuits / more generations (closer to the paper's setting).
    Full,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = ResultTable::new("E0", "smoke", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row/column mismatch")]
    fn wrong_row_length_panics() {
        let mut t = ResultTable::new("E0", "smoke", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.256), "25.6%");
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if let Some(mb) = peak_rss_mb() {
            assert!(mb > 0.0, "VmHWM should be positive, got {mb}");
        }
    }

    #[test]
    fn scale_defaults_to_quick() {
        std::env::remove_var("AUTOLOCK_SCALE");
        assert_eq!(experiment_scale(), Scale::Quick);
    }

    #[test]
    fn suite_scale_follows_experiment_scale_unless_overridden() {
        use autolock_circuits::SuiteScale;
        std::env::remove_var("AUTOLOCK_SUITE_SCALE");
        assert_eq!(experiment_suite_scale(Scale::Quick), SuiteScale::Quick);
        assert_eq!(experiment_suite_scale(Scale::Full), SuiteScale::Full);
        std::env::set_var("AUTOLOCK_SUITE_SCALE", "quick");
        assert_eq!(experiment_suite_scale(Scale::Full), SuiteScale::Quick);
        std::env::set_var("AUTOLOCK_SUITE_SCALE", "full");
        assert_eq!(experiment_suite_scale(Scale::Quick), SuiteScale::Full);
        std::env::remove_var("AUTOLOCK_SUITE_SCALE");
    }
}
