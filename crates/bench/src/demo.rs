//! The shared demo circuit set used by the service binaries (`serve_dir
//! --demo`, `chaos_smoke`) and the CI smoke scripts.

use autolock_circuits::{suite_circuit, synth_circuit, synth_sequential};
use autolock_netlist::ingest::write_aag_seq;
use autolock_netlist::write_bench;
use std::io;
use std::path::Path;

/// Populates `dir` with the demo trio: two quick synthetic circuits and the
/// structurally hard `st6288` (which times out under a propagation cap).
///
/// # Errors
///
/// Propagates directory-creation and file-write failures.
pub fn write_demo_circuits(dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let quick_a = synth_circuit("demo_a", 10, 4, 120, 101);
    let quick_b = synth_circuit("demo_b", 12, 4, 160, 102);
    let hard = suite_circuit("st6288").expect("st6288 is a suite member");
    std::fs::write(dir.join("demo_a.bench"), write_bench(&quick_a))?;
    std::fs::write(dir.join("demo_b.bench"), write_bench(&quick_b))?;
    std::fs::write(dir.join("st6288.bench"), write_bench(&hard))
}

/// Like [`write_demo_circuits`] but without `st6288` — the quick pair only,
/// for harnesses that run every kind of job (evolution on `st6288` would
/// dominate the runtime without testing anything extra).
///
/// # Errors
///
/// Propagates directory-creation and file-write failures.
pub fn write_quick_demo_circuits(dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let quick_a = synth_circuit("demo_a", 10, 4, 120, 101);
    let quick_b = synth_circuit("demo_b", 12, 4, 160, 102);
    std::fs::write(dir.join("demo_a.bench"), write_bench(&quick_a))?;
    std::fs::write(dir.join("demo_b.bench"), write_bench(&quick_b))
}

/// Populates `dir` with a **mixed-format** demo set: the quick `.bench`
/// pair plus a deterministic sequential ASCII AIGER circuit (`demo_seq.aag`,
/// 3 registers). Scanning the directory with
/// [`autolock_service::jobs_from_dir`] fans the sequential member into its
/// register-cut and unrolled job variants, which is what the ingestion
/// smoke leg in CI exercises.
///
/// # Errors
///
/// Propagates directory-creation and file-write failures.
pub fn write_mixed_demo_circuits(dir: &Path) -> io::Result<()> {
    write_quick_demo_circuits(dir)?;
    let seq = synth_sequential("demo_seq", 8, 3, 120, 103);
    let text = write_aag_seq(&seq).expect("demo sequential circuit serializes");
    std::fs::write(dir.join("demo_seq.aag"), text)
}
