//! The end-to-end AutoLock pipeline.

use crate::config::AutoLockConfig;
use crate::fitness::MuxLinkFitness;
use crate::genotype::LockingGenotype;
use crate::operators::{LocusCrossover, LocusMutation};
use crate::report::{AutoLockError, AutoLockResult, GenerationRecord};
use crate::Result;
use autolock_evo::{GaConfig, GeneticAlgorithm, IslandGa, SurrogateScreen};
use autolock_locking::{apply_loci, LockedNetlist};
use autolock_netlist::Netlist;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Instant;

/// The AutoLock engine: wires the genotype, the evolutionary operators, the
/// MuxLink fitness oracle and the GA together (Fig. 1 of the paper).
#[derive(Debug, Clone)]
pub struct AutoLock {
    config: AutoLockConfig,
}

impl AutoLock {
    /// Creates an engine with the given configuration.
    pub fn new(config: AutoLockConfig) -> Self {
        AutoLock { config }
    }

    /// The configuration.
    pub fn config(&self) -> &AutoLockConfig {
        &self.config
    }

    /// Runs the full pipeline on `original` and returns the evolved locked
    /// netlist together with the convergence record.
    ///
    /// # Errors
    ///
    /// * [`AutoLockError::InvalidConfig`] for inconsistent configurations,
    /// * [`AutoLockError::Lock`] if the netlist cannot host the requested key
    ///   length.
    pub fn run(&self, original: &Netlist) -> Result<AutoLockResult> {
        let start = Instant::now();
        // Top-level pipeline span; the GA's per-generation spans and the
        // in-loop attacks' stage spans nest under it in the trace.
        let _span = autolock_obs::span!("autolock.run");
        autolock_obs::counter("autolock.runs").incr();
        let cfg = &self.config;
        if cfg.population_size < 2 {
            return Err(AutoLockError::InvalidConfig {
                reason: "population size must be at least 2".into(),
            });
        }
        if cfg.key_len == 0 {
            return Err(AutoLockError::InvalidConfig {
                reason: "key length must be at least 1".into(),
            });
        }
        if cfg.elitism >= cfg.population_size {
            return Err(AutoLockError::InvalidConfig {
                reason: "elitism must be smaller than the population size".into(),
            });
        }
        let use_islands = cfg.islands.islands > 1;
        if use_islands && cfg.population_size < cfg.islands.islands * 2 {
            return Err(AutoLockError::InvalidConfig {
                reason: format!(
                    "island runs need at least 2 individuals per island ({} < {})",
                    cfg.population_size,
                    cfg.islands.islands * 2
                ),
            });
        }

        let original = Arc::new(original.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

        // Step 1 (Fig. 1): lock the original netlist N times with random keys
        // to obtain the initial population of encodings. `cfg.locking`
        // selects the insertion policy — uniformly random pairs (the
        // paper's setup) or locality-aware pairs for structured circuits.
        let mut population: Vec<LockingGenotype> = Vec::with_capacity(cfg.population_size);
        for _ in 0..cfg.population_size {
            population.push(cfg.locking.select_loci(&original, cfg.key_len, &mut rng)?);
        }

        // Step 2: fitness = 1 - MuxLink accuracy. When the GA itself fans
        // fitness evaluations across all cores, each in-loop attack must run
        // serially — the thread-knob precedence rule documented on
        // `MuxLinkConfig::threads` — or every worker would nest its own
        // all-core pools. Thread count never changes attack outcomes, so
        // this only affects wall clock.
        let attack_config = if cfg.parallel || use_islands {
            cfg.attack.clone().with_threads(1)
        } else {
            cfg.attack.clone()
        };
        let mut fitness = MuxLinkFitness::new(
            original.clone(),
            attack_config,
            cfg.seed,
            cfg.attack_repeats,
        );
        if let Some(t) = cfg.target_fitness {
            fitness = fitness.with_target(t);
        }
        // Surrogate screening (island path only): the cheap attack shares
        // the real fitness's cache, so a genotype the surrogate already
        // scored is still re-scored by the real fitness on its first
        // survival — different context keys keep the values apart.
        let surrogate = cfg.surrogate.as_ref().filter(|_| use_islands).map(|sc| {
            MuxLinkFitness::new(
                original.clone(),
                sc.clone().with_threads(1),
                cfg.seed,
                cfg.attack_repeats,
            )
            .with_cache(fitness.cache().clone())
        });

        // Step 3: evolutionary operators over the locus-list genotype.
        let crossover = LocusCrossover::new(original.clone(), cfg.key_len, cfg.crossover_kind);
        let mutation = LocusMutation::new(original.clone(), cfg.key_len, cfg.mutation_kind);

        let ga = GeneticAlgorithm::new(GaConfig {
            generations: cfg.generations,
            crossover_rate: cfg.crossover_rate,
            mutation_rate: cfg.mutation_rate,
            elitism: cfg.elitism,
            selection: cfg.selection,
            // Under islands, the island fan-out is the parallelism level.
            parallel: cfg.parallel && !use_islands,
            target_fitness: cfg.target_fitness,
            stagnation_limit: cfg.stagnation_limit,
        });
        let mut migrations = 0;
        let ga_result = if use_islands {
            let island_ga = IslandGa::new(ga, cfg.islands);
            let screen = surrogate.as_ref().map(|s| SurrogateScreen {
                surrogate: s,
                survivor_fraction: cfg.surrogate_survivor_fraction,
            });
            let mut state =
                island_ga.init_state(population, &fitness, screen.as_ref(), rng.clone());
            while island_ga.step(&mut state, &fitness, &crossover, &mutation, screen.as_ref()) {}
            migrations = state.migrations;
            island_ga.finish(state)
        } else {
            ga.run(population, &fitness, &crossover, &mutation, &mut rng)
        };

        // Step 4: decode the fittest genotype back into a locked netlist.
        let decoded = apply_loci(&original, &ga_result.best)?;
        let locked = LockedNetlist::new(
            decoded.netlist().clone(),
            decoded.key().clone(),
            decoded.provenance().to_vec(),
            "autolock",
            original.name(),
        )?;

        let history: Vec<GenerationRecord> = ga_result
            .history
            .iter()
            .map(|s| GenerationRecord {
                generation: s.generation,
                best_attack_accuracy: 1.0 - s.best,
                mean_attack_accuracy: 1.0 - s.mean,
                worst_attack_accuracy: 1.0 - s.worst,
            })
            .collect();
        let baseline_attack_accuracy = history
            .first()
            .map(|h| h.mean_attack_accuracy)
            .unwrap_or(1.0);

        Ok(AutoLockResult {
            locked,
            best_genotype: ga_result.best,
            baseline_attack_accuracy,
            final_attack_accuracy: 1.0 - ga_result.best_fitness,
            history,
            fitness_evaluations: fitness.evaluations(),
            best_generation: ga_result.best_generation,
            runtime_ms: start.elapsed().as_millis(),
            migrations,
            fitness_cache_hits: fitness.cache().hits(),
            fitness_cache_misses: fitness.cache().misses(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolock_circuits::synth_circuit;
    use rand::SeedableRng;

    fn small_circuit() -> Netlist {
        synth_circuit("engine", 10, 4, 120, 55)
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let nl = small_circuit();
        let mut cfg = AutoLockConfig::tiny();
        cfg.population_size = 1;
        assert!(matches!(
            AutoLock::new(cfg).run(&nl),
            Err(AutoLockError::InvalidConfig { .. })
        ));
        let mut cfg = AutoLockConfig::tiny();
        cfg.key_len = 0;
        assert!(matches!(
            AutoLock::new(cfg).run(&nl),
            Err(AutoLockError::InvalidConfig { .. })
        ));
        let mut cfg = AutoLockConfig::tiny();
        cfg.elitism = cfg.population_size;
        assert!(matches!(
            AutoLock::new(cfg).run(&nl),
            Err(AutoLockError::InvalidConfig { .. })
        ));
        let mut cfg = AutoLockConfig::tiny();
        cfg.key_len = 10_000;
        assert!(matches!(
            AutoLock::new(cfg).run(&nl),
            Err(AutoLockError::Lock(_))
        ));
    }

    #[test]
    fn run_produces_functional_locked_netlist_and_history() {
        let nl = small_circuit();
        let mut cfg = AutoLockConfig::tiny();
        cfg.generations = 3;
        cfg.population_size = 5;
        cfg.key_len = 6;
        cfg.parallel = false;
        let result = AutoLock::new(cfg).run(&nl).unwrap();

        assert_eq!(result.locked.key_len(), 6);
        assert_eq!(result.locked.scheme(), "autolock");
        assert_eq!(result.best_genotype.len(), 6);
        assert!(!result.history.is_empty());
        assert!(result.fitness_evaluations > 0);
        // Correct key must preserve functionality.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        assert!(result.locked.verify_functional(&nl, 8, &mut rng).unwrap());
        // The evolved locking is never worse than the baseline (elitism).
        assert!(result.final_attack_accuracy <= result.baseline_attack_accuracy + 1e-9);
        assert!(result.accuracy_drop_pp() >= -1e-9);
    }

    #[test]
    fn island_run_migrates_and_is_thread_count_invariant() {
        use autolock_evo::IslandConfig;
        let nl = small_circuit();
        let mut cfg = AutoLockConfig::tiny();
        cfg.generations = 2;
        cfg.population_size = 6;
        cfg.key_len = 4;
        cfg.parallel = false;
        cfg.islands = IslandConfig {
            islands: 2,
            migration_interval: 1,
            migrants: 1,
            threads: 1,
        };
        // Surrogate == real attack here: exact mode, so screening must not
        // change anything while still exercising the shared-cache path.
        cfg.surrogate = Some(cfg.attack.clone());
        let a = AutoLock::new(cfg.clone()).run(&nl).unwrap();
        cfg.islands.threads = 4;
        let b = AutoLock::new(cfg).run(&nl).unwrap();
        assert_eq!(a.best_genotype, b.best_genotype);
        assert_eq!(
            a.final_attack_accuracy.to_bits(),
            b.final_attack_accuracy.to_bits()
        );
        assert_eq!(a.migrations, 2, "interval 1 over 2 generations");
        assert!(
            a.fitness_cache_hits > 0,
            "surrogate pass must share the cache"
        );
        assert!(a.fitness_cache_misses > 0);
        assert!((0.0..=1.0).contains(&a.final_attack_accuracy));
    }

    #[test]
    fn island_run_rejects_undersized_populations() {
        use autolock_evo::IslandConfig;
        let nl = small_circuit();
        let mut cfg = AutoLockConfig::tiny();
        cfg.population_size = 5;
        cfg.islands = IslandConfig {
            islands: 3,
            ..IslandConfig::default()
        };
        assert!(matches!(
            AutoLock::new(cfg).run(&nl),
            Err(AutoLockError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn runs_are_reproducible() {
        let nl = small_circuit();
        let mut cfg = AutoLockConfig::tiny();
        cfg.generations = 2;
        cfg.population_size = 4;
        cfg.key_len = 4;
        cfg.parallel = false;
        let a = AutoLock::new(cfg.clone()).run(&nl).unwrap();
        let b = AutoLock::new(cfg).run(&nl).unwrap();
        assert_eq!(a.best_genotype, b.best_genotype);
        assert_eq!(a.final_attack_accuracy, b.final_attack_accuracy);
    }
}
