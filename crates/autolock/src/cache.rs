//! Shared, fingerprint-keyed fitness memoization.
//!
//! The per-[`crate::MuxLinkFitness`] `HashMap` memo generalized into a store
//! that can be shared across fitness instances — all the islands of an
//! island-model run, and a surrogate/real fitness pair — without ever mixing
//! incompatible results. Every entry is keyed by a **context fingerprint**
//! (netlist + normalized attack config + seed + repeats, built with the same
//! [`autolock_obs::manifest::fingerprint`] facet scheme as the service
//! `ModelRegistry`) *and* the genotype hash, so two fitness instances only
//! share hits when they would have computed bit-identical values.
//!
//! Because each evaluation derives its attack RNG purely from
//! `seed ^ genotype_hash ^ (rep << 32)` — never from evaluation order — a
//! cache hit returns exactly the value the miss path's RNG protocol would
//! have produced (pinned by `cache_hit_replays_the_miss_path_rng_protocol`).

use autolock_attacks::MuxLinkConfig;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A concurrent fitness memo shared by any number of fitness instances.
///
/// Hits and misses are counted both locally (for result reporting) and on
/// the global obs registry (`autolock.fitness_cache.hits` / `.misses`, the
/// counters the E14 manifest gate asserts).
#[derive(Debug, Default)]
pub struct FitnessCache {
    entries: Mutex<HashMap<(u64, u64), f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl FitnessCache {
    /// Creates an empty cache behind an [`Arc`], ready to be shared.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Derives the context key under which a fitness instance stores its
    /// results: a fingerprint of the original netlist, the attack
    /// configuration (with the thread count normalized out — threads change
    /// wall-clock, never values), the base seed and the repeat count.
    pub fn context_key(
        netlist_fingerprint: u64,
        attack_config: &MuxLinkConfig,
        seed: u64,
        repeats: usize,
    ) -> u64 {
        let mut normalized = attack_config.clone();
        normalized.threads = 0;
        let config_json =
            serde_json::to_string(&normalized).expect("MuxLinkConfig serialization cannot fail");
        let fp = autolock_obs::manifest::fingerprint(&[
            "locking-fitness",
            &format!("{netlist_fingerprint:016x}"),
            &config_json,
            &seed.to_string(),
            &repeats.to_string(),
        ]);
        fnv1a(fp.as_bytes())
    }

    /// Looks up a genotype's fitness under a context, counting the hit or
    /// miss.
    pub fn get(&self, context: u64, genotype_hash: u64) -> Option<f64> {
        let found = self.entries.lock().get(&(context, genotype_hash)).copied();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                autolock_obs::counter("autolock.fitness_cache.hits").incr();
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                autolock_obs::counter("autolock.fitness_cache.misses").incr();
                None
            }
        }
    }

    /// Stores a genotype's fitness under a context.
    pub fn insert(&self, context: u64, genotype_hash: u64, fitness: f64) {
        self.entries
            .lock()
            .insert((context, genotype_hash), fitness);
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that fell through to a real evaluation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct (context, genotype) entries stored.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// `true` if no entry has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

/// FNV-1a over a byte string — folds the hex fingerprint into the compact
/// `u64` key the hot-path `HashMap` uses.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses_are_counted_per_context() {
        let cache = FitnessCache::shared();
        assert!(cache.is_empty());
        assert_eq!(cache.get(1, 42), None);
        cache.insert(1, 42, 0.25);
        assert_eq!(cache.get(1, 42), Some(0.25));
        // A different context never sees the other context's entries.
        assert_eq!(cache.get(2, 42), None);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn context_key_separates_seeds_and_configs_but_not_threads() {
        let config = MuxLinkConfig::fast();
        let a = FitnessCache::context_key(7, &config, 1, 1);
        assert_eq!(a, FitnessCache::context_key(7, &config, 1, 1));
        assert_ne!(a, FitnessCache::context_key(8, &config, 1, 1));
        assert_ne!(a, FitnessCache::context_key(7, &config, 2, 1));
        assert_ne!(a, FitnessCache::context_key(7, &config, 1, 2));
        assert_ne!(
            a,
            FitnessCache::context_key(7, &MuxLinkConfig::gnn_fast(), 1, 1)
        );
        // Thread count is normalized out: it changes wall-clock, not values.
        let threaded = config.clone().with_threads(8);
        assert_eq!(a, FitnessCache::context_key(7, &threaded, 1, 1));
    }
}
