//! AutoLock: automatic design of MUX-based logic locking with evolutionary
//! computation.
//!
//! This crate is the reproduction of the paper's core contribution: a genetic
//! algorithm that refines a D-MUX-style locked netlist until the MuxLink
//! link-prediction attack can no longer recover the key.
//!
//! The pieces map one-to-one onto Fig. 1 of the paper:
//!
//! 1. **Input** — the original netlist (ON) and the desired key length `K`
//!    ([`AutoLockConfig::key_len`]).
//! 2. **Initial population** — the netlist is locked `N` times with random
//!    D-MUX keys; each locked netlist is encoded into the genotype, a list of
//!    loci `{f_i, f_j, g_i, g_j, k}` ([`LockingGenotype`]).
//! 3. **GA loop** — selection, crossover and mutation over the genotype
//!    (operators in [`operators`]), with fitness = `1 − MuxLink accuracy`
//!    ([`MuxLinkFitness`]): lower attack accuracy means higher fitness.
//! 4. **Output** — the locked netlist (LN) decoded from the fittest genotype
//!    ([`AutoLockResult::locked`]).
//!
//! ```no_run
//! use autolock::{AutoLock, AutoLockConfig};
//! use autolock_circuits::suite_circuit;
//!
//! let original = suite_circuit("s160").unwrap();
//! let config = AutoLockConfig {
//!     key_len: 16,
//!     population_size: 10,
//!     generations: 10,
//!     ..Default::default()
//! };
//! let result = AutoLock::new(config).run(&original).unwrap();
//! println!(
//!     "MuxLink accuracy: {:.2} (D-MUX baseline) -> {:.2} (AutoLock)",
//!     result.baseline_attack_accuracy, result.final_attack_accuracy
//! );
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod cache;
mod config;
mod engine;
mod fitness;
mod genotype;
pub mod operators;
mod report;

pub use cache::FitnessCache;
pub use config::AutoLockConfig;
pub use engine::AutoLock;
pub use fitness::{MultiObjectiveLockingFitness, MuxLinkFitness, ObjectiveKind};
pub use genotype::{genotype_hash, is_valid, random_genotype, repair_genotype, LockingGenotype};
pub use report::{AutoLockError, AutoLockResult, GenerationRecord};

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, AutoLockError>;
