//! The AutoLock genotype and its construction / repair helpers.
//!
//! The genotype is exactly the paper's encoding: a list of loci
//! `{f_i, f_j, g_i, g_j, k}`, one per key bit, where each locus uniquely
//! identifies a MUX-pair insertion location ([`autolock_locking::MuxPairLocus`]).
//! A genotype is *valid* for an original netlist when
//! [`autolock_locking::apply_loci`] accepts it; crossover and mutation can
//! produce invalid children (duplicate wires, combinational cycles), which
//! [`repair_genotype`] fixes by re-sampling offending loci.

use autolock_locking::mux::lockable_wires;
use autolock_locking::{apply_loci, DMuxLocking, MuxPairLocus};
use autolock_netlist::{GateId, Netlist};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};
use std::collections::HashSet;

/// The AutoLock genotype: one MUX-pair locus per key bit.
pub type LockingGenotype = Vec<MuxPairLocus>;

/// Generates a random valid genotype of `key_len` loci (one random D-MUX
/// locking of the original netlist, as used to initialize the population).
///
/// # Errors
///
/// Propagates [`autolock_locking::LockError`] when the netlist cannot host
/// `key_len` disjoint MUX pairs.
pub fn random_genotype(
    original: &Netlist,
    key_len: usize,
    rng: &mut dyn RngCore,
) -> autolock_locking::Result<LockingGenotype> {
    DMuxLocking::default().select_loci(original, key_len, rng)
}

/// A stable 64-bit structural hash of a genotype, used to derive per-genotype
/// RNG seeds and to cache fitness evaluations.
pub fn genotype_hash(genotype: &LockingGenotype) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for locus in genotype {
        mix(locus.f_i.0 as u64);
        mix(locus.g_i.0 as u64);
        mix(locus.f_j.0 as u64);
        mix(locus.g_j.0 as u64);
        mix(u64::from(locus.key_bit));
    }
    h
}

/// Checks whether a genotype can be applied to `original` without errors.
pub fn is_valid(original: &Netlist, genotype: &LockingGenotype) -> bool {
    apply_loci(original, genotype).is_ok()
}

/// Repairs a genotype so it becomes valid for `original`:
///
/// * loci that reuse an already-locked wire, fail validation or would create a
///   combinational cycle are replaced by freshly sampled valid loci,
/// * the result is truncated / padded to exactly `key_len` loci.
///
/// The repair is greedy and deterministic given the RNG state.
pub fn repair_genotype(
    original: &Netlist,
    genotype: &LockingGenotype,
    key_len: usize,
    rng: &mut dyn RngCore,
) -> LockingGenotype {
    let wires = lockable_wires(original);
    let fanouts = original.fanouts();

    // Incremental reachability with extra decoy edges, mirroring
    // `DMuxLocking::select_loci`.
    let reachable = |extra: &[(GateId, GateId)], from: GateId, target: GateId| -> bool {
        if from == target {
            return true;
        }
        let mut visited = vec![false; original.len()];
        let mut stack = vec![from];
        visited[from.index()] = true;
        while let Some(node) = stack.pop() {
            let direct = fanouts[node.index()].iter().copied();
            let added = extra
                .iter()
                .filter(|(src, _)| *src == node)
                .map(|(_, dst)| *dst);
            for next in direct.chain(added) {
                if next == target {
                    return true;
                }
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    stack.push(next);
                }
            }
        }
        false
    };
    let accepts = |locus: &MuxPairLocus,
                   used: &HashSet<(GateId, GateId)>,
                   extra: &[(GateId, GateId)]|
     -> bool {
        locus.validate(original).is_ok()
            && !locus.wires().iter().any(|w| used.contains(w))
            && !reachable(extra, locus.g_i, locus.f_j)
            && !reachable(extra, locus.g_j, locus.f_i)
    };

    let mut used: HashSet<(GateId, GateId)> = HashSet::new();
    let mut extra: Vec<(GateId, GateId)> = Vec::new();
    let mut repaired: LockingGenotype = Vec::with_capacity(key_len);
    let commit = |locus: MuxPairLocus,
                  used: &mut HashSet<(GateId, GateId)>,
                  extra: &mut Vec<(GateId, GateId)>,
                  repaired: &mut LockingGenotype| {
        for w in locus.wires() {
            used.insert(w);
        }
        extra.push((locus.f_j, locus.g_i));
        extra.push((locus.f_i, locus.g_j));
        repaired.push(locus);
    };
    let sample = |used: &HashSet<(GateId, GateId)>,
                  extra: &[(GateId, GateId)],
                  rng: &mut dyn RngCore|
     -> Option<MuxPairLocus> {
        for _ in 0..200 {
            let &(f_i, g_i) = wires.choose(rng)?;
            let &(f_j, g_j) = wires.choose(rng)?;
            if f_i == f_j || g_i == g_j {
                continue;
            }
            let locus = MuxPairLocus::new(f_i, g_i, f_j, g_j, rng.gen());
            if accepts(&locus, used, extra) {
                return Some(locus);
            }
        }
        None
    };

    // Keep as many original loci as possible, in order; replace broken ones.
    for locus in genotype.iter().take(key_len) {
        if accepts(locus, &used, &extra) {
            commit(*locus, &mut used, &mut extra, &mut repaired);
        } else if let Some(replacement) = sample(&used, &extra, rng) {
            commit(replacement, &mut used, &mut extra, &mut repaired);
        }
    }
    // Pad if short (e.g. the parent was shorter than key_len).
    while repaired.len() < key_len {
        match sample(&used, &extra, rng) {
            Some(locus) => commit(locus, &mut used, &mut extra, &mut repaired),
            None => break,
        }
    }
    repaired
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolock_circuits::synth_circuit;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn circuit() -> Netlist {
        synth_circuit("g", 10, 4, 150, 21)
    }

    #[test]
    fn random_genotype_is_valid() {
        let nl = circuit();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = random_genotype(&nl, 12, &mut rng).unwrap();
        assert_eq!(g.len(), 12);
        assert!(is_valid(&nl, &g));
    }

    #[test]
    fn hash_is_stable_and_sensitive() {
        let nl = circuit();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = random_genotype(&nl, 8, &mut rng).unwrap();
        assert_eq!(genotype_hash(&g), genotype_hash(&g.clone()));
        let mut flipped = g.clone();
        flipped[0].key_bit = !flipped[0].key_bit;
        assert_ne!(genotype_hash(&g), genotype_hash(&flipped));
        let mut reordered = g.clone();
        reordered.swap(0, 1);
        assert_ne!(genotype_hash(&g), genotype_hash(&reordered));
    }

    #[test]
    fn repair_fixes_duplicate_wires() {
        let nl = circuit();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = random_genotype(&nl, 6, &mut rng).unwrap();
        // Corrupt: duplicate the first locus.
        let mut broken = g.clone();
        broken[1] = broken[0];
        assert!(!is_valid(&nl, &broken));
        let repaired = repair_genotype(&nl, &broken, 6, &mut rng);
        assert_eq!(repaired.len(), 6);
        assert!(is_valid(&nl, &repaired));
        // The first locus is preserved.
        assert_eq!(repaired[0], g[0]);
    }

    #[test]
    fn repair_pads_short_genotypes() {
        let nl = circuit();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = random_genotype(&nl, 4, &mut rng).unwrap();
        let padded = repair_genotype(&nl, &g[..2].to_vec(), 4, &mut rng);
        assert_eq!(padded.len(), 4);
        assert!(is_valid(&nl, &padded));
    }

    #[test]
    fn repair_truncates_long_genotypes() {
        let nl = circuit();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = random_genotype(&nl, 10, &mut rng).unwrap();
        let truncated = repair_genotype(&nl, &g, 5, &mut rng);
        assert_eq!(truncated.len(), 5);
        assert!(is_valid(&nl, &truncated));
    }

    #[test]
    fn repair_leaves_valid_genotypes_unchanged() {
        let nl = circuit();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = random_genotype(&nl, 8, &mut rng).unwrap();
        let repaired = repair_genotype(&nl, &g, 8, &mut rng);
        assert_eq!(repaired, g);
    }
}
