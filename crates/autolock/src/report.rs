//! AutoLock result and error types.

use autolock_locking::{LockError, LockedNetlist};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One generation of the AutoLock run, in terms the paper reports: the MuxLink
/// accuracy of the best and average individual.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationRecord {
    /// Generation index (0 = initial population).
    pub generation: usize,
    /// Attack accuracy of the best (fittest) individual.
    pub best_attack_accuracy: f64,
    /// Mean attack accuracy over the population.
    pub mean_attack_accuracy: f64,
    /// Worst attack accuracy in the population.
    pub worst_attack_accuracy: f64,
}

/// Result of an [`crate::AutoLock::run`].
#[derive(Debug, Clone)]
pub struct AutoLockResult {
    /// The evolved locked netlist (decoded from the fittest genotype).
    pub locked: LockedNetlist,
    /// The fittest genotype itself.
    pub best_genotype: crate::LockingGenotype,
    /// MuxLink accuracy on a plain D-MUX locking of the same circuit and key
    /// length (the mean over the initial population): the paper's baseline.
    pub baseline_attack_accuracy: f64,
    /// MuxLink accuracy on the evolved locking.
    pub final_attack_accuracy: f64,
    /// Per-generation convergence record.
    pub history: Vec<GenerationRecord>,
    /// Total number of (non-cached) fitness evaluations.
    pub fitness_evaluations: usize,
    /// Generation at which the best individual first appeared.
    pub best_generation: usize,
    /// Wall-clock milliseconds of the whole run.
    pub runtime_ms: u128,
    /// Ring-migration rounds applied (island-model runs; 0 otherwise).
    pub migrations: usize,
    /// Fitness-cache lookups answered without re-running the attack
    /// (includes hits shared across islands and the surrogate pair).
    pub fitness_cache_hits: u64,
    /// Fitness-cache lookups that paid for a real evaluation.
    pub fitness_cache_misses: u64,
}

impl AutoLockResult {
    /// The paper's headline metric: the drop in MuxLink accuracy, in
    /// percentage points, relative to the D-MUX baseline.
    pub fn accuracy_drop_pp(&self) -> f64 {
        (self.baseline_attack_accuracy - self.final_attack_accuracy) * 100.0
    }
}

/// Errors of the AutoLock pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutoLockError {
    /// The requested configuration cannot be realized on the input netlist
    /// (e.g. the key is longer than the number of lockable wire pairs).
    Lock(LockError),
    /// The configuration is internally inconsistent.
    InvalidConfig {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for AutoLockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutoLockError::Lock(e) => write!(f, "locking failed: {e}"),
            AutoLockError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for AutoLockError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AutoLockError::Lock(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LockError> for AutoLockError {
    fn from(e: LockError) -> Self {
        AutoLockError::Lock(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversion() {
        let e: AutoLockError = LockError::KeyTooLong {
            requested: 10,
            available: 2,
        }
        .into();
        assert!(e.to_string().contains("locking failed"));
        let e = AutoLockError::InvalidConfig {
            reason: "population size must be at least 2".into(),
        };
        assert!(e.to_string().contains("population"));
    }
}
