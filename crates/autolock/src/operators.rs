//! Problem-specific evolutionary operators for the AutoLock genotype.
//!
//! The paper's research plan highlights operator design as a key question;
//! this module therefore provides several interchangeable crossover and
//! mutation operators, all of which route their children through
//! [`repair_genotype`](crate::repair_genotype) so every offspring is a valid
//! locking of the original netlist. Experiment E7 sweeps these operators.

use crate::genotype::{repair_genotype, LockingGenotype};
use autolock_evo::{CrossoverOperator, MutationOperator};
use autolock_locking::mux::lockable_wires;
use autolock_netlist::{GateId, Netlist};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which crossover recombination rule to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrossoverKind {
    /// Single cut point; children take a prefix from one parent and a suffix
    /// from the other.
    OnePoint,
    /// Two cut points; the middle segment is swapped.
    TwoPoint,
    /// Each locus is taken from either parent with probability 0.5.
    Uniform,
}

/// Crossover over locus lists, followed by repair.
#[derive(Debug, Clone)]
pub struct LocusCrossover {
    original: Arc<Netlist>,
    key_len: usize,
    kind: CrossoverKind,
}

impl LocusCrossover {
    /// Creates a crossover operator for the given original netlist and key
    /// length.
    pub fn new(original: Arc<Netlist>, key_len: usize, kind: CrossoverKind) -> Self {
        LocusCrossover {
            original,
            key_len,
            kind,
        }
    }

    /// The recombination rule.
    pub fn kind(&self) -> CrossoverKind {
        self.kind
    }

    fn recombine(
        &self,
        a: &LockingGenotype,
        b: &LockingGenotype,
        rng: &mut dyn RngCore,
    ) -> (LockingGenotype, LockingGenotype) {
        let len = a.len().min(b.len());
        if len == 0 {
            return (a.clone(), b.clone());
        }
        match self.kind {
            CrossoverKind::OnePoint => {
                let cut = rng.gen_range(0..len);
                let child_a = a[..cut].iter().chain(&b[cut..]).copied().collect();
                let child_b = b[..cut].iter().chain(&a[cut..]).copied().collect();
                (child_a, child_b)
            }
            CrossoverKind::TwoPoint => {
                let mut c1 = rng.gen_range(0..len);
                let mut c2 = rng.gen_range(0..len);
                if c1 > c2 {
                    std::mem::swap(&mut c1, &mut c2);
                }
                let mut child_a = a.clone();
                let mut child_b = b.clone();
                child_a[c1..c2].clone_from_slice(&b[c1..c2]);
                child_b[c1..c2].clone_from_slice(&a[c1..c2]);
                (child_a, child_b)
            }
            CrossoverKind::Uniform => {
                let mut child_a = a.clone();
                let mut child_b = b.clone();
                for i in 0..len {
                    if rng.gen_bool(0.5) {
                        child_a[i] = b[i];
                        child_b[i] = a[i];
                    }
                }
                (child_a, child_b)
            }
        }
    }
}

impl CrossoverOperator<LockingGenotype> for LocusCrossover {
    fn crossover(
        &self,
        a: &LockingGenotype,
        b: &LockingGenotype,
        rng: &mut dyn RngCore,
    ) -> (LockingGenotype, LockingGenotype) {
        let (raw_a, raw_b) = self.recombine(a, b, rng);
        (
            repair_genotype(&self.original, &raw_a, self.key_len, rng),
            repair_genotype(&self.original, &raw_b, self.key_len, rng),
        )
    }
}

/// Which mutation rule to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MutationKind {
    /// Flip the key bit of a random locus (also swaps the MUX input order at
    /// decode time, so the netlist structure changes too).
    KeyFlip,
    /// Replace a random locus with a freshly sampled one.
    Relocate,
    /// Keep the first wire of a random locus, re-sample its partner wire.
    RewirePartner,
    /// Pick one of the above uniformly at random per application.
    Composite,
}

/// Mutation over locus lists, followed by repair.
#[derive(Debug, Clone)]
pub struct LocusMutation {
    original: Arc<Netlist>,
    key_len: usize,
    kind: MutationKind,
    wires: Vec<(GateId, GateId)>,
}

impl LocusMutation {
    /// Creates a mutation operator for the given original netlist and key
    /// length.
    pub fn new(original: Arc<Netlist>, key_len: usize, kind: MutationKind) -> Self {
        let wires = lockable_wires(&original);
        LocusMutation {
            original,
            key_len,
            kind,
            wires,
        }
    }

    /// The mutation rule.
    pub fn kind(&self) -> MutationKind {
        self.kind
    }

    fn apply_kind(
        &self,
        kind: MutationKind,
        genotype: &mut LockingGenotype,
        rng: &mut dyn RngCore,
    ) {
        if genotype.is_empty() {
            return;
        }
        let idx = rng.gen_range(0..genotype.len());
        match kind {
            MutationKind::KeyFlip => {
                genotype[idx].key_bit = !genotype[idx].key_bit;
            }
            MutationKind::Relocate => {
                if let (Some(&(f_i, g_i)), Some(&(f_j, g_j))) =
                    (self.wires.choose(rng), self.wires.choose(rng))
                {
                    genotype[idx] =
                        autolock_locking::MuxPairLocus::new(f_i, g_i, f_j, g_j, rng.gen());
                }
            }
            MutationKind::RewirePartner => {
                if let Some(&(f_j, g_j)) = self.wires.choose(rng) {
                    genotype[idx].f_j = f_j;
                    genotype[idx].g_j = g_j;
                }
            }
            MutationKind::Composite => {
                let pick = match rng.gen_range(0..3) {
                    0 => MutationKind::KeyFlip,
                    1 => MutationKind::Relocate,
                    _ => MutationKind::RewirePartner,
                };
                self.apply_kind(pick, genotype, rng);
            }
        }
    }
}

impl MutationOperator<LockingGenotype> for LocusMutation {
    fn mutate(&self, genotype: &mut LockingGenotype, rng: &mut dyn RngCore) {
        // The composite mutation perturbs several loci per application (about
        // one in eight), which speeds up exploration for long keys; the
        // single-purpose kinds stay single-locus so the operator ablation
        // isolates their effect.
        let applications = match self.kind {
            MutationKind::Composite => 1 + genotype.len() / 8,
            _ => 1,
        };
        for _ in 0..applications {
            self.apply_kind(self.kind, genotype, rng);
        }
        *genotype = repair_genotype(&self.original, genotype, self.key_len, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genotype::{is_valid, random_genotype};
    use autolock_circuits::synth_circuit;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(key_len: usize) -> (Arc<Netlist>, LockingGenotype, LockingGenotype, ChaCha8Rng) {
        let original = Arc::new(synth_circuit("op", 10, 4, 150, 33));
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let a = random_genotype(&original, key_len, &mut rng).unwrap();
        let b = random_genotype(&original, key_len, &mut rng).unwrap();
        (original, a, b, rng)
    }

    #[test]
    fn all_crossover_kinds_produce_valid_children() {
        for kind in [
            CrossoverKind::OnePoint,
            CrossoverKind::TwoPoint,
            CrossoverKind::Uniform,
        ] {
            let (original, a, b, mut rng) = setup(10);
            let op = LocusCrossover::new(original.clone(), 10, kind);
            let (c, d) = op.crossover(&a, &b, &mut rng);
            assert_eq!(c.len(), 10);
            assert_eq!(d.len(), 10);
            assert!(is_valid(&original, &c), "{kind:?} child c invalid");
            assert!(is_valid(&original, &d), "{kind:?} child d invalid");
        }
    }

    #[test]
    fn crossover_mixes_parent_material() {
        let (original, a, b, mut rng) = setup(12);
        let op = LocusCrossover::new(original, 12, CrossoverKind::Uniform);
        let (c, _) = op.crossover(&a, &b, &mut rng);
        let from_a = c.iter().filter(|l| a.contains(l)).count();
        let from_b = c.iter().filter(|l| b.contains(l)).count();
        assert!(from_a > 0, "child should inherit something from parent a");
        assert!(from_b > 0, "child should inherit something from parent b");
    }

    #[test]
    fn all_mutation_kinds_keep_genotypes_valid() {
        for kind in [
            MutationKind::KeyFlip,
            MutationKind::Relocate,
            MutationKind::RewirePartner,
            MutationKind::Composite,
        ] {
            let (original, a, _, mut rng) = setup(8);
            let op = LocusMutation::new(original.clone(), 8, kind);
            let mut child = a.clone();
            op.mutate(&mut child, &mut rng);
            assert_eq!(child.len(), 8);
            assert!(
                is_valid(&original, &child),
                "{kind:?} produced invalid child"
            );
        }
    }

    #[test]
    fn key_flip_changes_exactly_one_bit_most_of_the_time() {
        let (original, a, _, mut rng) = setup(8);
        let op = LocusMutation::new(original, 8, MutationKind::KeyFlip);
        let mut child = a.clone();
        op.mutate(&mut child, &mut rng);
        let changed = a.iter().zip(&child).filter(|(x, y)| x != y).count();
        assert!(changed >= 1);
    }

    #[test]
    fn mutation_on_empty_genotype_is_a_noop_pad() {
        let (original, _, _, mut rng) = setup(4);
        let op = LocusMutation::new(original.clone(), 4, MutationKind::Composite);
        let mut empty: LockingGenotype = Vec::new();
        op.mutate(&mut empty, &mut rng);
        // Repair pads it back to the configured key length.
        assert_eq!(empty.len(), 4);
        assert!(is_valid(&original, &empty));
    }
}
