//! Fitness functions: the GA ↔ attack integration.

use crate::cache::FitnessCache;
use crate::genotype::{genotype_hash, LockingGenotype};
use autolock_attacks::{
    netlist_fingerprint, KeyRecoveryAttack, MuxLinkAttack, MuxLinkConfig, SatAttack,
    SatAttackConfig,
};
use autolock_evo::{FitnessFunction, MultiObjectiveFitness};
use autolock_locking::{apply_loci, LockedNetlist};
use autolock_netlist::Netlist;
use parking_lot::Mutex;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Single-objective AutoLock fitness: `1 − MuxLink key-prediction accuracy`.
///
/// The fitness of each genotype is measured by locking the original netlist
/// at the genotype's loci and running the MuxLink attack on the result —
/// "lower accuracy indicates higher fitness" (paper, §II). Evaluations are
/// deterministic (the attack RNG is seeded from the genotype hash) and
/// memoized in a [`FitnessCache`] — private by default, shareable across
/// islands and surrogate/real pairs via [`MuxLinkFitness::with_cache`] —
/// so re-evaluating elites (or a genotype another island already scored)
/// costs nothing.
pub struct MuxLinkFitness {
    original: Arc<Netlist>,
    attack: MuxLinkAttack,
    seed: u64,
    repeats: usize,
    target: Option<f64>,
    cache: Arc<FitnessCache>,
    context: u64,
    evaluations: Mutex<usize>,
}

impl MuxLinkFitness {
    /// Creates the fitness function with a private cache.
    pub fn new(
        original: Arc<Netlist>,
        attack_config: MuxLinkConfig,
        seed: u64,
        repeats: usize,
    ) -> Self {
        let repeats = repeats.max(1);
        let context = FitnessCache::context_key(
            netlist_fingerprint(&original),
            &attack_config,
            seed,
            repeats,
        );
        MuxLinkFitness {
            original,
            attack: MuxLinkAttack::new(attack_config),
            seed,
            repeats,
            target: None,
            cache: FitnessCache::shared(),
            context,
            evaluations: Mutex::new(0),
        }
    }

    /// Sets a target fitness at which the GA may stop early.
    pub fn with_target(mut self, target: f64) -> Self {
        self.target = Some(target);
        self
    }

    /// Replaces the private memo with a shared [`FitnessCache`]. The context
    /// key keeps entries from incompatible instances apart, so sharing is
    /// always safe; instances with identical context (same netlist, config,
    /// seed, repeats) answer each other's lookups.
    pub fn with_cache(mut self, cache: Arc<FitnessCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The cache this fitness reads and writes.
    pub fn cache(&self) -> &Arc<FitnessCache> {
        &self.cache
    }

    /// Number of *non-cached* fitness evaluations performed so far.
    pub fn evaluations(&self) -> usize {
        *self.evaluations.lock()
    }

    /// Evaluates the attack accuracy (not the fitness) of a genotype.
    /// Returns accuracy 1.0 for genotypes that fail to decode (they are
    /// maximally unfit).
    pub fn attack_accuracy(&self, genotype: &LockingGenotype) -> f64 {
        let Ok(locked) = apply_loci(&self.original, genotype) else {
            return 1.0;
        };
        self.attack_accuracy_on(&locked, genotype)
    }

    fn attack_accuracy_on(&self, locked: &LockedNetlist, genotype: &LockingGenotype) -> f64 {
        let h = genotype_hash(genotype);
        let mut total = 0.0;
        for rep in 0..self.repeats {
            let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ h ^ ((rep as u64) << 32));
            total += self.attack.attack(locked, &mut rng).key_accuracy;
        }
        total / self.repeats as f64
    }
}

impl FitnessFunction<LockingGenotype> for MuxLinkFitness {
    fn evaluate(&self, genotype: &LockingGenotype) -> f64 {
        let h = genotype_hash(genotype);
        if let Some(cached) = self.cache.get(self.context, h) {
            return cached;
        }
        let accuracy = self.attack_accuracy(genotype);
        let fitness = 1.0 - accuracy;
        self.cache.insert(self.context, h, fitness);
        *self.evaluations.lock() += 1;
        fitness
    }

    fn target(&self) -> Option<f64> {
        self.target
    }
}

/// Objectives available to the multi-objective fitness (all minimized).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObjectiveKind {
    /// MuxLink key-prediction accuracy.
    MuxLinkAccuracy,
    /// Relative area overhead (extra gates / original gates). Constant for a
    /// fixed key length; useful when individuals have different key lengths.
    AreaOverhead,
    /// Relative depth (delay) overhead: extra logic levels on the longest
    /// path / original depth. Varies with *where* the MUX pairs are inserted,
    /// so it trades off against attack resilience even at fixed key length.
    DepthOverhead,
    /// Negated SAT-attack effort: `1 / (1 + iterations)`, so harder-to-break
    /// designs score lower.
    SatVulnerability,
}

/// Multi-objective AutoLock fitness (experiment E8): simultaneously minimize a
/// configurable set of [`ObjectiveKind`]s.
pub struct MultiObjectiveLockingFitness {
    original: Arc<Netlist>,
    attack: MuxLinkAttack,
    sat_config: SatAttackConfig,
    objectives: Vec<ObjectiveKind>,
    seed: u64,
    cache: Mutex<HashMap<u64, Vec<f64>>>,
}

impl MultiObjectiveLockingFitness {
    /// Creates the multi-objective fitness over the given objectives.
    ///
    /// # Panics
    ///
    /// Panics if `objectives` is empty.
    pub fn new(
        original: Arc<Netlist>,
        attack_config: MuxLinkConfig,
        sat_config: SatAttackConfig,
        objectives: Vec<ObjectiveKind>,
        seed: u64,
    ) -> Self {
        assert!(!objectives.is_empty(), "at least one objective required");
        MultiObjectiveLockingFitness {
            original,
            attack: MuxLinkAttack::new(attack_config),
            sat_config,
            objectives,
            seed,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The configured objectives, in evaluation order.
    pub fn objectives(&self) -> &[ObjectiveKind] {
        &self.objectives
    }
}

impl MultiObjectiveFitness<LockingGenotype> for MultiObjectiveLockingFitness {
    fn num_objectives(&self) -> usize {
        self.objectives.len()
    }

    fn evaluate(&self, genotype: &LockingGenotype) -> Vec<f64> {
        let h = genotype_hash(genotype);
        if let Some(cached) = self.cache.lock().get(&h) {
            return cached.clone();
        }
        let values = match apply_loci(&self.original, genotype) {
            Err(_) => vec![f64::INFINITY; self.objectives.len()],
            Ok(locked) => self
                .objectives
                .iter()
                .map(|obj| match obj {
                    ObjectiveKind::MuxLinkAccuracy => {
                        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ h);
                        self.attack.attack(&locked, &mut rng).key_accuracy
                    }
                    ObjectiveKind::AreaOverhead => {
                        let extra = locked.netlist().num_logic_gates() as f64
                            - self.original.num_logic_gates() as f64;
                        extra / self.original.num_logic_gates().max(1) as f64
                    }
                    ObjectiveKind::DepthOverhead => {
                        let original_depth = autolock_netlist::topo::depth(&self.original)
                            .unwrap_or(1)
                            .max(1);
                        let locked_depth = autolock_netlist::topo::depth(locked.netlist())
                            .unwrap_or(original_depth);
                        (locked_depth as f64 - original_depth as f64) / original_depth as f64
                    }
                    ObjectiveKind::SatVulnerability => {
                        let outcome =
                            SatAttack::new(self.sat_config).attack(&locked, &self.original);
                        if outcome.success {
                            1.0 / (1.0 + outcome.iterations as f64)
                        } else {
                            0.0
                        }
                    }
                })
                .collect(),
        };
        self.cache.lock().insert(h, values.clone());
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genotype::random_genotype;
    use autolock_circuits::synth_circuit;

    fn setup() -> (Arc<Netlist>, LockingGenotype) {
        let original = Arc::new(synth_circuit("fit", 10, 4, 150, 41));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let genotype = random_genotype(&original, 8, &mut rng).unwrap();
        (original, genotype)
    }

    #[test]
    fn fitness_is_deterministic_and_cached() {
        let (original, genotype) = setup();
        let fitness = MuxLinkFitness::new(original, MuxLinkConfig::fast(), 11, 1);
        let a = fitness.evaluate(&genotype);
        let b = fitness.evaluate(&genotype);
        assert_eq!(a, b);
        assert_eq!(fitness.evaluations(), 1, "second call must hit the cache");
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn subgraph_cache_does_not_change_fitness_across_repeats() {
        // The in-loop attack inherits `MuxLinkConfig::subgraph_cache`
        // through `AutoLockConfig::attack`; with `repeats > 1` the repeats
        // of one evaluation share the instance cache (same locked netlist),
        // and the result must be bit-identical to a cache-disabled oracle.
        let (original, genotype) = setup();
        let cached = MuxLinkFitness::new(original.clone(), MuxLinkConfig::fast(), 11, 2);
        let plain = MuxLinkFitness::new(
            original,
            MuxLinkConfig::fast().with_subgraph_cache(0),
            11,
            2,
        );
        assert_eq!(
            cached.evaluate(&genotype).to_bits(),
            plain.evaluate(&genotype).to_bits()
        );
    }

    #[test]
    fn cache_hit_replays_the_miss_path_rng_protocol() {
        // The attack RNG is derived from `seed ^ genotype_hash ^ (rep << 32)`
        // — never from evaluation order — so a value served from a *shared*
        // cache must be bit-identical to what the served instance would have
        // computed from scratch through its own miss path.
        let (original, genotype) = setup();
        let cache = FitnessCache::shared();
        let first = MuxLinkFitness::new(original.clone(), MuxLinkConfig::fast(), 11, 2)
            .with_cache(cache.clone());
        let shared = MuxLinkFitness::new(original.clone(), MuxLinkConfig::fast(), 11, 2)
            .with_cache(cache.clone());
        let isolated = MuxLinkFitness::new(original.clone(), MuxLinkConfig::fast(), 11, 2);

        let miss = first.evaluate(&genotype);
        let hit = shared.evaluate(&genotype);
        assert_eq!(miss.to_bits(), hit.to_bits());
        assert_eq!(
            shared.evaluations(),
            0,
            "second instance must hit the cache"
        );
        assert_eq!(
            hit.to_bits(),
            isolated.evaluate(&genotype).to_bits(),
            "cache hit must equal an isolated miss-path evaluation"
        );
        assert_eq!(cache.hits(), 1);

        // A different seed is a different context: no cross-contamination,
        // and (in general) a different value.
        let other =
            MuxLinkFitness::new(original, MuxLinkConfig::fast(), 12, 2).with_cache(cache.clone());
        let _ = other.evaluate(&genotype);
        assert_eq!(
            other.evaluations(),
            1,
            "different seed must not share entries"
        );
    }

    #[test]
    fn fitness_is_one_minus_accuracy() {
        let (original, genotype) = setup();
        let fitness = MuxLinkFitness::new(original, MuxLinkConfig::fast(), 11, 1);
        let acc = fitness.attack_accuracy(&genotype);
        let fit = fitness.evaluate(&genotype);
        assert!((fit - (1.0 - acc)).abs() < 1e-12);
    }

    #[test]
    fn invalid_genotype_gets_worst_fitness() {
        let (original, genotype) = setup();
        let fitness = MuxLinkFitness::new(original, MuxLinkConfig::fast(), 11, 1);
        // Duplicate the first locus to make the genotype invalid.
        let mut broken = genotype.clone();
        broken[1] = broken[0];
        assert_eq!(fitness.evaluate(&broken), 0.0);
    }

    #[test]
    fn fitness_can_target_the_gnn_adversary() {
        // The evolutionary loop can optimize against the DGCNN backend just
        // by configuring it; the fitness plumbing is backend-agnostic.
        let (original, genotype) = setup();
        let fitness = MuxLinkFitness::new(original, MuxLinkConfig::gnn_fast(), 11, 1);
        let f = fitness.evaluate(&genotype);
        assert!((0.0..=1.0).contains(&f));
        // Cached and deterministic like the MLP-backed fitness.
        assert_eq!(fitness.evaluate(&genotype), f);
        assert_eq!(fitness.evaluations(), 1);
    }

    #[test]
    fn one_generation_evolves_against_the_parallel_gnn_adversary() {
        // The E11 seed path: a (tiny) AutoLock run whose fitness oracle is
        // the batch-parallel DGCNN attack. One generation is enough to prove
        // the GA ↔ parallel-GNN integration end-to-end: the engine must
        // evaluate every individual, record the generation, and return a
        // well-formed evolved locking.
        use crate::{AutoLock, AutoLockConfig};
        let original = synth_circuit("evo-gnn", 10, 4, 130, 47);
        let config = AutoLockConfig {
            key_len: 6,
            population_size: 4,
            generations: 1,
            attack: MuxLinkConfig::gnn_fast().with_threads(0),
            seed: 0xE11,
            ..AutoLockConfig::tiny()
        };
        let result = AutoLock::new(config).run(&original).unwrap();
        assert_eq!(result.locked.key_len(), 6);
        assert!((0.0..=1.0).contains(&result.final_attack_accuracy));
        assert!((0.0..=1.0).contains(&result.baseline_attack_accuracy));
        // Initial population + one generation, each recorded.
        assert_eq!(result.history.len(), 2);
        assert!(result.fitness_evaluations >= 4);
        // Elitism guarantees the best never regresses between generations.
        assert!(
            result.history[1].best_attack_accuracy
                <= result.history[0].best_attack_accuracy + 1e-12
        );
    }

    #[test]
    fn target_is_propagated() {
        let (original, _) = setup();
        let fitness = MuxLinkFitness::new(original, MuxLinkConfig::fast(), 11, 1).with_target(0.5);
        assert_eq!(FitnessFunction::target(&fitness), Some(0.5));
    }

    #[test]
    fn multi_objective_returns_one_value_per_objective() {
        let (original, genotype) = setup();
        let fitness = MultiObjectiveLockingFitness::new(
            original.clone(),
            MuxLinkConfig::fast(),
            SatAttackConfig {
                max_iterations: 20,
                timeout_ms: 10_000,
                ..SatAttackConfig::default()
            },
            vec![ObjectiveKind::MuxLinkAccuracy, ObjectiveKind::AreaOverhead],
            7,
        );
        let values = fitness.evaluate(&genotype);
        assert_eq!(values.len(), 2);
        assert!((0.0..=1.0).contains(&values[0]));
        // 8 mux pairs on a 150-gate circuit => ~10.7% area overhead.
        assert!((values[1] - 16.0 / 150.0).abs() < 1e-9);
        // Cached second call.
        assert_eq!(fitness.evaluate(&genotype), values);
    }

    #[test]
    #[should_panic(expected = "at least one objective")]
    fn empty_objectives_panics() {
        let (original, _) = setup();
        MultiObjectiveLockingFitness::new(
            original,
            MuxLinkConfig::fast(),
            SatAttackConfig::default(),
            vec![],
            1,
        );
    }
}
