//! AutoLock configuration.

use crate::operators::{CrossoverKind, MutationKind};
use autolock_attacks::MuxLinkConfig;
use autolock_evo::{IslandConfig, SelectionMethod};
use autolock_locking::{DMuxLocking, PairSelectionStrategy};
use serde::{Deserialize, Serialize};

/// Configuration of an [`crate::AutoLock`] run.
///
/// The defaults mirror the paper's setup (no parameter tuning): a modest
/// population evolved for a few tens of generations with tournament selection,
/// one-point crossover and composite mutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoLockConfig {
    /// Desired key length `K` (number of MUX pairs inserted).
    pub key_len: usize,
    /// Population size `N` (number of independently D-MUX-locked encodings
    /// used to seed the GA).
    pub population_size: usize,
    /// Number of GA generations.
    pub generations: usize,
    /// Crossover probability.
    pub crossover_rate: f64,
    /// Mutation probability (per child).
    pub mutation_rate: f64,
    /// Number of elite individuals preserved unchanged each generation.
    pub elitism: usize,
    /// Parent-selection method.
    pub selection: SelectionMethod,
    /// Crossover recombination rule.
    pub crossover_kind: CrossoverKind,
    /// Mutation rule.
    pub mutation_kind: MutationKind,
    /// Stop early when the best fitness (1 − attack accuracy) reaches this
    /// value; e.g. `Some(0.5)` stops once the attack is at coin-flip level.
    pub target_fitness: Option<f64>,
    /// Stop after this many generations without improvement.
    pub stagnation_limit: Option<usize>,
    /// Configuration of the MuxLink attack used as the fitness oracle.
    pub attack: MuxLinkConfig,
    /// The D-MUX selection policy used to seed the initial population (one
    /// independent locking per individual). [`PairSelectionStrategy::Random`]
    /// reproduces the paper's setup on the small random synthetics;
    /// structured-tier runs should use
    /// [`PairSelectionStrategy::Localized`] so the seeded MUX pairs land on
    /// realistic reconvergent nets instead of give-away cross-block jumps
    /// (see [`AutoLockConfig::structured`]).
    pub locking: DMuxLocking,
    /// Evaluate the population in parallel.
    pub parallel: bool,
    /// Base RNG seed; every stochastic component derives from it, so a run is
    /// fully reproducible.
    pub seed: u64,
    /// Number of independent attack evaluations averaged per fitness call
    /// (reduces fitness noise at proportional cost).
    pub attack_repeats: usize,
    /// Island-model topology. `islands.islands <= 1` keeps the classic
    /// single-population GA; anything larger fans subpopulations across
    /// `islands.threads` workers with deterministic ring migration (results
    /// are bit-identical for every thread count). The island fan-out becomes
    /// the parallelism level, so `parallel` and the attack thread knob are
    /// forced serial underneath it.
    pub islands: IslandConfig,
    /// Surrogate screening for island runs: a cheap attack configuration
    /// (typically the MLP backend) that ranks each generation so only the
    /// top [`AutoLockConfig::surrogate_survivor_fraction`] pay for the real
    /// [`AutoLockConfig::attack`]. `None` disables screening. Only honoured
    /// by the island path.
    pub surrogate: Option<MuxLinkConfig>,
    /// Fraction of each generation scored by the real fitness under
    /// surrogate screening (clamped to `(0, 1]`; at least one individual
    /// always survives).
    pub surrogate_survivor_fraction: f64,
}

impl Default for AutoLockConfig {
    fn default() -> Self {
        AutoLockConfig {
            key_len: 32,
            population_size: 16,
            generations: 25,
            crossover_rate: 0.9,
            mutation_rate: 0.4,
            elitism: 2,
            selection: SelectionMethod::Tournament { size: 3 },
            crossover_kind: CrossoverKind::OnePoint,
            mutation_kind: MutationKind::Composite,
            target_fitness: None,
            stagnation_limit: None,
            attack: MuxLinkConfig::fast(),
            locking: DMuxLocking::default(),
            parallel: true,
            seed: 0xA010C,
            attack_repeats: 1,
            islands: IslandConfig {
                islands: 1,
                ..IslandConfig::default()
            },
            surrogate: None,
            surrogate_survivor_fraction: 0.5,
        }
    }
}

impl AutoLockConfig {
    /// A small, fast configuration for unit tests and doc examples.
    pub fn tiny() -> Self {
        AutoLockConfig {
            key_len: 8,
            population_size: 6,
            generations: 4,
            attack: MuxLinkConfig::fast(),
            ..Default::default()
        }
    }

    /// Switches population seeding to locality-aware insertion
    /// ([`PairSelectionStrategy::Localized`]): both wires of every seeded
    /// MUX pair lie within `radius` undirected hops of each other. This is
    /// the configuration the structured-tier (ISCAS-shaped) experiments
    /// use — on datapath circuits, uniformly random pairs straddle
    /// unrelated blocks and are trivially separable for the adversary.
    pub fn structured(mut self, radius: usize) -> Self {
        self.locking = DMuxLocking::new(PairSelectionStrategy::Localized { radius });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = AutoLockConfig::default();
        assert!(c.key_len > 0);
        assert!(c.population_size > 1);
        assert!(c.crossover_rate > 0.0 && c.crossover_rate <= 1.0);
        assert!(c.mutation_rate > 0.0 && c.mutation_rate <= 1.0);
        assert!(c.elitism < c.population_size);
    }

    #[test]
    fn tiny_config_is_smaller() {
        let t = AutoLockConfig::tiny();
        let d = AutoLockConfig::default();
        assert!(t.key_len < d.key_len);
        assert!(t.population_size < d.population_size);
        assert!(t.generations < d.generations);
    }

    #[test]
    fn config_serializes() {
        let c = AutoLockConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: AutoLockConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
