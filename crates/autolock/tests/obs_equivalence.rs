//! Pipeline-level half of the observability determinism contract: a whole
//! AutoLock run — GA generations, in-loop MuxLink attacks, final decode —
//! produces the identical result whether the obs registry is recording or
//! not. The attack-level half lives in
//! `crates/attacks/tests/obs_equivalence.rs`.

use autolock::{AutoLock, AutoLockConfig};
use autolock_circuits::synth_circuit;

#[test]
fn autolock_runs_are_bit_identical_with_obs_on_and_off() {
    let netlist = synth_circuit("obs_eq_pipeline", 10, 4, 120, 31);
    let mut cfg = AutoLockConfig::tiny();
    cfg.generations = 2;
    cfg.population_size = 4;
    cfg.key_len = 4;
    cfg.parallel = false;

    let run = || AutoLock::new(cfg.clone()).run(&netlist).unwrap();

    assert!(!autolock_obs::enabled(), "registry must start disabled");
    let silent = run();

    autolock_obs::reset();
    autolock_obs::enable();
    let observed = run();
    let snapshot = autolock_obs::drain();
    autolock_obs::disable();

    assert_eq!(silent.best_genotype, observed.best_genotype);
    assert_eq!(silent.final_attack_accuracy, observed.final_attack_accuracy);
    assert_eq!(
        silent.baseline_attack_accuracy,
        observed.baseline_attack_accuracy
    );
    assert_eq!(silent.history, observed.history);
    assert_eq!(silent.fitness_evaluations, observed.fitness_evaluations);
    assert_eq!(silent.locked, observed.locked);

    if autolock_obs::is_noop() {
        return;
    }
    // The GA and engine spans must have fired during the observed run.
    for path in ["autolock.run", "autolock.run/evo.run"] {
        assert!(
            snapshot.spans.iter().any(|s| s.path == path),
            "missing span {path}: {:?}",
            snapshot.spans
        );
    }
    assert!(snapshot
        .counters
        .iter()
        .any(|(name, value)| name == "evo.fitness_evals" && *value > 0));
}
