//! Property test: span trees nest and merge correctly for every thread
//! count.
//!
//! Each generated case spawns 1–6 threads. Every thread opens a unique root
//! span and then walks a random push/pop script of nested spans while
//! simulating, in plain code, the exact `(path, depth)` exit sequence the
//! registry should record for it. After the threads join, one [`drain`]
//! merges all per-thread buffers; the test then checks
//!
//! * per thread: the merged stream, filtered to that thread's root,
//!   reproduces the simulated exit sequence exactly (order included —
//!   sequence numbers are monotone per thread),
//! * globally: sequence numbers are dense and sorted, every path's parent
//!   prefix is the path minus its last segment, and the per-path aggregates
//!   agree with the event counts.
//!
//! [`drain`]: autolock_obs::drain

use proptest::prelude::*;

/// Per-thread root span names (also the thread attribution key: a span
/// path's first segment identifies the thread that recorded it).
const ROOTS: [&str; 6] = ["t0", "t1", "t2", "t3", "t4", "t5"];
/// Nested span names by depth below the root.
const NAMES: [&str; 5] = ["n0", "n1", "n2", "n3", "n4"];

/// Simulates the exit sequence of one thread's script: `true` pushes a new
/// nested span (while depth allows), `false` pops one (while one is open).
/// Returns `(path, depth)` in exit order, including the final unwinding and
/// the root.
fn expected_exits(root: &str, script: &[bool]) -> Vec<(String, usize)> {
    let mut stack: Vec<&str> = vec![root];
    let mut exits = Vec::new();
    let pop = |stack: &mut Vec<&str>, exits: &mut Vec<(String, usize)>| {
        let depth = stack.len() - 1;
        exits.push((stack.join("/"), depth));
        stack.pop();
    };
    for &push in script {
        if push {
            if stack.len() <= NAMES.len() {
                stack.push(NAMES[stack.len() - 1]);
            }
        } else if stack.len() > 1 {
            pop(&mut stack, &mut exits);
        }
    }
    while !stack.is_empty() {
        pop(&mut stack, &mut exits);
    }
    exits
}

/// Runs the same script against the real registry on the current thread.
fn run_script(root: &'static str, script: &[bool]) {
    let mut guards = vec![autolock_obs::span(root)];
    for &push in script {
        if push {
            if guards.len() <= NAMES.len() {
                guards.push(autolock_obs::span(NAMES[guards.len() - 1]));
            }
        } else if guards.len() > 1 {
            guards.pop();
        }
    }
    // Unwind the leftovers innermost-first: a plain `Vec` drop would run
    // front-to-back, violating the guards' LIFO contract.
    while guards.pop().is_some() {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    fn span_trees_nest_and_merge_across_thread_counts(
        scripts in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 0..28),
            1..=6usize,
        ),
    ) {
        autolock_obs::reset();
        autolock_obs::enable();
        let handles: Vec<_> = scripts
            .iter()
            .enumerate()
            .map(|(t, script)| {
                let script = script.clone();
                std::thread::spawn(move || run_script(ROOTS[t], &script))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = autolock_obs::drain();
        autolock_obs::disable();

        // Global merge: dense, sorted sequence numbers.
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        prop_assert_eq!(&seqs, &(0..snap.events.len() as u64).collect::<Vec<_>>());

        // Structural nesting: depth matches the path, and the parent path
        // is the path minus its last segment.
        for e in &snap.events {
            let segments: Vec<&str> = e.path.split('/').collect();
            prop_assert_eq!(segments.len(), e.depth + 1);
            prop_assert!(ROOTS.contains(&segments[0]));
        }

        // Per thread: the filtered merged stream equals the simulation,
        // in order.
        for (t, script) in scripts.iter().enumerate() {
            let got: Vec<(String, usize)> = snap
                .events
                .iter()
                .filter(|e| e.path.split('/').next() == Some(ROOTS[t]))
                .map(|e| (e.path.clone(), e.depth))
                .collect();
            prop_assert_eq!(got, expected_exits(ROOTS[t], script));
        }

        // Aggregates agree with the uncapped event stream.
        let total_events: u64 = snap.spans.iter().map(|s| s.count).sum();
        prop_assert_eq!(total_events, snap.events.len() as u64);
        prop_assert_eq!(snap.events_dropped, 0);
    }
}
