//! Per-run provenance manifests and the spans JSONL export.
//!
//! Every experiment driver writes two files under `results/obs/`:
//!
//! * `<exp>-manifest.json` — one [`RunManifest`]: what ran (experiment id,
//!   config fingerprint, suite tier, seed, thread count, git describe) and
//!   the headline numbers (wall clock per top-level span, all counters and
//!   gauges, RSS), so any results table can be traced back to the exact
//!   configuration that produced it.
//! * `<exp>-spans.jsonl` — one [`SpanEvent`](crate::SpanEvent) JSON object
//!   per line, in the deterministic [`drain`](crate::drain) order.
//!
//! Maps are exported as sorted arrays of `{name, value}` rows rather than
//! JSON objects, so the byte output is deterministic and trivially
//! diffable.

use crate::{Snapshot, SpanEvent};
use serde::Serialize;
use std::io::Write as _;
use std::path::Path;

/// Manifest schema version; the CI sanity check pins the required keys.
pub const SCHEMA_VERSION: u32 = 1;

/// One aggregated top-level span (depth 0 on its thread) in a manifest.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SpanRow {
    /// Span path.
    pub path: String,
    /// Completed occurrences.
    pub count: u64,
    /// Total wall-clock milliseconds across occurrences.
    pub total_ms: f64,
}

/// A named counter value in a manifest.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CounterRow {
    /// Counter name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// A named gauge value in a manifest.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GaugeRow {
    /// Gauge name.
    pub name: String,
    /// Last written value.
    pub value: f64,
}

/// The per-run provenance record. See the [module docs](self) for the file
/// layout and `crates/bench/README.md` for the emitted schema.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunManifest {
    /// Manifest schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Experiment identifier (e.g. `"e13"`).
    pub experiment: String,
    /// FNV-1a fingerprint (hex) of the run configuration, via
    /// [`fingerprint`].
    pub config_fingerprint: String,
    /// Benchmark-suite tier the run drew circuits from (`"quick"`/`"full"`).
    pub suite_tier: String,
    /// Experiment depth scale (`"quick"`/`"full"`).
    pub scale: String,
    /// Base RNG seed recorded for provenance (experiments additionally use
    /// fixed per-cell seeds; see the driver).
    pub seed: u64,
    /// Worker-thread knob the run saw (`AUTOLOCK_THREADS`; 0 = all cores).
    pub threads: usize,
    /// `git describe --always --dirty` of the built tree, or `"unknown"`.
    pub git_describe: String,
    /// Wall clock of the whole run, milliseconds.
    pub wall_clock_ms: f64,
    /// Aggregated top-level spans (depth 0), sorted by path.
    pub top_spans: Vec<SpanRow>,
    /// Every registry counter, sorted by name.
    pub counters: Vec<CounterRow>,
    /// Every registry gauge, sorted by name.
    pub gauges: Vec<GaugeRow>,
    /// Peak RSS at flush time, mebibytes ([`crate::mem`]).
    pub peak_rss_mb: Option<f64>,
    /// Current RSS at flush time, mebibytes.
    pub current_rss_mb: Option<f64>,
    /// Span events captured in the companion JSONL file.
    pub events_recorded: u64,
    /// Span events dropped by the buffer cap (aggregates still count them).
    pub events_dropped: u64,
}

impl RunManifest {
    /// Assembles a manifest from a drained [`Snapshot`] plus the run
    /// identity the driver knows.
    #[allow(clippy::too_many_arguments)]
    pub fn from_snapshot(
        snapshot: &Snapshot,
        experiment: &str,
        config_fingerprint: &str,
        suite_tier: &str,
        scale: &str,
        seed: u64,
        threads: usize,
        wall_clock_ms: f64,
    ) -> Self {
        let mem = crate::mem::probe();
        RunManifest {
            schema_version: SCHEMA_VERSION,
            experiment: experiment.to_string(),
            config_fingerprint: config_fingerprint.to_string(),
            suite_tier: suite_tier.to_string(),
            scale: scale.to_string(),
            seed,
            threads,
            git_describe: git_describe(),
            wall_clock_ms,
            top_spans: snapshot
                .spans
                .iter()
                .filter(|s| s.depth == 0)
                .map(|s| SpanRow {
                    path: s.path.clone(),
                    count: s.count,
                    total_ms: s.total_ns as f64 / 1e6,
                })
                .collect(),
            counters: snapshot
                .counters
                .iter()
                .map(|(name, value)| CounterRow {
                    name: name.clone(),
                    value: *value,
                })
                .collect(),
            gauges: snapshot
                .gauges
                .iter()
                .map(|(name, value)| GaugeRow {
                    name: name.clone(),
                    value: *value,
                })
                .collect(),
            peak_rss_mb: mem.peak_rss_mb,
            current_rss_mb: mem.current_rss_mb,
            events_recorded: snapshot.events.len() as u64,
            events_dropped: snapshot.events_dropped,
        }
    }

    /// Writes the manifest as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; serialization itself cannot fail for
    /// this type.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, json)
    }
}

/// Writes one JSON object per event, in input (sequence) order.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_events_jsonl(path: &Path, events: &[SpanEvent]) -> std::io::Result<()> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    for event in events {
        let line = serde_json::to_string(event)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(out, "{line}")?;
    }
    out.flush()
}

/// FNV-1a hash of the given configuration facets, formatted as 16 hex
/// digits. Two runs with the same fingerprint saw the same knobs.
pub fn fingerprint(facets: &[&str]) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for facet in facets {
        for b in facet.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // Separator so ["ab","c"] and ["a","bc"] differ.
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("{h:016x}")
}

/// `git describe --always --dirty` of the current tree, `"unknown"` when
/// git or the repository is unavailable (e.g. a tarball build).
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_separator_sensitive() {
        assert_eq!(fingerprint(&["a", "b"]), fingerprint(&["a", "b"]));
        assert_ne!(fingerprint(&["ab"]), fingerprint(&["a", "b"]));
        assert_eq!(fingerprint(&[]).len(), 16);
    }

    #[test]
    fn manifest_serializes_with_required_keys() {
        let snap = Snapshot {
            counters: vec![("c.a".into(), 3)],
            gauges: vec![("g.b".into(), 1.5)],
            spans: vec![
                crate::SpanSummary {
                    path: "root".into(),
                    depth: 0,
                    count: 1,
                    total_ns: 2_000_000,
                    min_ns: 2_000_000,
                    max_ns: 2_000_000,
                },
                crate::SpanSummary {
                    path: "root/leaf".into(),
                    depth: 1,
                    count: 4,
                    total_ns: 10,
                    min_ns: 1,
                    max_ns: 5,
                },
            ],
            events: vec![],
            events_dropped: 0,
        };
        let m = RunManifest::from_snapshot(&snap, "e1", "deadbeef", "quick", "quick", 7, 2, 12.5);
        assert_eq!(m.top_spans.len(), 1, "only depth-0 spans are top-level");
        assert_eq!(m.top_spans[0].total_ms, 2.0);
        let json = serde_json::to_string_pretty(&m).unwrap();
        for key in [
            "schema_version",
            "experiment",
            "config_fingerprint",
            "suite_tier",
            "scale",
            "seed",
            "threads",
            "git_describe",
            "wall_clock_ms",
            "top_spans",
            "counters",
            "gauges",
            "events_recorded",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing key {key}");
        }
    }

    #[test]
    fn events_jsonl_round_trips_one_object_per_line() {
        let dir = std::env::temp_dir().join("autolock_obs_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spans.jsonl");
        let events = vec![
            SpanEvent {
                path: "a".into(),
                depth: 0,
                thread: 0,
                seq: 0,
                start_ns: 5,
                dur_ns: 10,
            },
            SpanEvent {
                path: "a/b".into(),
                depth: 1,
                thread: 1,
                seq: 1,
                start_ns: 6,
                dur_ns: 2,
            },
        ];
        write_events_jsonl(&path, &events).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"path\""));
        assert!(lines[1].contains("a/b"));
        std::fs::remove_file(&path).ok();
    }
}
