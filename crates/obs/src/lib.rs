//! Structured tracing and metrics for the AutoLock workspace.
//!
//! Every other crate in this workspace answers "is the reproduction
//! correct?"; this one answers "where did the run spend its time and
//! memory?". It provides, with zero external dependencies (shim discipline):
//!
//! * **Hierarchical timed spans** — [`span`] (or the [`span!`] macro) returns
//!   an RAII guard; nested guards on one thread build a `/`-joined path
//!   (`"attack.muxlink/gnn.train/gnn.train_epoch"`). Every exit updates a
//!   per-path aggregate and appends a [`SpanEvent`] to a per-thread buffer.
//! * **A process-wide registry** of named [`Counter`]s and [`Gauge`]s backed
//!   by relaxed atomics.
//! * **Deterministic flush** — [`drain`] merges the per-thread event buffers
//!   by a global sequence number, and exports counters, gauges and span
//!   aggregates sorted by name, so the same set of recorded operations
//!   always serializes identically.
//! * **A memory probe** ([`mem`]) generalizing the `/proc/self/status`
//!   VmHWM hack: peak RSS, current RSS, and pool-occupancy gauges.
//! * **Run manifests** ([`manifest`]) — the per-experiment provenance record
//!   (config fingerprint, suite tier, seed, threads, git describe, wall
//!   clock per top-level span) written next to a spans JSONL file.
//!
//! # Determinism contract
//!
//! Observability never perturbs results. Instrumented code takes exactly the
//! same branches and draws exactly the same RNG values whether the registry
//! is enabled, disabled, or compiled out (`noop` feature): every site is a
//! side-channel write, never an input. When the registry is disabled
//! (the default), each site costs **one relaxed atomic load** — measured
//! below 1% on the `gnn_kernels` quick bench (see `crates/obs/README.md`).
//!
//! The merged event stream is ordered by a global sequence number, so a
//! fixed set of recorded spans always flushes in one order. Which thread
//! index a worker gets, and how concurrently-exiting spans interleave, are
//! scheduling facts faithfully recorded in the trace — they never feed back
//! into any computation.
//!
//! # Example
//!
//! ```
//! autolock_obs::enable();
//! let attacks = autolock_obs::counter("doc.attacks");
//! {
//!     let _outer = autolock_obs::span!("doc.run");
//!     let _inner = autolock_obs::span!("doc.stage");
//!     attacks.incr();
//! }
//! let snap = autolock_obs::drain();
//! autolock_obs::disable();
//! assert_eq!(snap.counters, vec![("doc.attacks".to_string(), 1)]);
//! assert_eq!(snap.events.len(), 2);
//! // Inner span exits first and nests under the outer path.
//! assert_eq!(snap.events[0].path, "doc.run/doc.stage");
//! assert_eq!(snap.events[1].path, "doc.run");
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod manifest;
pub mod mem;

use std::cell::RefCell;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use serde::Serialize;

/// Default cap on buffered [`SpanEvent`]s per process (aggregates keep
/// counting past it; see [`set_event_cap`]).
pub const DEFAULT_EVENT_CAP: u64 = 100_000;

/// One completed span occurrence, as buffered per thread and merged at
/// [`drain`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SpanEvent {
    /// `/`-joined path of span names from the thread's outermost open span
    /// to this one.
    pub path: String,
    /// Nesting depth on the recording thread (`0` = outermost).
    pub depth: usize,
    /// Registration index of the recording thread (informational; assigned
    /// in first-span order).
    pub thread: u64,
    /// Global exit-order sequence number; [`drain`] sorts by it.
    pub seq: u64,
    /// Span start, nanoseconds since the registry epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// Aggregate statistics of every span that exited with one particular path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// `/`-joined span path.
    pub path: String,
    /// Nesting depth (`0` = top-level on its thread).
    pub depth: usize,
    /// Number of completed spans with this path.
    pub count: u64,
    /// Sum of durations, nanoseconds.
    pub total_ns: u64,
    /// Shortest occurrence, nanoseconds.
    pub min_ns: u64,
    /// Longest occurrence, nanoseconds.
    pub max_ns: u64,
}

/// Everything the registry accumulated, in deterministic order (counters,
/// gauges and span summaries sorted by name; events sorted by global
/// sequence number). Produced by [`drain`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` for every registered counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Per-path span aggregates, sorted by path.
    pub spans: Vec<SpanSummary>,
    /// The merged event stream.
    pub events: Vec<SpanEvent>,
    /// Events discarded because the buffer cap was reached (the aggregates
    /// in `spans` still include them).
    pub events_dropped: u64,
}

/// A handle to a named monotone counter. Cheap to clone; writes are relaxed
/// atomic adds, skipped entirely while the registry is disabled.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Adds `n`. One relaxed load (the enabled check) when disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            if enabled() {
                cell.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 under `noop`).
    pub fn value(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A handle to a named `f64` gauge (last write wins).
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// Sets the gauge. One relaxed load when disabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.cell {
            if enabled() {
                cell.store(v.to_bits(), Ordering::Relaxed);
            }
        }
    }

    /// Current value (0.0 under `noop` or before any `set`).
    pub fn value(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

#[derive(Debug)]
struct SpanAgg {
    depth: usize,
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

struct Registry {
    enabled: AtomicBool,
    epoch: Instant,
    seq: AtomicU64,
    events_stored: AtomicU64,
    events_dropped: AtomicU64,
    event_cap: AtomicU64,
    next_thread: AtomicU64,
    counters: Mutex<HashMap<&'static str, Arc<AtomicU64>>>,
    gauges: Mutex<HashMap<&'static str, Arc<AtomicU64>>>,
    span_aggs: Mutex<HashMap<String, SpanAgg>>,
    buffers: Mutex<Vec<Arc<Mutex<Vec<SpanEvent>>>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        enabled: AtomicBool::new(false),
        epoch: Instant::now(),
        seq: AtomicU64::new(0),
        events_stored: AtomicU64::new(0),
        events_dropped: AtomicU64::new(0),
        event_cap: AtomicU64::new(DEFAULT_EVENT_CAP),
        next_thread: AtomicU64::new(0),
        counters: Mutex::new(HashMap::new()),
        gauges: Mutex::new(HashMap::new()),
        span_aggs: Mutex::new(HashMap::new()),
        buffers: Mutex::new(Vec::new()),
    })
}

struct ThreadState {
    thread: u64,
    stack: Vec<&'static str>,
    buffer: Arc<Mutex<Vec<SpanEvent>>>,
}

thread_local! {
    static STATE: RefCell<Option<ThreadState>> = const { RefCell::new(None) };
}

fn with_thread_state<R>(f: impl FnOnce(&mut ThreadState) -> R) -> Option<R> {
    STATE
        .try_with(|slot| {
            let mut slot = slot.borrow_mut();
            let state = slot.get_or_insert_with(|| {
                let reg = registry();
                let buffer = Arc::new(Mutex::new(Vec::new()));
                reg.buffers.lock().unwrap().push(buffer.clone());
                ThreadState {
                    thread: reg.next_thread.fetch_add(1, Ordering::Relaxed),
                    stack: Vec::new(),
                    buffer,
                }
            });
            f(state)
        })
        .ok()
}

/// Turns recording on. Off by default: library code is instrumented
/// unconditionally and pays only the disabled-site load until a driver (or a
/// test) opts in.
pub fn enable() {
    #[cfg(not(feature = "noop"))]
    registry().enabled.store(true, Ordering::Relaxed);
}

/// Turns recording off.
pub fn disable() {
    #[cfg(not(feature = "noop"))]
    registry().enabled.store(false, Ordering::Relaxed);
}

/// Whether the registry is currently recording.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "noop")]
    {
        false
    }
    #[cfg(not(feature = "noop"))]
    {
        registry().enabled.load(Ordering::Relaxed)
    }
}

/// `true` when the crate was built with the `noop` feature (instrumentation
/// compiled out).
pub const fn is_noop() -> bool {
    cfg!(feature = "noop")
}

/// The counter registered under `name` (created on first use).
pub fn counter(name: &'static str) -> Counter {
    #[cfg(feature = "noop")]
    {
        let _ = name;
        Counter { cell: None }
    }
    #[cfg(not(feature = "noop"))]
    {
        let mut map = registry().counters.lock().unwrap();
        let cell = map
            .entry(name)
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Counter { cell: Some(cell) }
    }
}

/// The gauge registered under `name` (created on first use).
pub fn gauge(name: &'static str) -> Gauge {
    #[cfg(feature = "noop")]
    {
        let _ = name;
        Gauge { cell: None }
    }
    #[cfg(not(feature = "noop"))]
    {
        let mut map = registry().gauges.lock().unwrap();
        let cell = map
            .entry(name)
            .or_insert_with(|| Arc::new(AtomicU64::new(0.0f64.to_bits())))
            .clone();
        Gauge { cell: Some(cell) }
    }
}

/// Caps the number of buffered [`SpanEvent`]s (aggregates are unaffected).
/// Long evolutionary runs produce millions of span exits; the cap bounds
/// trace memory and JSONL size while [`SpanSummary`] stays exact.
pub fn set_event_cap(cap: u64) {
    #[cfg(feature = "noop")]
    let _ = cap;
    #[cfg(not(feature = "noop"))]
    registry().event_cap.store(cap, Ordering::Relaxed);
}

/// An active span; created by [`span`], records on drop. Not `Send`: spans
/// must exit on the thread that opened them (the per-thread stack is what
/// gives events their hierarchical path).
#[must_use = "a span guard records when dropped; binding it to `_` drops it immediately"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
    _not_send: PhantomData<*const ()>,
}

struct ActiveSpan {
    start: Instant,
    start_ns: u64,
    depth: usize,
}

/// Opens a span named `name` on the current thread. While the registry is
/// disabled this is a single relaxed load and the guard is inert.
pub fn span(name: &'static str) -> SpanGuard {
    #[cfg(feature = "noop")]
    {
        let _ = name;
        SpanGuard {
            active: None,
            _not_send: PhantomData,
        }
    }
    #[cfg(not(feature = "noop"))]
    {
        if !enabled() {
            return SpanGuard {
                active: None,
                _not_send: PhantomData,
            };
        }
        let reg = registry();
        let active = with_thread_state(|st| {
            let depth = st.stack.len();
            st.stack.push(name);
            ActiveSpan {
                start: Instant::now(),
                start_ns: reg.epoch.elapsed().as_nanos() as u64,
                depth,
            }
        });
        SpanGuard {
            active,
            _not_send: PhantomData,
        }
    }
}

/// Opens a span: `let _g = span!("attack.score_candidates");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur_ns = active.start.elapsed().as_nanos() as u64;
        let reg = registry();
        with_thread_state(|st| {
            // Scoped guards drop LIFO, so this span is the innermost open
            // one: its name sits at `stack[depth]`. If a caller drops guards
            // out of order (e.g. a `Vec<SpanGuard>` unwinding front-to-back)
            // an ancestor's drop already truncated the stack past us —
            // record nothing rather than panic in a destructor.
            if active.depth >= st.stack.len() {
                reg.events_dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let path = st.stack[..=active.depth].join("/");
            st.stack.truncate(active.depth);

            let mut aggs = reg.span_aggs.lock().unwrap();
            let agg = aggs.entry(path.clone()).or_insert(SpanAgg {
                depth: active.depth,
                count: 0,
                total_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
            });
            agg.count += 1;
            agg.total_ns += dur_ns;
            agg.min_ns = agg.min_ns.min(dur_ns);
            agg.max_ns = agg.max_ns.max(dur_ns);
            drop(aggs);

            if reg.events_stored.load(Ordering::Relaxed) < reg.event_cap.load(Ordering::Relaxed) {
                reg.events_stored.fetch_add(1, Ordering::Relaxed);
                let event = SpanEvent {
                    path,
                    depth: active.depth,
                    thread: st.thread,
                    seq: reg.seq.fetch_add(1, Ordering::Relaxed),
                    start_ns: active.start_ns,
                    dur_ns,
                };
                st.buffer.lock().unwrap().push(event);
            } else {
                reg.events_dropped.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
}

/// Takes everything accumulated since the last [`reset`]/[`drain`] and
/// clears the registry's values (registrations survive, so existing
/// [`Counter`]/[`Gauge`] handles stay valid).
///
/// Call it from a quiescent point — after worker threads have joined and
/// with no spans open — which is where every driver naturally sits when its
/// run guard drops.
pub fn drain() -> Snapshot {
    #[cfg(feature = "noop")]
    {
        Snapshot::default()
    }
    #[cfg(not(feature = "noop"))]
    {
        let reg = registry();

        let mut counters: Vec<(String, u64)> = reg
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, cell)| (name.to_string(), cell.swap(0, Ordering::Relaxed)))
            .collect();
        counters.sort();

        let mut gauges: Vec<(String, f64)> = reg
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(name, cell)| {
                (
                    name.to_string(),
                    f64::from_bits(cell.swap(0.0f64.to_bits(), Ordering::Relaxed)),
                )
            })
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));

        let mut spans: Vec<SpanSummary> = reg
            .span_aggs
            .lock()
            .unwrap()
            .drain()
            .map(|(path, agg)| SpanSummary {
                path,
                depth: agg.depth,
                count: agg.count,
                total_ns: agg.total_ns,
                min_ns: agg.min_ns,
                max_ns: agg.max_ns,
            })
            .collect();
        spans.sort_by(|a, b| a.path.cmp(&b.path));

        let mut events: Vec<SpanEvent> = Vec::new();
        for buffer in reg.buffers.lock().unwrap().iter() {
            events.append(&mut buffer.lock().unwrap());
        }
        events.sort_by_key(|e| e.seq);

        reg.events_stored.store(0, Ordering::Relaxed);
        let events_dropped = reg.events_dropped.swap(0, Ordering::Relaxed);
        reg.seq.store(0, Ordering::Relaxed);

        Snapshot {
            counters,
            gauges,
            spans,
            events,
            events_dropped,
        }
    }
}

/// Clears all accumulated values without reading them.
pub fn reset() {
    let _ = drain();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global and `cargo test` threads run
    /// concurrently, so every test that enables/drains it serializes here.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counters_only_count_while_enabled() {
        let _l = lock();
        reset();
        let c = counter("test.enabled_gate");
        c.add(5);
        assert_eq!(c.value(), 0, "disabled registry must drop writes");
        enable();
        c.add(5);
        c.incr();
        disable();
        c.add(100);
        let snap = drain();
        assert!(snap
            .counters
            .contains(&("test.enabled_gate".to_string(), 6)));
    }

    #[test]
    fn gauges_hold_last_write() {
        let _l = lock();
        reset();
        enable();
        let g = gauge("test.gauge");
        g.set(1.5);
        g.set(-3.25);
        assert_eq!(g.value(), -3.25);
        let snap = drain();
        disable();
        assert!(snap.gauges.contains(&("test.gauge".to_string(), -3.25)));
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let _l = lock();
        reset();
        enable();
        for _ in 0..3 {
            let _outer = span!("test.outer");
            let _inner = span!("test.inner");
        }
        let snap = drain();
        disable();
        assert_eq!(snap.events.len(), 6);
        // Exit order: inner, outer, inner, outer, ...
        assert_eq!(snap.events[0].path, "test.outer/test.inner");
        assert_eq!(snap.events[1].path, "test.outer");
        let inner = snap
            .spans
            .iter()
            .find(|s| s.path == "test.outer/test.inner")
            .unwrap();
        assert_eq!((inner.count, inner.depth), (3, 1));
        assert!(inner.min_ns <= inner.max_ns && inner.total_ns >= inner.max_ns);
        let outer = snap.spans.iter().find(|s| s.path == "test.outer").unwrap();
        assert_eq!((outer.count, outer.depth), (3, 0));
    }

    #[test]
    fn disabled_spans_leave_no_trace() {
        let _l = lock();
        reset();
        {
            let _g = span!("test.disabled");
        }
        enable();
        let snap = drain();
        disable();
        assert!(snap.events.is_empty());
        assert!(snap.spans.iter().all(|s| s.path != "test.disabled"));
    }

    #[test]
    fn out_of_order_drop_is_lossy_but_never_panics() {
        let _l = lock();
        reset();
        enable();
        let outer = span!("test.ooo_outer");
        let inner = span!("test.ooo_inner");
        // Contract violation: the ancestor drops first. The orphaned inner
        // guard must degrade to a counted drop, not a destructor panic.
        drop(outer);
        drop(inner);
        let snap = drain();
        disable();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].path, "test.ooo_outer");
        assert_eq!(snap.events_dropped, 1);
    }

    #[test]
    fn event_cap_drops_events_but_not_aggregates() {
        let _l = lock();
        reset();
        set_event_cap(4);
        enable();
        for _ in 0..10 {
            let _g = span!("test.capped");
        }
        let snap = drain();
        disable();
        set_event_cap(DEFAULT_EVENT_CAP);
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.events_dropped, 6);
        let agg = snap.spans.iter().find(|s| s.path == "test.capped").unwrap();
        assert_eq!(agg.count, 10);
    }

    #[test]
    fn drain_is_deterministically_ordered_and_clearing() {
        let _l = lock();
        reset();
        enable();
        counter("test.z").incr();
        counter("test.a").incr();
        gauge("test.g").set(2.0);
        {
            let _g = span!("test.order");
        }
        let snap = drain();
        disable();
        let names: Vec<&str> = snap
            .counters
            .iter()
            .filter(|(_, v)| *v > 0)
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, vec!["test.a", "test.z"], "sorted by name");
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
        // A second drain starts from zero.
        enable();
        let empty = drain();
        disable();
        assert!(empty.events.is_empty());
        assert!(empty.counters.iter().all(|(_, v)| *v == 0));
    }

    #[test]
    fn cross_thread_events_merge_by_sequence() {
        let _l = lock();
        reset();
        enable();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..5 {
                        let _g = span!("test.worker");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = drain();
        disable();
        assert_eq!(snap.events.len(), 20);
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..20).collect::<Vec<u64>>(), "dense and sorted");
        // Worker spans are top-level on their own threads.
        assert!(snap.events.iter().all(|e| e.depth == 0));
    }
}
