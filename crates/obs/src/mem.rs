//! Process memory probe, generalizing the bench crate's old ad-hoc VmHWM
//! parser: peak RSS, current RSS, and helpers publishing both (plus any
//! pool-occupancy figure a caller owns, e.g. `ScratchPool::retained()`) as
//! registry gauges.

/// A point-in-time memory reading. Fields are `None` where procfs is
/// unavailable (non-Linux dev machines).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemProbe {
    /// Peak resident-set size of this process, mebibytes (`VmHWM`).
    pub peak_rss_mb: Option<f64>,
    /// Current resident-set size, mebibytes (`VmRSS`).
    pub current_rss_mb: Option<f64>,
}

/// Reads both RSS figures from `/proc/self/status`.
pub fn probe() -> MemProbe {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return MemProbe::default();
    };
    MemProbe {
        peak_rss_mb: field_mb(&status, "VmHWM:"),
        current_rss_mb: field_mb(&status, "VmRSS:"),
    }
}

/// Peak resident-set size of this process in mebibytes, self-measured from
/// `/proc/self/status` (`VmHWM`). The value is process-wide and monotone
/// non-decreasing, so in a table whose rows run in one process, each row's
/// number is "the largest footprint any cell needed *so far*" and the final
/// row records the run's peak.
pub fn peak_rss_mb() -> Option<f64> {
    probe().peak_rss_mb
}

/// Current resident-set size in mebibytes (`VmRSS`).
pub fn current_rss_mb() -> Option<f64> {
    probe().current_rss_mb
}

/// Publishes the probe as `mem.peak_rss_mb` / `mem.current_rss_mb` gauges
/// (no-op while the registry is disabled or when procfs is absent).
pub fn record_rss_gauges() {
    if !crate::enabled() {
        return;
    }
    let m = probe();
    if let Some(mb) = m.peak_rss_mb {
        crate::gauge("mem.peak_rss_mb").set(mb);
    }
    if let Some(mb) = m.current_rss_mb {
        crate::gauge("mem.current_rss_mb").set(mb);
    }
}

fn field_mb(status: &str, prefix: &str) -> Option<f64> {
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(prefix) {
            let kb: f64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb / 1024.0);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_reads_positive_rss_on_linux() {
        let m = probe();
        if let Some(peak) = m.peak_rss_mb {
            assert!(peak > 0.0);
            // VmHWM is the high-water mark of VmRSS.
            if let Some(current) = m.current_rss_mb {
                assert!(current > 0.0);
                assert!(peak >= current * 0.5, "peak {peak} vs current {current}");
            }
        }
    }

    #[test]
    fn field_parser_handles_units() {
        let status = "Name:\tx\nVmHWM:\t    2048 kB\nVmRSS:\t    1024 kB\n";
        assert_eq!(field_mb(status, "VmHWM:"), Some(2.0));
        assert_eq!(field_mb(status, "VmRSS:"), Some(1.0));
        assert_eq!(field_mb(status, "VmSwap:"), None);
    }
}
