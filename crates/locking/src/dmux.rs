//! The D-MUX locking scheme (deceptive MUX-based locking).
//!
//! D-MUX [Sisejkovic et al., TCAD 2021] inserts key-controlled pairs of
//! multiplexers between randomly selected wire pairs so that, for every key
//! gate, *both* possible connections are structurally plausible: the scheme is
//! free of the localized structural leakage that earlier schemes exhibited,
//! which makes it resilient against locality-based learning attacks
//! (SnapShot, OMLA). MuxLink later broke it by looking at the *surrounding*
//! fan-in/fan-out structure with a link-prediction GNN — the starting point of
//! the AutoLock paper.
//!
//! This implementation selects wire pairs with one of two strategies and then
//! defers to [`crate::mux::apply_loci`] for the actual insertion, so the
//! result is bit-for-bit the same kind of locked netlist the AutoLock GA
//! produces and both can be attacked by the same code.

use crate::mux::{apply_loci, lockable_wires, MuxPairLocus};
use crate::{LockError, LockedNetlist, LockingScheme, Result};
use autolock_netlist::graph::UndirectedGraph;
use autolock_netlist::{GateId, Netlist};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// How D-MUX chooses the two wires of each MUX pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairSelectionStrategy {
    /// Uniformly random wire pairs (the baseline D-MUX policy).
    Random,
    /// Prefer pairs whose two drivers have the same gate kind, which makes the
    /// decoy connection harder to rule out from local gate-type statistics
    /// (an enhanced, more deceptive policy).
    TypeMatched,
    /// Prefer partner wires whose driver lies within `radius` undirected
    /// hops of the first wire's driver. On structured (datapath) circuits a
    /// uniformly random partner almost always sits in a different functional
    /// block, which makes the decoy edge a give-away long-range jump; a
    /// localized partner lands on the reconvergent nets real designs lock,
    /// which is the regime the link-prediction adversary is actually
    /// trained on. Falls back to random probes when no wire is in range.
    Localized {
        /// Maximum undirected hop distance between the two drivers.
        radius: usize,
    },
}

/// The D-MUX locking scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DMuxLocking {
    /// Wire-pair selection strategy.
    pub strategy: PairSelectionStrategy,
    /// How many random pair candidates to try per key bit before giving up.
    pub max_attempts_per_bit: usize,
}

impl Default for DMuxLocking {
    fn default() -> Self {
        DMuxLocking {
            strategy: PairSelectionStrategy::Random,
            max_attempts_per_bit: 200,
        }
    }
}

impl DMuxLocking {
    /// Creates a D-MUX instance with the given strategy.
    pub fn new(strategy: PairSelectionStrategy) -> Self {
        DMuxLocking {
            strategy,
            ..Default::default()
        }
    }

    /// Selects `key_len` valid, pairwise-disjoint MUX-pair loci on `original`.
    ///
    /// This is exposed separately from [`LockingScheme::lock`] because the
    /// AutoLock population initializer needs raw loci (the genotype), not a
    /// locked netlist.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::KeyTooLong`] if not enough disjoint pairs can be
    /// found.
    pub fn select_loci(
        &self,
        original: &Netlist,
        key_len: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<MuxPairLocus>> {
        let wires = lockable_wires(original);
        if wires.len() < 2 * key_len {
            return Err(LockError::KeyTooLong {
                requested: key_len,
                available: wires.len() / 2,
            });
        }
        // The localized strategy measures driver-to-driver distances on the
        // undirected netlist graph; build it once per selection run.
        let locality_graph = match self.strategy {
            PairSelectionStrategy::Localized { .. } => {
                Some(UndirectedGraph::from_netlist(original))
            }
            _ => None,
        };
        // Incremental reachability view: the original driver→sink edges plus
        // the decoy edges added by already-selected loci. Checking candidates
        // against this view guarantees that `apply_loci` will not hit a cycle.
        let mut extra_edges: HashMap<GateId, Vec<GateId>> = HashMap::new();
        let fanouts = original.fanouts();
        let reachable =
            |extra: &HashMap<GateId, Vec<GateId>>, from: GateId, target: GateId| -> bool {
                if from == target {
                    return true;
                }
                let mut visited = vec![false; original.len()];
                let mut stack = vec![from];
                visited[from.index()] = true;
                while let Some(node) = stack.pop() {
                    let direct = fanouts[node.index()].iter();
                    let added = extra.get(&node).map(|v| v.iter()).unwrap_or_default();
                    for &next in direct.chain(added) {
                        if next == target {
                            return true;
                        }
                        if !visited[next.index()] {
                            visited[next.index()] = true;
                            stack.push(next);
                        }
                    }
                }
                false
            };

        let mut used: HashSet<(GateId, GateId)> = HashSet::new();
        let mut loci = Vec::with_capacity(key_len);
        for _ in 0..key_len {
            let mut found = None;
            for _ in 0..self.max_attempts_per_bit {
                let &(f_i, g_i) = wires.choose(rng).expect("non-empty wire list");
                if used.contains(&(f_i, g_i)) {
                    continue;
                }
                let candidate_j = self.pick_partner(
                    original,
                    locality_graph.as_ref(),
                    &wires,
                    (f_i, g_i),
                    &used,
                    rng,
                );
                let Some((f_j, g_j)) = candidate_j else {
                    continue;
                };
                let locus = MuxPairLocus::new(f_i, g_i, f_j, g_j, rng.gen());
                if locus.validate(original).is_err() {
                    continue;
                }
                // Cycle check against the incrementally extended topology.
                if reachable(&extra_edges, g_i, f_j) || reachable(&extra_edges, g_j, f_i) {
                    continue;
                }
                found = Some(locus);
                break;
            }
            match found {
                Some(locus) => {
                    for w in locus.wires() {
                        used.insert(w);
                    }
                    extra_edges.entry(locus.f_j).or_default().push(locus.g_i);
                    extra_edges.entry(locus.f_i).or_default().push(locus.g_j);
                    loci.push(locus);
                }
                None => {
                    return Err(LockError::KeyTooLong {
                        requested: key_len,
                        available: loci.len(),
                    })
                }
            }
        }
        Ok(loci)
    }

    fn pick_partner(
        &self,
        original: &Netlist,
        locality_graph: Option<&UndirectedGraph>,
        wires: &[(GateId, GateId)],
        first: (GateId, GateId),
        used: &HashSet<(GateId, GateId)>,
        rng: &mut dyn RngCore,
    ) -> Option<(GateId, GateId)> {
        let (f_i, g_i) = first;
        let acceptable = |&(f_j, g_j): &(GateId, GateId)| {
            f_j != f_i && g_j != g_i && !used.contains(&(f_j, g_j))
        };
        // Bounded random probes: the shared O(1)-per-call fallback.
        let random_probe = |rng: &mut dyn RngCore| -> Option<(GateId, GateId)> {
            for _ in 0..32 {
                let cand = *wires.choose(rng)?;
                if acceptable(&cand) {
                    return Some(cand);
                }
            }
            None
        };
        match self.strategy {
            PairSelectionStrategy::Random => random_probe(rng),
            PairSelectionStrategy::TypeMatched => {
                let want_kind = original.gate(f_i).kind;
                let matching: Vec<(GateId, GateId)> = wires
                    .iter()
                    .copied()
                    .filter(|w| acceptable(w) && original.gate(w.0).kind == want_kind)
                    .collect();
                if let Some(&cand) = matching.choose(rng) {
                    return Some(cand);
                }
                // Fall back to any acceptable wire if no type match exists.
                random_probe(rng)
            }
            PairSelectionStrategy::Localized { radius } => {
                let graph = locality_graph.expect("localized strategy builds the graph");
                let ball = graph.bfs_distances(f_i, radius.max(1));
                let matching: Vec<(GateId, GateId)> = wires
                    .iter()
                    .copied()
                    .filter(|w| acceptable(w) && ball.contains_key(&w.0))
                    .collect();
                if let Some(&cand) = matching.choose(rng) {
                    return Some(cand);
                }
                // No in-range partner (isolated corner of the netlist):
                // fall back to any acceptable wire.
                random_probe(rng)
            }
        }
    }
}

impl LockingScheme for DMuxLocking {
    fn name(&self) -> &str {
        "d-mux"
    }

    fn lock(
        &self,
        original: &Netlist,
        key_len: usize,
        rng: &mut dyn RngCore,
    ) -> Result<LockedNetlist> {
        // Selecting loci can, rarely, produce a set whose later members create
        // a cycle only in combination; retry a few times with fresh picks.
        let mut last_err = None;
        for _ in 0..8 {
            let loci = self.select_loci(original, key_len, rng)?;
            match apply_loci(original, &loci) {
                Ok(mut locked) => {
                    locked = LockedNetlist::new(
                        locked.netlist().clone(),
                        locked.key().clone(),
                        locked.provenance().to_vec(),
                        self.name(),
                        original.name(),
                    )?;
                    return Ok(locked);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or(LockError::KeyTooLong {
            requested: key_len,
            available: 0,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolock_circuits::{c17, synth_circuit};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn dmux_locks_c17_and_preserves_function() {
        let original = c17();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let locked = DMuxLocking::default().lock(&original, 3, &mut rng).unwrap();
        assert_eq!(locked.key_len(), 3);
        assert_eq!(locked.scheme(), "d-mux");
        assert!(locked.verify_exhaustive(&original).unwrap());
        // Each key bit adds exactly 2 MUX gates.
        assert_eq!(
            locked.netlist().num_logic_gates(),
            original.num_logic_gates() + 6
        );
    }

    #[test]
    fn dmux_locks_synthetic_circuit() {
        let original = synth_circuit("t", 12, 6, 250, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let locked = DMuxLocking::default()
            .lock(&original, 32, &mut rng)
            .unwrap();
        assert_eq!(locked.key_len(), 32);
        assert!(locked.verify_functional(&original, 8, &mut rng).unwrap());
    }

    #[test]
    fn type_matched_strategy_works() {
        let original = synth_circuit("t", 12, 6, 250, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let scheme = DMuxLocking::new(PairSelectionStrategy::TypeMatched);
        let locked = scheme.lock(&original, 16, &mut rng).unwrap();
        assert!(locked.verify_functional(&original, 8, &mut rng).unwrap());
    }

    #[test]
    fn localized_strategy_keeps_pairs_within_radius() {
        let original = synth_circuit("loc", 16, 8, 400, 13);
        let radius = 4;
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let scheme = DMuxLocking::new(PairSelectionStrategy::Localized { radius });
        let loci = scheme.select_loci(&original, 16, &mut rng).unwrap();
        assert_eq!(loci.len(), 16);
        // The overwhelming majority of pairs must honour the radius (the
        // random fallback only fires when no wire is in range).
        let graph = UndirectedGraph::from_netlist(&original);
        let within = loci
            .iter()
            .filter(|l| graph.bfs_distances(l.f_i, radius).contains_key(&l.f_j))
            .count();
        assert!(
            within >= loci.len() - 2,
            "only {within}/{} pairs within {radius} hops",
            loci.len()
        );
        // And the locking still works end to end.
        let locked = apply_loci(&original, &loci).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        assert!(locked.verify_functional(&original, 8, &mut rng).unwrap());
    }

    #[test]
    fn select_loci_respects_disjointness() {
        let original = synth_circuit("t", 10, 4, 120, 9);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let loci = DMuxLocking::default()
            .select_loci(&original, 16, &mut rng)
            .unwrap();
        assert_eq!(loci.len(), 16);
        let mut wires = HashSet::new();
        for locus in &loci {
            for w in locus.wires() {
                assert!(wires.insert(w), "wire reused across loci");
            }
        }
    }

    #[test]
    fn impossible_key_length_rejected() {
        let original = c17();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert!(matches!(
            DMuxLocking::default().lock(&original, 50, &mut rng),
            Err(LockError::KeyTooLong { .. })
        ));
    }

    #[test]
    fn locking_is_reproducible_with_same_seed() {
        let original = synth_circuit("t", 10, 4, 150, 11);
        let lock = |seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            DMuxLocking::default().lock(&original, 8, &mut rng).unwrap()
        };
        assert_eq!(lock(7).key(), lock(7).key());
        assert_eq!(
            autolock_netlist::write_bench(lock(7).netlist()),
            autolock_netlist::write_bench(lock(7).netlist())
        );
    }
}
