//! Locking keys.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// A locking key: an ordered vector of key bits.
///
/// Bit `i` is the value that must be applied to key input `keyinput{i}` for
/// the locked netlist to behave like the original design.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Key {
    bits: Vec<bool>,
}

impl Key {
    /// Creates a key from bits.
    pub fn new(bits: Vec<bool>) -> Self {
        Key { bits }
    }

    /// Creates an all-zero key of the given length.
    pub fn zeros(len: usize) -> Self {
        Key {
            bits: vec![false; len],
        }
    }

    /// Creates a uniformly random key.
    pub fn random<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Self {
        Key {
            bits: (0..len).map(|_| rng.gen()).collect(),
        }
    }

    /// Number of key bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` if the key has no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The bits as a slice.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Bit accessor returning `None` out of range.
    pub fn get(&self, i: usize) -> Option<bool> {
        self.bits.get(i).copied()
    }

    /// Sets a bit.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, value: bool) {
        self.bits[i] = value;
    }

    /// Flips a bit.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn flip(&mut self, i: usize) {
        self.bits[i] = !self.bits[i];
    }

    /// Appends a bit.
    pub fn push(&mut self, value: bool) {
        self.bits.push(value);
    }

    /// Hamming distance to another key.
    ///
    /// # Panics
    ///
    /// Panics if the keys have different lengths.
    pub fn hamming_distance(&self, other: &Key) -> usize {
        assert_eq!(self.len(), other.len(), "key length mismatch");
        self.bits
            .iter()
            .zip(&other.bits)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Fraction of bits equal to `other` (the "key accuracy" an attack report
    /// uses).
    ///
    /// # Panics
    ///
    /// Panics if the keys have different lengths.
    pub fn agreement(&self, other: &Key) -> f64 {
        if self.is_empty() {
            return 1.0;
        }
        1.0 - self.hamming_distance(other) as f64 / self.len() as f64
    }

    /// Hex representation (most significant bit first, zero-padded nibbles).
    pub fn to_hex(&self) -> String {
        if self.bits.is_empty() {
            return String::from("0");
        }
        let mut out = String::new();
        // Pad to a multiple of 4 on the most significant side.
        let pad = (4 - self.bits.len() % 4) % 4;
        let padded: Vec<bool> = std::iter::repeat_n(false, pad)
            .chain(self.bits.iter().copied())
            .collect();
        for nibble in padded.chunks(4) {
            let v = nibble.iter().fold(0u8, |acc, &b| (acc << 1) | u8::from(b));
            out.push_str(&format!("{v:x}"));
        }
        out
    }

    /// Bit-string representation (`"0101..."`, index 0 first).
    pub fn to_bit_string(&self) -> String {
        self.bits
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect()
    }

    /// Parses a bit string (`'0'`/`'1'` characters, index 0 first).
    pub fn from_bit_string(s: &str) -> Option<Key> {
        let mut bits = Vec::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '0' => bits.push(false),
                '1' => bits.push(true),
                _ => return None,
            }
        }
        Some(Key { bits })
    }
}

impl Index<usize> for Key {
    type Output = bool;

    fn index(&self, index: usize) -> &bool {
        &self.bits[index]
    }
}

impl From<Vec<bool>> for Key {
    fn from(bits: Vec<bool>) -> Self {
        Key { bits }
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_bit_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction_and_access() {
        let mut k = Key::zeros(4);
        assert_eq!(k.len(), 4);
        assert!(!k[2]);
        k.set(2, true);
        assert!(k[2]);
        k.flip(2);
        assert!(!k[2]);
        assert_eq!(k.get(9), None);
        k.push(true);
        assert_eq!(k.len(), 5);
    }

    #[test]
    fn hamming_and_agreement() {
        let a = Key::from_bit_string("0101").unwrap();
        let b = Key::from_bit_string("0011").unwrap();
        assert_eq!(a.hamming_distance(&b), 2);
        assert!((a.agreement(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.agreement(&a), 1.0);
        assert_eq!(Key::default().agreement(&Key::default()), 1.0);
    }

    #[test]
    fn hex_and_bit_string() {
        let k = Key::from_bit_string("1010").unwrap();
        assert_eq!(k.to_hex(), "a");
        assert_eq!(k.to_bit_string(), "1010");
        assert_eq!(k.to_string(), "1010");
        let k = Key::from_bit_string("110101").unwrap(); // padded to 00110101
        assert_eq!(k.to_hex(), "35");
        assert_eq!(Key::zeros(0).to_hex(), "0");
        assert!(Key::from_bit_string("10x1").is_none());
    }

    #[test]
    fn random_keys_are_seeded() {
        let mut r1 = ChaCha8Rng::seed_from_u64(9);
        let mut r2 = ChaCha8Rng::seed_from_u64(9);
        assert_eq!(Key::random(32, &mut r1), Key::random(32, &mut r2));
        let mut r3 = ChaCha8Rng::seed_from_u64(10);
        assert_ne!(Key::random(64, &mut r1), Key::random(64, &mut r3));
    }

    #[test]
    #[should_panic(expected = "key length mismatch")]
    fn hamming_length_mismatch_panics() {
        Key::zeros(2).hamming_distance(&Key::zeros(3));
    }
}
