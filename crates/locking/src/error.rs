//! Error type for locking operations.

use autolock_netlist::{GateId, NetlistError};
use std::fmt;

/// Errors produced while locking a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// The requested key length cannot be realized on this netlist (e.g. not
    /// enough lockable wires or pairs).
    KeyTooLong {
        /// Requested key length.
        requested: usize,
        /// Maximum length the scheme could realize.
        available: usize,
    },
    /// A MUX-pair locus is structurally invalid.
    InvalidLocus {
        /// Human-readable reason.
        reason: String,
    },
    /// Applying a locus would create a combinational cycle.
    WouldCreateCycle {
        /// The sink gate of the offending new connection.
        sink: GateId,
        /// The driver gate of the offending new connection.
        driver: GateId,
    },
    /// The provided key has the wrong length.
    KeyLengthMismatch {
        /// Expected number of key bits.
        expected: usize,
        /// Provided number of key bits.
        got: usize,
    },
    /// An underlying netlist operation failed.
    Netlist(NetlistError),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::KeyTooLong {
                requested,
                available,
            } => write!(
                f,
                "requested key length {requested} exceeds the {available} lockable locations"
            ),
            LockError::InvalidLocus { reason } => write!(f, "invalid locking locus: {reason}"),
            LockError::WouldCreateCycle { sink, driver } => write!(
                f,
                "inserting a mux feeding {sink} from {driver} would create a combinational cycle"
            ),
            LockError::KeyLengthMismatch { expected, got } => {
                write!(f, "expected a key of {expected} bits, got {got}")
            }
            LockError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for LockError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LockError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for LockError {
    fn from(e: NetlistError) -> Self {
        LockError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = LockError::KeyTooLong {
            requested: 64,
            available: 10,
        };
        assert!(e.to_string().contains("64"));
        let e = LockError::Netlist(NetlistError::UnknownSignal("x".into()));
        assert!(e.source().is_some());
        let e = LockError::KeyLengthMismatch {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains('4'));
    }
}
