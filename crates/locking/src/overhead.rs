//! Structural overhead model.
//!
//! The published evaluations report area / power / delay overhead from a
//! synthesis tool. This repository substitutes structural proxies that
//! preserve the *relative* comparison between schemes:
//!
//! * **area** — logic-gate count,
//! * **delay** — logic depth (longest input→output path),
//! * **power** — total switching-activity proxy `Σ p·(1−p)` over all gates,
//!   where `p` is the simulated signal probability under the correct key.

use crate::{LockedNetlist, Result};
use autolock_netlist::{sim, topo, Netlist};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Overhead of a locked netlist relative to its original design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Design name.
    pub design: String,
    /// Locking scheme name.
    pub scheme: String,
    /// Key length.
    pub key_len: usize,
    /// Logic-gate count of the original design.
    pub original_gates: usize,
    /// Logic-gate count of the locked design.
    pub locked_gates: usize,
    /// Logic depth of the original design.
    pub original_depth: usize,
    /// Logic depth of the locked design.
    pub locked_depth: usize,
    /// Switching-activity proxy of the original design.
    pub original_switching: f64,
    /// Switching-activity proxy of the locked design (correct key applied).
    pub locked_switching: f64,
}

impl OverheadReport {
    /// Relative area overhead in percent.
    pub fn area_overhead_pct(&self) -> f64 {
        percent(self.original_gates as f64, self.locked_gates as f64)
    }

    /// Relative delay (depth) overhead in percent.
    pub fn delay_overhead_pct(&self) -> f64 {
        percent(self.original_depth as f64, self.locked_depth as f64)
    }

    /// Relative power (switching) overhead in percent.
    pub fn power_overhead_pct(&self) -> f64 {
        percent(self.original_switching, self.locked_switching)
    }
}

fn percent(original: f64, locked: f64) -> f64 {
    if original <= 0.0 {
        return 0.0;
    }
    (locked - original) / original * 100.0
}

/// Switching-activity proxy of a netlist: `Σ p·(1−p)` over all gates, with
/// signal probabilities estimated from `rounds × 64` random patterns.
pub fn switching_activity<R: Rng + ?Sized>(
    nl: &Netlist,
    key_bits: &[bool],
    rounds: usize,
    rng: &mut R,
) -> Result<f64> {
    let probs = sim::signal_probabilities(nl, key_bits, rounds, rng)?;
    Ok(probs.iter().map(|p| p * (1.0 - p)).sum())
}

/// Computes the full overhead report of a locked netlist.
///
/// # Errors
///
/// Propagates simulation errors (invalid netlists, wrong key sizes).
pub fn overhead_report<R: Rng + ?Sized>(
    original: &Netlist,
    locked: &LockedNetlist,
    rounds: usize,
    rng: &mut R,
) -> Result<OverheadReport> {
    Ok(OverheadReport {
        design: original.name().to_string(),
        scheme: locked.scheme().to_string(),
        key_len: locked.key_len(),
        original_gates: original.num_logic_gates(),
        locked_gates: locked.netlist().num_logic_gates(),
        original_depth: topo::depth(original)?,
        locked_depth: topo::depth(locked.netlist())?,
        original_switching: switching_activity(original, &[], rounds, rng)?,
        locked_switching: switching_activity(locked.netlist(), locked.key().bits(), rounds, rng)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DMuxLocking, LockingScheme, XorLocking};
    use autolock_circuits::c17;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn overhead_grows_with_key_length() {
        let original = c17();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let small = DMuxLocking::default().lock(&original, 1, &mut rng).unwrap();
        let large = DMuxLocking::default().lock(&original, 3, &mut rng).unwrap();
        let r_small = overhead_report(&original, &small, 4, &mut rng).unwrap();
        let r_large = overhead_report(&original, &large, 4, &mut rng).unwrap();
        assert!(r_large.area_overhead_pct() > r_small.area_overhead_pct());
        assert!(r_small.area_overhead_pct() > 0.0);
        assert_eq!(r_small.original_gates, 6);
        assert_eq!(r_small.locked_gates, 8);
    }

    #[test]
    fn mux_pair_costs_two_gates_per_bit_xor_costs_one() {
        let original = c17();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let dmux = DMuxLocking::default().lock(&original, 2, &mut rng).unwrap();
        let xor = XorLocking::default().lock(&original, 2, &mut rng).unwrap();
        let r_dmux = overhead_report(&original, &dmux, 4, &mut rng).unwrap();
        let r_xor = overhead_report(&original, &xor, 4, &mut rng).unwrap();
        assert_eq!(r_dmux.locked_gates - r_dmux.original_gates, 4);
        assert_eq!(r_xor.locked_gates - r_xor.original_gates, 2);
        assert!(r_dmux.area_overhead_pct() > r_xor.area_overhead_pct());
    }

    #[test]
    fn percentages_are_finite_and_signed_correctly() {
        let r = OverheadReport {
            design: "d".into(),
            scheme: "s".into(),
            key_len: 2,
            original_gates: 100,
            locked_gates: 110,
            original_depth: 10,
            locked_depth: 11,
            original_switching: 20.0,
            locked_switching: 22.0,
        };
        assert!((r.area_overhead_pct() - 10.0).abs() < 1e-9);
        assert!((r.delay_overhead_pct() - 10.0).abs() < 1e-9);
        assert!((r.power_overhead_pct() - 10.0).abs() < 1e-9);
        let zero = OverheadReport {
            original_gates: 0,
            ..r
        };
        assert_eq!(zero.area_overhead_pct(), 0.0);
    }

    #[test]
    fn switching_activity_positive_for_real_circuits() {
        let original = c17();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let sw = switching_activity(&original, &[], 8, &mut rng).unwrap();
        assert!(sw > 0.0);
    }
}
