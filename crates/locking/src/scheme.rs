//! The [`LockingScheme`] trait.

use crate::{LockedNetlist, Result};
use autolock_netlist::Netlist;
use rand::RngCore;

/// A logic-locking scheme: something that can lock a netlist with a key of a
/// requested length.
///
/// The trait is object safe so experiment harnesses can iterate over a
/// heterogeneous list of schemes.
pub trait LockingScheme {
    /// Short, stable identifier used in result tables (e.g. `"xor-rll"`,
    /// `"d-mux"`, `"autolock"`).
    fn name(&self) -> &str;

    /// Locks `original` with `key_len` key bits.
    ///
    /// # Errors
    ///
    /// Implementations return [`crate::LockError::KeyTooLong`] when the
    /// netlist cannot accommodate the requested key length, or other
    /// [`crate::LockError`] variants for structural failures.
    fn lock(
        &self,
        original: &Netlist,
        key_len: usize,
        rng: &mut dyn RngCore,
    ) -> Result<LockedNetlist>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DMuxLocking, XorLocking};

    #[test]
    fn schemes_are_object_safe() {
        let schemes: Vec<Box<dyn LockingScheme>> = vec![
            Box::new(XorLocking::default()),
            Box::new(DMuxLocking::default()),
        ];
        let names: Vec<&str> = schemes.iter().map(|s| s.name()).collect();
        assert!(names.contains(&"xor-rll"));
        assert!(names.contains(&"d-mux"));
    }
}
