//! MUX-pair insertion: the shared primitive behind D-MUX and AutoLock.
//!
//! A [`MuxPairLocus`] is exactly the genotype element of the AutoLock paper:
//! the tuple `{f_i, f_j, g_i, g_j, k}`. It names two *true wires* of the
//! original design — `f_i → g_i` and `f_j → g_j` — and a key-bit value `k`.
//! Applying the locus inserts two multiplexers sharing one key input:
//!
//! ```text
//!   g_i reads MUX(key, ...) choosing between f_i (true) and f_j (decoy)
//!   g_j reads MUX(key, ...) choosing between f_j (true) and f_i (decoy)
//! ```
//!
//! The MUX input order is arranged so that the *correct* key value `k` selects
//! the true wires; with the wrong key value both sinks read the decoy wires
//! and the circuit misbehaves.

use crate::{Key, KeyGateProvenance, LockError, LockedNetlist, Result};
use autolock_netlist::{topo, GateId, GateKind, Netlist};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One MUX-pair locking location: the AutoLock genotype element
/// `{f_i, f_j, g_i, g_j, k}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MuxPairLocus {
    /// True driver of `g_i`.
    pub f_i: GateId,
    /// Sink that originally reads `f_i`.
    pub g_i: GateId,
    /// True driver of `g_j`.
    pub f_j: GateId,
    /// Sink that originally reads `f_j`.
    pub g_j: GateId,
    /// Correct value of the key bit controlling this pair.
    pub key_bit: bool,
}

impl MuxPairLocus {
    /// Creates a locus.
    pub fn new(f_i: GateId, g_i: GateId, f_j: GateId, g_j: GateId, key_bit: bool) -> Self {
        MuxPairLocus {
            f_i,
            g_i,
            f_j,
            g_j,
            key_bit,
        }
    }

    /// The two true wires `(driver, sink)` covered by this locus.
    pub fn wires(&self) -> [(GateId, GateId); 2] {
        [(self.f_i, self.g_i), (self.f_j, self.g_j)]
    }

    /// Checks the locus against the original netlist: wires must exist, the
    /// drivers must differ, the sinks must differ and must be logic gates.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::InvalidLocus`] describing the violated rule.
    pub fn validate(&self, original: &Netlist) -> Result<()> {
        let check_gate = |id: GateId| -> Result<()> {
            original
                .try_gate(id)
                .map(|_| ())
                .map_err(|_| LockError::InvalidLocus {
                    reason: format!("gate {id} does not exist"),
                })
        };
        check_gate(self.f_i)?;
        check_gate(self.f_j)?;
        check_gate(self.g_i)?;
        check_gate(self.g_j)?;
        if self.f_i == self.f_j {
            return Err(LockError::InvalidLocus {
                reason: "the two drivers must differ".into(),
            });
        }
        if self.g_i == self.g_j {
            return Err(LockError::InvalidLocus {
                reason: "the two sinks must differ".into(),
            });
        }
        for (f, g) in self.wires() {
            let sink = original.gate(g);
            if sink.kind.is_input() || sink.kind.is_constant() {
                return Err(LockError::InvalidLocus {
                    reason: format!("sink {g} is not a logic gate"),
                });
            }
            if original.gate(f).kind == GateKind::KeyInput {
                return Err(LockError::InvalidLocus {
                    reason: format!("driver {f} is a key input"),
                });
            }
            if !sink.fanin.contains(&f) {
                return Err(LockError::InvalidLocus {
                    reason: format!("wire {f} -> {g} does not exist in the original netlist"),
                });
            }
        }
        Ok(())
    }
}

/// All wires `(driver, sink)` of a netlist that a MUX pair may legally cover:
/// the sink is a logic gate lying in the fan-in cone of at least one primary
/// output (locking dead logic would have no observable effect), and the driver
/// is not a key input.
pub fn lockable_wires(nl: &Netlist) -> Vec<(GateId, GateId)> {
    // Gates that can influence a primary output (reverse reachability).
    let mut live = vec![false; nl.len()];
    let mut stack: Vec<GateId> = nl.outputs().to_vec();
    for &o in nl.outputs() {
        live[o.index()] = true;
    }
    while let Some(id) = stack.pop() {
        for &f in &nl.gate(id).fanin {
            if !live[f.index()] {
                live[f.index()] = true;
                stack.push(f);
            }
        }
    }

    let mut wires = Vec::new();
    let mut seen = HashSet::new();
    for (id, gate) in nl.iter() {
        if gate.kind.is_input() || gate.kind.is_constant() || !live[id.index()] {
            continue;
        }
        for &f in &gate.fanin {
            if nl.gate(f).kind == GateKind::KeyInput {
                continue;
            }
            if seen.insert((f, id)) {
                wires.push((f, id));
            }
        }
    }
    wires
}

/// Applies a list of MUX-pair loci to `original`, producing a locked netlist.
///
/// Key input `keyinput{idx}` controls locus `idx`; the correct key is the
/// concatenation of every locus' `key_bit`.
///
/// # Errors
///
/// * [`LockError::InvalidLocus`] if a locus fails [`MuxPairLocus::validate`]
///   or two loci lock the same true wire,
/// * [`LockError::WouldCreateCycle`] if applying a locus would create a
///   combinational cycle.
pub fn apply_loci(original: &Netlist, loci: &[MuxPairLocus]) -> Result<LockedNetlist> {
    // Validate individually and check for duplicate true wires.
    let mut used_wires: HashSet<(GateId, GateId)> = HashSet::new();
    for locus in loci {
        locus.validate(original)?;
        for wire in locus.wires() {
            if !used_wires.insert(wire) {
                return Err(LockError::InvalidLocus {
                    reason: format!(
                        "wire {} -> {} is locked by more than one locus",
                        wire.0, wire.1
                    ),
                });
            }
        }
    }

    let mut locked = original.clone();
    locked.set_name(format!("{}_muxlocked_k{}", original.name(), loci.len()));
    let mut key = Key::zeros(0);
    let mut provenance = Vec::with_capacity(loci.len());

    for (idx, locus) in loci.iter().enumerate() {
        // Cycle check on the netlist built so far: the new MUX feeding g_i
        // introduces a path f_j -> g_i, so no path g_i -> f_j may exist (and
        // symmetrically for g_j / f_i).
        if topo::is_reachable(&locked, locus.g_i, locus.f_j) {
            return Err(LockError::WouldCreateCycle {
                sink: locus.g_i,
                driver: locus.f_j,
            });
        }
        if topo::is_reachable(&locked, locus.g_j, locus.f_i) {
            return Err(LockError::WouldCreateCycle {
                sink: locus.g_j,
                driver: locus.f_i,
            });
        }

        let key_name = locked.fresh_name(&format!("keyinput{idx}"));
        let key_gate = locked.add_key_input(key_name)?;

        // Input order: position 1 is selected when key = 0, position 2 when
        // key = 1. The correct key value must select the true driver.
        let (mux_i_in0, mux_i_in1) = if locus.key_bit {
            (locus.f_j, locus.f_i)
        } else {
            (locus.f_i, locus.f_j)
        };
        let (mux_j_in0, mux_j_in1) = if locus.key_bit {
            (locus.f_i, locus.f_j)
        } else {
            (locus.f_j, locus.f_i)
        };

        let mux_i = locked.add_gate(
            locked.fresh_name(&format!("mux_{idx}_a")),
            GateKind::Mux,
            vec![key_gate, mux_i_in0, mux_i_in1],
        )?;
        let mux_j = locked.add_gate(
            locked.fresh_name(&format!("mux_{idx}_b")),
            GateKind::Mux,
            vec![key_gate, mux_j_in0, mux_j_in1],
        )?;

        let replaced_i = locked.replace_fanin(locus.g_i, locus.f_i, mux_i)?;
        let replaced_j = locked.replace_fanin(locus.g_j, locus.f_j, mux_j)?;
        debug_assert!(replaced_i >= 1 && replaced_j >= 1);

        key.push(locus.key_bit);
        provenance.push(KeyGateProvenance::MuxPair {
            key_bit: idx,
            mux_i,
            mux_j,
            f_i: locus.f_i,
            f_j: locus.f_j,
            g_i: locus.g_i,
            g_j: locus.g_j,
            key_value: locus.key_bit,
        });
    }

    locked.validate()?;
    LockedNetlist::new(locked, key, provenance, "mux-pair", original.name())
}

/// Extracts the loci that produced a MUX-locked netlist from its provenance.
/// This is the inverse of [`apply_loci`] and is what the AutoLock genotype
/// encoder uses to seed the initial population from a D-MUX-locked netlist.
pub fn loci_from_provenance(locked: &LockedNetlist) -> Vec<MuxPairLocus> {
    locked
        .provenance()
        .iter()
        .filter_map(|p| match *p {
            KeyGateProvenance::MuxPair {
                f_i,
                f_j,
                g_i,
                g_j,
                key_value,
                ..
            } => Some(MuxPairLocus::new(f_i, g_i, f_j, g_j, key_value)),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolock_circuits::c17;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn c17_wire(nl: &Netlist, driver: &str, sink: &str) -> (GateId, GateId) {
        (nl.find(driver).unwrap(), nl.find(sink).unwrap())
    }

    #[test]
    fn lockable_wires_of_c17() {
        let nl = c17();
        let wires = lockable_wires(&nl);
        // c17 has 6 NAND gates with 2 fan-ins each = 12 wires.
        assert_eq!(wires.len(), 12);
        assert!(wires.iter().all(|(_, g)| !nl.gate(*g).kind.is_input()));
    }

    #[test]
    fn apply_single_locus_preserves_function_with_correct_key() {
        let original = c17();
        let (f_i, g_i) = c17_wire(&original, "G10gat", "G22gat");
        let (f_j, g_j) = c17_wire(&original, "G11gat", "G16gat");
        for key_bit in [false, true] {
            let locus = MuxPairLocus::new(f_i, g_i, f_j, g_j, key_bit);
            let locked = apply_loci(&original, &[locus]).unwrap();
            assert_eq!(locked.key_len(), 1);
            assert_eq!(locked.key().bits(), &[key_bit]);
            assert!(locked.verify_exhaustive(&original).unwrap());
            // The wrong key must corrupt at least one output pattern.
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let wrong = Key::new(vec![!key_bit]);
            let corruption = locked
                .corruption_under_key(&original, &wrong, 4, &mut rng)
                .unwrap();
            assert!(corruption > 0.0, "wrong key should corrupt outputs");
        }
    }

    #[test]
    fn apply_multiple_loci() {
        let original = c17();
        let l1 = {
            let (f_i, g_i) = c17_wire(&original, "G10gat", "G22gat");
            let (f_j, g_j) = c17_wire(&original, "G19gat", "G23gat");
            MuxPairLocus::new(f_i, g_i, f_j, g_j, true)
        };
        let l2 = {
            let (f_i, g_i) = c17_wire(&original, "G1gat", "G10gat");
            let (f_j, g_j) = c17_wire(&original, "G2gat", "G16gat");
            MuxPairLocus::new(f_i, g_i, f_j, g_j, false)
        };
        let locked = apply_loci(&original, &[l1, l2]).unwrap();
        assert_eq!(locked.key_len(), 2);
        assert_eq!(locked.netlist().num_key_inputs(), 2);
        assert!(locked.verify_exhaustive(&original).unwrap());
        // Round-trip through provenance.
        let loci = loci_from_provenance(&locked);
        assert_eq!(loci, vec![l1, l2]);
    }

    #[test]
    fn invalid_loci_are_rejected() {
        let original = c17();
        let g10 = original.find("G10gat").unwrap();
        let g22 = original.find("G22gat").unwrap();
        let g11 = original.find("G11gat").unwrap();
        let g16 = original.find("G16gat").unwrap();
        let g1 = original.find("G1gat").unwrap();

        // Same driver twice.
        let bad = MuxPairLocus::new(g10, g22, g10, g16, false);
        assert!(matches!(
            apply_loci(&original, &[bad]),
            Err(LockError::InvalidLocus { .. })
        ));
        // Same sink twice.
        let bad = MuxPairLocus::new(g10, g22, g11, g22, false);
        assert!(matches!(
            apply_loci(&original, &[bad]),
            Err(LockError::InvalidLocus { .. })
        ));
        // Wire does not exist (G1 does not drive G22).
        let bad = MuxPairLocus::new(g1, g22, g11, g16, false);
        assert!(matches!(
            apply_loci(&original, &[bad]),
            Err(LockError::InvalidLocus { .. })
        ));
        // Sink is an input.
        let bad = MuxPairLocus::new(g10, g1, g11, g16, false);
        assert!(matches!(
            apply_loci(&original, &[bad]),
            Err(LockError::InvalidLocus { .. })
        ));
        // Duplicate wire across loci.
        let l1 = MuxPairLocus::new(g10, g22, g11, g16, false);
        let l2 = MuxPairLocus::new(g10, g22, g11, g16, true);
        assert!(matches!(
            apply_loci(&original, &[l1, l2]),
            Err(LockError::InvalidLocus { .. })
        ));
    }

    #[test]
    fn cycle_creation_is_rejected() {
        // Chain: a -> x -> y -> z. Pairing wire (a->x) with wire (y->z) adds
        // the decoy edge y -> x, and x already reaches y: cycle.
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_gate("x", GateKind::And, vec![a, b]).unwrap();
        let y = nl.add_gate("y", GateKind::Not, vec![x]).unwrap();
        let z = nl.add_gate("z", GateKind::Or, vec![y, b]).unwrap();
        nl.mark_output(z);
        let locus = MuxPairLocus::new(a, x, y, z, false);
        assert!(matches!(
            apply_loci(&nl, &[locus]),
            Err(LockError::WouldCreateCycle { .. })
        ));
    }

    #[test]
    fn mux_input_order_encodes_key_bit() {
        let original = c17();
        let (f_i, g_i) = c17_wire(&original, "G10gat", "G22gat");
        let (f_j, g_j) = c17_wire(&original, "G11gat", "G16gat");
        // key_bit = false -> true driver sits at MUX position 1 (selected by 0).
        let locked =
            apply_loci(&original, &[MuxPairLocus::new(f_i, g_i, f_j, g_j, false)]).unwrap();
        if let KeyGateProvenance::MuxPair { mux_i, .. } = locked.provenance()[0] {
            let mux_gate = locked.netlist().gate(mux_i);
            assert_eq!(mux_gate.fanin[1], f_i);
            assert_eq!(mux_gate.fanin[2], f_j);
        } else {
            panic!("expected mux provenance");
        }
        // key_bit = true -> true driver sits at MUX position 2 (selected by 1).
        let locked = apply_loci(&original, &[MuxPairLocus::new(f_i, g_i, f_j, g_j, true)]).unwrap();
        if let KeyGateProvenance::MuxPair { mux_i, .. } = locked.provenance()[0] {
            let mux_gate = locked.netlist().gate(mux_i);
            assert_eq!(mux_gate.fanin[1], f_j);
            assert_eq!(mux_gate.fanin[2], f_i);
        } else {
            panic!("expected mux provenance");
        }
    }
}
