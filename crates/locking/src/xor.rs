//! Random XOR/XNOR logic locking (RLL / EPIC style).
//!
//! The oldest combinational locking scheme: splice an XOR or XNOR key gate
//! into randomly chosen wires. An XOR gate is transparent when its key bit is
//! 0, an XNOR gate when its key bit is 1, so the inserted gate type is chosen
//! to match a randomly drawn correct key bit. This is the classic baseline
//! that ML attacks (SnapShot, OMLA) broke, included here as the weakest
//! member of the scheme comparison (experiment E4).

use crate::mux::lockable_wires;
use crate::{Key, KeyGateProvenance, LockError, LockedNetlist, LockingScheme, Result};
use autolock_netlist::{GateKind, Netlist};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Random XOR/XNOR locking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct XorLocking {
    /// If `true`, only wires between two logic gates are locked (primary-input
    /// wires are excluded). Excluding input wires matches the common practice
    /// of keeping the interface untouched.
    pub exclude_input_wires: bool,
}

impl LockingScheme for XorLocking {
    fn name(&self) -> &str {
        "xor-rll"
    }

    fn lock(
        &self,
        original: &Netlist,
        key_len: usize,
        rng: &mut dyn RngCore,
    ) -> Result<LockedNetlist> {
        let mut wires = lockable_wires(original);
        if self.exclude_input_wires {
            wires.retain(|(f, _)| !original.gate(*f).kind.is_input());
        }
        if wires.len() < key_len {
            return Err(LockError::KeyTooLong {
                requested: key_len,
                available: wires.len(),
            });
        }
        wires.shuffle(rng);
        let chosen = &wires[..key_len];

        let mut locked = original.clone();
        locked.set_name(format!("{}_xor_k{}", original.name(), key_len));
        let mut key = Key::zeros(0);
        let mut provenance = Vec::with_capacity(key_len);

        for (idx, &(driver, sink)) in chosen.iter().enumerate() {
            let key_bit: bool = rng.gen();
            let key_input = locked.add_key_input(locked.fresh_name(&format!("keyinput{idx}")))?;
            let kind = if key_bit {
                GateKind::Xnor
            } else {
                GateKind::Xor
            };
            let key_gate = locked.add_gate(
                locked.fresh_name(&format!("keygate{idx}")),
                kind,
                vec![driver, key_input],
            )?;
            locked.replace_fanin(sink, driver, key_gate)?;
            key.push(key_bit);
            provenance.push(KeyGateProvenance::Xor {
                key_bit: idx,
                key_gate,
                driver,
                sink,
                xnor: key_bit,
            });
        }
        locked.validate()?;
        LockedNetlist::new(locked, key, provenance, self.name(), original.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolock_circuits::c17;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn xor_locking_preserves_function_with_correct_key() {
        let original = c17();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let locked = XorLocking::default().lock(&original, 4, &mut rng).unwrap();
        assert_eq!(locked.key_len(), 4);
        assert_eq!(locked.netlist().num_key_inputs(), 4);
        assert!(locked.verify_exhaustive(&original).unwrap());
        assert_eq!(
            locked.netlist().num_logic_gates(),
            original.num_logic_gates() + 4
        );
    }

    #[test]
    fn wrong_key_corrupts_outputs() {
        let original = c17();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let locked = XorLocking::default().lock(&original, 4, &mut rng).unwrap();
        // Flipping every key bit definitely corrupts something in c17.
        let mut wrong = locked.key().clone();
        for i in 0..wrong.len() {
            wrong.flip(i);
        }
        let corruption = locked
            .corruption_under_key(&original, &wrong, 8, &mut rng)
            .unwrap();
        assert!(corruption > 0.0);
    }

    #[test]
    fn gate_type_matches_key_bit() {
        let original = c17();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let locked = XorLocking::default().lock(&original, 6, &mut rng).unwrap();
        for p in locked.provenance() {
            if let KeyGateProvenance::Xor {
                key_bit,
                key_gate,
                xnor,
                ..
            } = *p
            {
                let kind = locked.netlist().gate(key_gate).kind;
                assert_eq!(locked.key().get(key_bit), Some(xnor));
                assert_eq!(kind == GateKind::Xnor, xnor);
            } else {
                panic!("expected xor provenance");
            }
        }
    }

    #[test]
    fn too_long_key_rejected() {
        let original = c17();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let result = XorLocking::default().lock(&original, 100, &mut rng);
        assert!(matches!(result, Err(LockError::KeyTooLong { .. })));
    }

    #[test]
    fn exclude_input_wires_reduces_candidates() {
        let original = c17();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let scheme = XorLocking {
            exclude_input_wires: true,
        };
        // c17 has 12 wires total, 6 of them driven by primary inputs -> 6 left.
        assert!(scheme.lock(&original, 6, &mut rng).is_ok());
        assert!(matches!(
            scheme.lock(&original, 7, &mut rng),
            Err(LockError::KeyTooLong { .. })
        ));
    }
}
