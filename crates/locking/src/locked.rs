//! The [`LockedNetlist`] container.

use crate::{Key, LockError, Result};
use autolock_netlist::{equiv, GateId, Netlist};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Ground-truth provenance of one key bit inserted by a locking scheme.
///
/// Provenance is *never* consulted by attacks to make decisions; it exists so
/// experiments can score an attack's key guess against the truth.
///
/// Gate ids refer to the locked netlist. Because locking only appends gates to
/// a clone of the original netlist, ids of original gates are identical in
/// both netlists.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeyGateProvenance {
    /// An XOR/XNOR key gate spliced into the wire `driver → sink`.
    Xor {
        /// Index of the key bit controlling this gate.
        key_bit: usize,
        /// The inserted XOR/XNOR gate.
        key_gate: GateId,
        /// Original driver of the locked wire.
        driver: GateId,
        /// Original sink of the locked wire.
        sink: GateId,
        /// `true` if the inserted gate is an XNOR (correct key bit is 1).
        xnor: bool,
    },
    /// A pair of MUX key gates covering the wires `f_i → g_i` and `f_j → g_j`.
    MuxPair {
        /// Index of the (shared) key bit controlling both MUXes.
        key_bit: usize,
        /// The MUX now driving `g_i`.
        mux_i: GateId,
        /// The MUX now driving `g_j`.
        mux_j: GateId,
        /// True driver of `g_i` in the original design.
        f_i: GateId,
        /// True driver of `g_j` in the original design.
        f_j: GateId,
        /// Sink whose input was replaced by `mux_i`.
        g_i: GateId,
        /// Sink whose input was replaced by `mux_j`.
        g_j: GateId,
        /// Correct value of the key bit.
        key_value: bool,
    },
}

impl KeyGateProvenance {
    /// The key-bit index this provenance entry describes.
    pub fn key_bit(&self) -> usize {
        match self {
            KeyGateProvenance::Xor { key_bit, .. } => *key_bit,
            KeyGateProvenance::MuxPair { key_bit, .. } => *key_bit,
        }
    }
}

/// A locked netlist: the circuit with key inputs, the correct key and the
/// provenance of every key gate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LockedNetlist {
    netlist: Netlist,
    key: Key,
    provenance: Vec<KeyGateProvenance>,
    scheme: String,
    original_name: String,
}

impl LockedNetlist {
    /// Assembles a locked netlist. Intended for locking-scheme implementors.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::KeyLengthMismatch`] if the number of key inputs in
    /// `netlist` does not match `key.len()`.
    pub fn new(
        netlist: Netlist,
        key: Key,
        provenance: Vec<KeyGateProvenance>,
        scheme: impl Into<String>,
        original_name: impl Into<String>,
    ) -> Result<Self> {
        if netlist.num_key_inputs() != key.len() {
            return Err(LockError::KeyLengthMismatch {
                expected: netlist.num_key_inputs(),
                got: key.len(),
            });
        }
        Ok(LockedNetlist {
            netlist,
            key,
            provenance,
            scheme: scheme.into(),
            original_name: original_name.into(),
        })
    }

    /// The locked circuit.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The correct key.
    pub fn key(&self) -> &Key {
        &self.key
    }

    /// Ground-truth provenance of every key gate.
    pub fn provenance(&self) -> &[KeyGateProvenance] {
        &self.provenance
    }

    /// Name of the scheme that produced this locked netlist.
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// Name of the original (unlocked) design.
    pub fn original_name(&self) -> &str {
        &self.original_name
    }

    /// Key length.
    pub fn key_len(&self) -> usize {
        self.key.len()
    }

    /// Randomized functional-equivalence check against the original design
    /// under the correct key (`rounds` × 64 random patterns).
    ///
    /// # Errors
    ///
    /// Propagates interface mismatches from the equivalence checker.
    pub fn verify_functional<R: Rng + ?Sized>(
        &self,
        original: &Netlist,
        rounds: usize,
        rng: &mut R,
    ) -> Result<bool> {
        Ok(equiv::random_equivalent(
            original,
            &[],
            &self.netlist,
            self.key.bits(),
            rounds,
            rng,
        )?)
    }

    /// Exhaustive functional-equivalence check (small circuits only).
    ///
    /// # Errors
    ///
    /// Propagates errors from the exhaustive checker (e.g. too many inputs).
    pub fn verify_exhaustive(&self, original: &Netlist) -> Result<bool> {
        Ok(equiv::exhaustive_equivalent(
            original,
            &[],
            &self.netlist,
            self.key.bits(),
        )?)
    }

    /// Output corruption (fraction of differing output bits) produced by an
    /// arbitrary candidate key relative to the original design.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::KeyLengthMismatch`] for wrong key sizes.
    pub fn corruption_under_key<R: Rng + ?Sized>(
        &self,
        original: &Netlist,
        candidate: &Key,
        rounds: usize,
        rng: &mut R,
    ) -> Result<f64> {
        if candidate.len() != self.key.len() {
            return Err(LockError::KeyLengthMismatch {
                expected: self.key.len(),
                got: candidate.len(),
            });
        }
        Ok(equiv::output_corruption(
            original,
            &[],
            &self.netlist,
            candidate.bits(),
            rounds,
            rng,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolock_netlist::GateKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_locked() -> (Netlist, LockedNetlist) {
        // Original: y = a AND b. Locked: y = (a AND b) XOR k, correct k = 0.
        let mut original = Netlist::new("tiny");
        let a = original.add_input("a");
        let b = original.add_input("b");
        let y = original.add_gate("y", GateKind::And, vec![a, b]).unwrap();
        original.mark_output(y);

        let mut locked = Netlist::new("tiny_locked");
        let a = locked.add_input("a");
        let b = locked.add_input("b");
        let k = locked.add_key_input("keyinput0").unwrap();
        let t = locked.add_gate("t", GateKind::And, vec![a, b]).unwrap();
        let y = locked.add_gate("y", GateKind::Xor, vec![t, k]).unwrap();
        locked.mark_output(y);

        let prov = vec![KeyGateProvenance::Xor {
            key_bit: 0,
            key_gate: y,
            driver: t,
            sink: y,
            xnor: false,
        }];
        let ln = LockedNetlist::new(locked, Key::zeros(1), prov, "xor-test", "tiny").unwrap();
        (original, ln)
    }

    #[test]
    fn constructor_checks_key_length() {
        let (_, ln) = tiny_locked();
        let bad = LockedNetlist::new(
            ln.netlist().clone(),
            Key::zeros(3),
            vec![],
            "xor-test",
            "tiny",
        );
        assert!(matches!(bad, Err(LockError::KeyLengthMismatch { .. })));
    }

    #[test]
    fn verification_with_correct_key() {
        let (original, ln) = tiny_locked();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(ln.verify_functional(&original, 4, &mut rng).unwrap());
        assert!(ln.verify_exhaustive(&original).unwrap());
    }

    #[test]
    fn corruption_under_wrong_key_is_high() {
        let (original, ln) = tiny_locked();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let wrong = Key::new(vec![true]);
        let corruption = ln
            .corruption_under_key(&original, &wrong, 4, &mut rng)
            .unwrap();
        assert_eq!(corruption, 1.0);
        let right = Key::zeros(1);
        assert_eq!(
            ln.corruption_under_key(&original, &right, 4, &mut rng)
                .unwrap(),
            0.0
        );
        assert!(ln
            .corruption_under_key(&original, &Key::zeros(2), 1, &mut rng)
            .is_err());
    }

    #[test]
    fn accessors() {
        let (_, ln) = tiny_locked();
        assert_eq!(ln.scheme(), "xor-test");
        assert_eq!(ln.original_name(), "tiny");
        assert_eq!(ln.key_len(), 1);
        assert_eq!(ln.provenance().len(), 1);
        assert_eq!(ln.provenance()[0].key_bit(), 0);
    }
}
