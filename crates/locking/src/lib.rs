//! Logic-locking schemes and shared key machinery.
//!
//! This crate implements the defence side of the AutoLock reproduction:
//!
//! * [`Key`] — a vector of key bits with helpers (random generation, Hamming
//!   distance, hex formatting),
//! * [`LockedNetlist`] — the result of locking: the locked circuit, the
//!   correct key and per-key-gate provenance (ground truth used only for
//!   evaluation),
//! * [`XorLocking`] — classic random XOR/XNOR key-gate insertion (RLL/EPIC
//!   style), the oldest baseline,
//! * [`mux`] — the MUX-pair insertion primitive shared by D-MUX and AutoLock:
//!   a [`mux::MuxPairLocus`] `{f_i, f_j, g_i, g_j, k}` describes one locking
//!   location exactly as in the AutoLock genotype,
//! * [`DMuxLocking`] — the D-MUX scheme (random, deceptive MUX-pair
//!   insertion) that AutoLock starts from and is compared against,
//! * [`overhead`] — structural area / delay / switching-activity proxies.
//!
//! ```
//! use autolock_circuits::c17;
//! use autolock_locking::{DMuxLocking, LockingScheme};
//! use rand::SeedableRng;
//!
//! let original = c17();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let locked = DMuxLocking::default().lock(&original, 2, &mut rng).unwrap();
//! assert_eq!(locked.key().len(), 2);
//! // The locked netlist with the correct key is functionally equivalent.
//! assert!(locked.verify_functional(&original, 64, &mut rng).unwrap());
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod error;
mod key;
mod locked;
pub mod mux;
pub mod overhead;
mod scheme;

mod dmux;
mod xor;

pub use dmux::{DMuxLocking, PairSelectionStrategy};
pub use error::LockError;
pub use key::Key;
pub use locked::{KeyGateProvenance, LockedNetlist};
pub use mux::{apply_loci, MuxPairLocus};
pub use scheme::LockingScheme;
pub use xor::XorLocking;

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, LockError>;
