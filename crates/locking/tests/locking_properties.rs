//! Property-based and integration tests for the locking crate.

use autolock_circuits::{suite_circuit, synth_circuit};
use autolock_locking::mux::{apply_loci, loci_from_provenance, lockable_wires};
use autolock_locking::overhead::overhead_report;
use autolock_locking::{DMuxLocking, Key, LockingScheme, PairSelectionStrategy, XorLocking};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// D-MUX locking round-trips through its provenance: extracting the loci
    /// and re-applying them reproduces a functionally identical locked design
    /// with the same key.
    #[test]
    fn dmux_provenance_roundtrip(
        seed in 0u64..2000,
        key_len in 1usize..10,
        gates in 60usize..160,
    ) {
        let original = synth_circuit("prov", 10, 5, gates, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let Ok(locked) = DMuxLocking::default().lock(&original, key_len, &mut rng) else {
            return Ok(());
        };
        let loci = loci_from_provenance(&locked);
        prop_assert_eq!(loci.len(), key_len);
        let reapplied = apply_loci(&original, &loci).unwrap();
        prop_assert_eq!(reapplied.key(), locked.key());
        prop_assert_eq!(
            autolock_netlist::write_bench(reapplied.netlist()),
            autolock_netlist::write_bench(locked.netlist())
        );
    }

    /// Both pair-selection strategies produce valid, functional lockings and
    /// respect the requested key length exactly.
    #[test]
    fn both_strategies_produce_valid_lockings(
        seed in 0u64..1000,
        key_len in 1usize..12,
        type_matched in proptest::bool::ANY,
    ) {
        let original = synth_circuit("strat", 12, 5, 180, seed);
        let strategy = if type_matched {
            PairSelectionStrategy::TypeMatched
        } else {
            PairSelectionStrategy::Random
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFE);
        let Ok(locked) = DMuxLocking::new(strategy).lock(&original, key_len, &mut rng) else {
            return Ok(());
        };
        prop_assert_eq!(locked.key_len(), key_len);
        prop_assert_eq!(locked.netlist().num_key_inputs(), key_len);
        prop_assert_eq!(
            locked.netlist().num_logic_gates(),
            original.num_logic_gates() + 2 * key_len
        );
        prop_assert!(locked.verify_functional(&original, 4, &mut rng).unwrap());
        locked.netlist().validate().unwrap();
    }

    /// Overhead accounting is exact for gate counts and non-negative for the
    /// proxies, for both schemes.
    #[test]
    fn overhead_accounting_is_exact(
        seed in 0u64..500,
        key_len in 1usize..10,
        use_xor in proptest::bool::ANY,
    ) {
        let original = synth_circuit("ovh", 10, 5, 140, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xAA);
        let locked = if use_xor {
            XorLocking::default().lock(&original, key_len, &mut rng)
        } else {
            DMuxLocking::default().lock(&original, key_len, &mut rng)
        };
        let Ok(locked) = locked else { return Ok(()); };
        let report = overhead_report(&original, &locked, 2, &mut rng).unwrap();
        let per_bit = if use_xor { 1 } else { 2 };
        prop_assert_eq!(report.locked_gates - report.original_gates, per_bit * key_len);
        prop_assert!(report.area_overhead_pct() > 0.0);
        prop_assert!(report.locked_depth >= report.original_depth);
        prop_assert!(report.locked_switching.is_finite());
    }

    /// Lockable wires only name live logic sinks and existing connections.
    #[test]
    fn lockable_wires_are_real_and_live(seed in 0u64..500) {
        let original = synth_circuit("wires", 10, 5, 120, seed);
        let wires = lockable_wires(&original);
        prop_assert!(!wires.is_empty());
        let outputs_cone: std::collections::HashSet<_> = original
            .outputs()
            .iter()
            .flat_map(|&o| autolock_netlist::topo::fanin_cone(&original, o))
            .collect();
        for (driver, sink) in wires {
            prop_assert!(original.gate(sink).fanin.contains(&driver));
            prop_assert!(!original.gate(sink).kind.is_input());
            prop_assert!(outputs_cone.contains(&sink), "sink {sink} is dead logic");
        }
    }
}

#[test]
fn key_helpers_compose_on_real_lockings() {
    let original = suite_circuit("s160").unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let locked = DMuxLocking::default()
        .lock(&original, 16, &mut rng)
        .unwrap();
    let key = locked.key().clone();
    assert_eq!(key.len(), 16);
    assert_eq!(Key::from_bit_string(&key.to_bit_string()).unwrap(), key);
    assert_eq!(key.agreement(&key), 1.0);
    let mut inverted = key.clone();
    for i in 0..inverted.len() {
        inverted.flip(i);
    }
    assert_eq!(key.agreement(&inverted), 0.0);
    assert_eq!(key.hamming_distance(&inverted), 16);
}

#[test]
fn dmux_on_every_small_suite_member_is_functional() {
    for original in autolock_circuits::small_suite() {
        let key_len = (original.num_logic_gates() / 20).clamp(1, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let locked = DMuxLocking::default()
            .lock(&original, key_len, &mut rng)
            .unwrap_or_else(|e| panic!("locking {} failed: {e}", original.name()));
        assert!(locked.verify_functional(&original, 8, &mut rng).unwrap());
    }
}
