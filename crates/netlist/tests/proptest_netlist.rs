//! Property-based tests for the netlist substrate.

use autolock_netlist::{
    graph, parse_bench, sim, stats, topo, write_bench, GateId, GateKind, Netlist,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Builds a random, valid, acyclic netlist from a seed-like description:
/// `layers[i]` gates in layer i, each reading from earlier gates.
fn build_random_netlist(num_inputs: usize, layer_sizes: &[u8], seed: u64) -> Netlist {
    use rand::Rng;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut nl = Netlist::new(format!("rand_{seed}"));
    let mut pool: Vec<GateId> = (0..num_inputs.max(1))
        .map(|i| nl.add_input(format!("in{i}")))
        .collect();
    let kinds = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];
    let mut counter = 0usize;
    for &sz in layer_sizes {
        let mut new_layer = Vec::new();
        for _ in 0..sz.clamp(1, 8) {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let arity = match kind {
                GateKind::Not | GateKind::Buf => 1,
                _ => 2,
            };
            let fanin: Vec<GateId> = (0..arity)
                .map(|_| pool[rng.gen_range(0..pool.len())])
                .collect();
            let id = nl
                .add_gate(format!("g{counter}"), kind, fanin)
                .expect("valid gate");
            counter += 1;
            new_layer.push(id);
        }
        pool.extend(new_layer);
    }
    // Last few gates become outputs.
    let n_out = pool.len().min(3);
    for &id in pool.iter().rev().take(n_out) {
        nl.mark_output(id);
    }
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_netlists_validate_and_roundtrip(
        num_inputs in 1usize..6,
        layers in proptest::collection::vec(1u8..6, 1..4),
        seed in 0u64..5000,
    ) {
        let nl = build_random_netlist(num_inputs, &layers, seed);
        prop_assert!(nl.validate().is_ok());

        // .bench round trip preserves function on exhaustive inputs (inputs <= 5).
        let text = write_bench(&nl);
        let back = parse_bench(nl.name(), &text).unwrap();
        prop_assert_eq!(back.num_logic_gates(), nl.num_logic_gates());
        let n = nl.num_inputs();
        for pattern in 0..(1u32 << n) {
            let vals: Vec<bool> = (0..n).map(|i| (pattern >> i) & 1 == 1).collect();
            prop_assert_eq!(nl.evaluate(&vals).unwrap(), back.evaluate(&vals).unwrap());
        }
    }

    #[test]
    fn topo_order_is_consistent_with_levels(
        num_inputs in 1usize..5,
        layers in proptest::collection::vec(1u8..5, 1..4),
        seed in 0u64..5000,
    ) {
        let nl = build_random_netlist(num_inputs, &layers, seed);
        let order = topo::topological_order(&nl).unwrap();
        prop_assert_eq!(order.len(), nl.len());
        let levels = topo::logic_levels(&nl).unwrap();
        for (id, gate) in nl.iter() {
            for &f in &gate.fanin {
                prop_assert!(levels[f.index()] < levels[id.index()]);
            }
        }
        let depth = topo::depth(&nl).unwrap();
        let max_level = levels.iter().copied().max().unwrap_or(0);
        prop_assert!(depth <= max_level);
    }

    #[test]
    fn parallel_sim_matches_scalar_eval(
        num_inputs in 1usize..5,
        layers in proptest::collection::vec(1u8..5, 1..3),
        seed in 0u64..5000,
    ) {
        let nl = build_random_netlist(num_inputs, &layers, seed);
        let n = nl.num_inputs();
        // Pack all exhaustive patterns (at most 16).
        let total = 1usize << n;
        let mut pi = vec![0u64; n];
        for pat in 0..total {
            for (i, w) in pi.iter_mut().enumerate() {
                if (pat >> i) & 1 == 1 {
                    *w |= 1 << pat;
                }
            }
        }
        let simres = sim::simulate(&nl, &pi, &[], total).unwrap();
        for pat in 0..total {
            let vals: Vec<bool> = (0..n).map(|i| (pat >> i) & 1 == 1).collect();
            let expect = nl.evaluate(&vals).unwrap();
            let got: Vec<bool> = nl.outputs().iter().map(|&o| simres.get(o, pat)).collect();
            prop_assert_eq!(expect, got);
        }
    }

    #[test]
    fn stats_are_internally_consistent(
        num_inputs in 1usize..5,
        layers in proptest::collection::vec(1u8..5, 1..4),
        seed in 0u64..5000,
    ) {
        let nl = build_random_netlist(num_inputs, &layers, seed);
        let s = stats::netlist_stats(&nl).unwrap();
        prop_assert_eq!(s.inputs, nl.num_inputs());
        prop_assert_eq!(s.gates, nl.num_logic_gates());
        let total_from_hist: usize = s.kind_histogram.iter().sum();
        prop_assert_eq!(total_from_hist, nl.len());
        prop_assert!(s.depth >= 1);
    }

    #[test]
    fn undirected_graph_degrees_match_edges(
        num_inputs in 1usize..5,
        layers in proptest::collection::vec(1u8..5, 1..3),
        seed in 0u64..5000,
    ) {
        let nl = build_random_netlist(num_inputs, &layers, seed);
        let g = graph::UndirectedGraph::from_netlist(&nl);
        // Symmetry: if a is neighbor of b then b is neighbor of a.
        for id in nl.ids() {
            for &nb in g.neighbors(id) {
                prop_assert!(g.neighbors(nb).contains(&id));
            }
        }
    }

    #[test]
    fn drnl_labels_positive_for_reachable(
        du in 0usize..10,
        dv in 0usize..10,
    ) {
        let l = graph::drnl_label(du, dv);
        prop_assert!(l >= 1);
        prop_assert_eq!(l, graph::drnl_label(dv, du));
    }
}
