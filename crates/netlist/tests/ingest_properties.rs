//! Property-based tests for the ingestion front door: the AIGER writer/
//! reader pair must preserve function on arbitrary valid netlists, and the
//! reader must reject malformed sources with structured errors instead of
//! panicking.

use autolock_netlist::ingest::{parse_aag, parse_auto, write_aag, IngestOptions};
use autolock_netlist::{equiv, GateId, GateKind, Netlist};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Builds a random, valid, acyclic netlist from a seed-like description:
/// `layers[i]` gates in layer i, each reading from earlier gates. Mirrors
/// the generator in `proptest_netlist.rs` so the AIGER round trip sees the
/// same input distribution as the `.bench` round trip.
fn build_random_netlist(num_inputs: usize, layer_sizes: &[u8], seed: u64) -> Netlist {
    use rand::Rng;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut nl = Netlist::new(format!("rand_{seed}"));
    let mut pool: Vec<GateId> = (0..num_inputs.max(1))
        .map(|i| nl.add_input(format!("in{i}")))
        .collect();
    let kinds = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];
    let mut counter = 0usize;
    for &sz in layer_sizes {
        let mut new_layer = Vec::new();
        for _ in 0..sz.clamp(1, 8) {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let arity = match kind {
                GateKind::Not | GateKind::Buf => 1,
                _ => 2,
            };
            let fanin: Vec<GateId> = (0..arity)
                .map(|_| pool[rng.gen_range(0..pool.len())])
                .collect();
            let id = nl
                .add_gate(format!("g{counter}"), kind, fanin)
                .expect("valid gate");
            counter += 1;
            new_layer.push(id);
        }
        pool.extend(new_layer);
    }
    let n_out = pool.len().min(3);
    for &id in pool.iter().rev().take(n_out) {
        nl.mark_output(id);
    }
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Netlist → write_aag → parse_aag` preserves the interface shape and
    /// the function on all exhaustive input patterns (inputs <= 5).
    #[test]
    fn aiger_roundtrip_preserves_function(
        num_inputs in 1usize..6,
        layers in proptest::collection::vec(1u8..6, 1..4),
        seed in 0u64..5000,
    ) {
        let nl = build_random_netlist(num_inputs, &layers, seed);
        let text = write_aag(&nl).unwrap();
        let back = parse_aag(nl.name().to_string(), &text)
            .unwrap()
            .into_combinational()
            .expect("combinational source round-trips without latches");
        prop_assert_eq!(back.num_inputs(), nl.num_inputs());
        prop_assert_eq!(back.num_outputs(), nl.num_outputs());
        prop_assert_eq!(
            equiv::exhaustive_equivalent(&nl, &[], &back, &[]).unwrap(),
            true,
            "AIGER round trip changed the function"
        );
    }

    /// The front door sniffs the writer's output as AIGER and produces the
    /// same netlist as the direct reader.
    #[test]
    fn front_door_sniffs_written_aiger(
        num_inputs in 1usize..5,
        layers in proptest::collection::vec(1u8..5, 1..3),
        seed in 0u64..5000,
    ) {
        let nl = build_random_netlist(num_inputs, &layers, seed);
        let text = write_aag(&nl).unwrap();
        let ingested = parse_auto(nl.name(), &text, &IngestOptions::default()).unwrap();
        prop_assert_eq!(ingested.format.label(), "aiger");
        prop_assert_eq!(ingested.latches, 0);
        let direct = parse_aag(nl.name().to_string(), &text)
            .unwrap()
            .into_combinational()
            .unwrap();
        prop_assert_eq!(ingested.netlist, direct);
    }

    /// Arbitrary text never panics the front door — it parses or it returns
    /// a structured error. Low byte values skew the stream toward digits,
    /// whitespace and structural ASCII, which is where a parser shortcut
    /// would hide.
    #[test]
    fn arbitrary_sources_never_panic(
        bytes in proptest::collection::vec(0u8..128, 0..200),
    ) {
        let source: String = bytes.iter().map(|&b| b as char).collect();
        let _ = parse_auto("fuzz", &source, &IngestOptions::default());
    }
}

/// Every entry is a malformed ASCII AIGER source; the reader must reject
/// each with a structured error (and, per the proptest above, never panic).
#[test]
fn malformed_aiger_corpus_is_rejected() {
    let corpus: &[(&str, &str)] = &[
        ("empty source", ""),
        ("not a header", "hello world\n"),
        ("binary aig header", "aig 2 1 0 1 1\n"),
        ("header with four counts", "aag 1 1 0 1\n2\n2\n"),
        ("non-numeric count", "aag x 1 0 1 0\n2\n2\n"),
        ("M smaller than I+L+A", "aag 1 1 0 1 1\n2\n2\n4 2 2\n"),
        ("truncated input section", "aag 2 2 0 1 0\n2\n"),
        ("odd input literal", "aag 1 1 0 1 0\n3\n2\n"),
        ("constant as input literal", "aag 1 1 0 1 0\n0\n2\n"),
        ("input literal out of range", "aag 1 1 0 1 0\n4\n2\n"),
        ("output literal out of range", "aag 1 1 0 1 0\n2\n6\n"),
        ("missing output line", "aag 1 1 0 1 0\n2\n"),
        (
            "and line with two literals",
            "aag 3 2 0 1 1\n2\n4\n6\n6 2\n",
        ),
        ("odd and lhs", "aag 3 2 0 1 1\n2\n4\n7\n7 2 4\n"),
        ("and rhs out of range", "aag 3 2 0 1 1\n2\n4\n6\n6 2 8\n"),
        ("latch line with four fields", "aag 2 1 1 0 0\n2\n4 2 0 0\n"),
        ("latch init of 2", "aag 2 1 1 0 0\n2\n4 2 2\n"),
        ("odd latch literal", "aag 2 1 1 0 0\n2\n5 2\n"),
        (
            "garbage after and section",
            "aag 1 1 0 1 0\n2\n2\nwhat is this\n",
        ),
        (
            "symbol index not a number",
            "aag 1 1 0 1 0\n2\n2\nix name\n",
        ),
        ("symbol entry without a name", "aag 1 1 0 1 0\n2\n2\ni0\n"),
    ];
    for (label, source) in corpus {
        let result = parse_aag("bad", source);
        assert!(
            result.is_err(),
            "malformed source ({label}) was accepted: {result:?}"
        );
    }
}
