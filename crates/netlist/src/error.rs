//! Error type for netlist operations.

use crate::GateId;
use std::fmt;

/// Errors produced by netlist construction, parsing and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate name was used more than once.
    DuplicateName(String),
    /// A referenced signal name does not exist.
    UnknownSignal(String),
    /// A referenced gate id is out of range for this netlist.
    InvalidGateId(GateId),
    /// A gate has an arity that its kind does not allow.
    BadArity {
        /// Offending gate name.
        gate: String,
        /// Kind of the offending gate.
        kind: String,
        /// Number of fan-ins the gate actually has.
        got: usize,
    },
    /// The netlist contains a combinational cycle involving the named gate.
    CombinationalCycle(String),
    /// An output was declared but never defined as a gate or input.
    UndefinedOutput(String),
    /// Parse error in a `.bench` source.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A simulation or evaluation call supplied the wrong number of input values.
    InputCountMismatch {
        /// Number of values expected (primary inputs + key inputs as applicable).
        expected: usize,
        /// Number of values provided by the caller.
        got: usize,
    },
    /// The requested operation does not apply to this gate kind.
    WrongGateKind {
        /// Offending gate.
        gate: GateId,
        /// What the operation expected.
        expected: String,
    },
    /// The source describes a sequential circuit (latches/DFFs) but the
    /// caller asked for a purely combinational netlist. Ingest the circuit
    /// with a `cut` or `unroll` mode (see [`crate::ingest`]) instead.
    Sequential {
        /// Number of latches in the source.
        latches: usize,
    },
    /// An ingestion-mode error (e.g. unrolling to zero frames).
    Ingest(String),
    /// An I/O error while reading a circuit file.
    Io {
        /// Path of the file that failed to read.
        path: String,
        /// The underlying I/O error message.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName(name) => write!(f, "duplicate signal name `{name}`"),
            NetlistError::UnknownSignal(name) => write!(f, "unknown signal `{name}`"),
            NetlistError::InvalidGateId(id) => write!(f, "invalid gate id {id}"),
            NetlistError::BadArity { gate, kind, got } => {
                write!(
                    f,
                    "gate `{gate}` of kind {kind} has invalid fan-in count {got}"
                )
            }
            NetlistError::CombinationalCycle(name) => {
                write!(f, "combinational cycle detected through gate `{name}`")
            }
            NetlistError::UndefinedOutput(name) => {
                write!(f, "output `{name}` is never defined")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::InputCountMismatch { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            NetlistError::WrongGateKind { gate, expected } => {
                write!(f, "gate {gate} is not of the expected kind ({expected})")
            }
            NetlistError::Sequential { latches } => {
                write!(
                    f,
                    "sequential circuit with {latches} latch(es): ingest it with a cut or \
                     unroll mode to obtain a combinational attack target"
                )
            }
            NetlistError::Ingest(message) => write!(f, "ingestion error: {message}"),
            NetlistError::Io { path, message } => {
                write!(f, "io error reading `{path}`: {message}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NetlistError::DuplicateName("x1".into());
        assert!(e.to_string().contains("x1"));
        let e = NetlistError::Parse {
            line: 12,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 12"));
        let e = NetlistError::InputCountMismatch {
            expected: 3,
            got: 1,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('1'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<NetlistError>();
    }
}
