//! Functional equivalence checking between netlists.
//!
//! Two flavours are provided:
//!
//! * [`exhaustive_equivalent`] — compares all `2^n` input patterns; only
//!   feasible for small input counts and used in tests,
//! * [`random_equivalent`] — compares a configurable number of random
//!   patterns; a cheap *refutation-complete* check (a `false` answer is
//!   definitive, a `true` answer means "no counterexample found").
//!
//! The locking crate uses these to assert the core logic-locking invariant:
//! *locked netlist + correct key ≡ original netlist*.

use crate::sim;
use crate::{Netlist, NetlistError, Result};
use rand::Rng;

/// Maximum number of primary inputs for which [`exhaustive_equivalent`] will
/// run (2^20 patterns).
pub const EXHAUSTIVE_LIMIT: usize = 20;

/// Checks that two netlists have compatible interfaces (same number of
/// primary inputs and outputs). Key inputs may differ.
pub fn compatible_interfaces(a: &Netlist, b: &Netlist) -> bool {
    a.num_inputs() == b.num_inputs() && a.num_outputs() == b.num_outputs()
}

/// Exhaustively checks whether `a` (with key `key_a`) and `b` (with key
/// `key_b`) compute the same function over all primary-input patterns.
///
/// # Errors
///
/// Returns an error if the interfaces are incompatible, the key lengths are
/// wrong, or the input count exceeds [`EXHAUSTIVE_LIMIT`].
pub fn exhaustive_equivalent(
    a: &Netlist,
    key_a: &[bool],
    b: &Netlist,
    key_b: &[bool],
) -> Result<bool> {
    if !compatible_interfaces(a, b) {
        return Err(NetlistError::InputCountMismatch {
            expected: a.num_inputs(),
            got: b.num_inputs(),
        });
    }
    let n = a.num_inputs();
    if n > EXHAUSTIVE_LIMIT {
        return Err(NetlistError::InputCountMismatch {
            expected: EXHAUSTIVE_LIMIT,
            got: n,
        });
    }
    let total: u64 = 1u64 << n;
    let mut pattern: u64 = 0;
    while pattern < total {
        // Pack up to 64 consecutive patterns.
        let chunk = (total - pattern).min(64) as usize;
        let mut pi_a = vec![0u64; n];
        for p in 0..chunk {
            let assignment = pattern + p as u64;
            for (i, word) in pi_a.iter_mut().enumerate() {
                if (assignment >> i) & 1 == 1 {
                    *word |= 1 << p;
                }
            }
        }
        let sim_a = sim::simulate_with_key_bits(a, &pi_a, key_a, chunk)?;
        let sim_b = sim::simulate_with_key_bits(b, &pi_a, key_b, chunk)?;
        let out_a = sim::output_response(a, &sim_a);
        let out_b = sim::output_response(b, &sim_b);
        if out_a != out_b {
            return Ok(false);
        }
        pattern += chunk as u64;
    }
    Ok(true)
}

/// Randomized equivalence check with `rounds * 64` patterns.
///
/// Returns `Ok(false)` as soon as a differing pattern is found; `Ok(true)`
/// means no counterexample was observed.
pub fn random_equivalent<R: Rng + ?Sized>(
    a: &Netlist,
    key_a: &[bool],
    b: &Netlist,
    key_b: &[bool],
    rounds: usize,
    rng: &mut R,
) -> Result<bool> {
    if !compatible_interfaces(a, b) {
        return Err(NetlistError::InputCountMismatch {
            expected: a.num_inputs(),
            got: b.num_inputs(),
        });
    }
    let n = a.num_inputs();
    for _ in 0..rounds.max(1) {
        let pi: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        let sim_a = sim::simulate_with_key_bits(a, &pi, key_a, 64)?;
        let sim_b = sim::simulate_with_key_bits(b, &pi, key_b, 64)?;
        if sim::output_response(a, &sim_a) != sim::output_response(b, &sim_b) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Measures the output error rate of `b` (with key `key_b`) relative to the
/// reference `a` (with key `key_a`) over `rounds * 64` random patterns:
/// the fraction of (output, pattern) pairs that differ.
pub fn output_corruption<R: Rng + ?Sized>(
    a: &Netlist,
    key_a: &[bool],
    b: &Netlist,
    key_b: &[bool],
    rounds: usize,
    rng: &mut R,
) -> Result<f64> {
    if !compatible_interfaces(a, b) {
        return Err(NetlistError::InputCountMismatch {
            expected: a.num_inputs(),
            got: b.num_inputs(),
        });
    }
    let n = a.num_inputs();
    let mut total = 0.0;
    let rounds = rounds.max(1);
    for _ in 0..rounds {
        let pi: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        let sim_a = sim::simulate_with_key_bits(a, &pi, key_a, 64)?;
        let sim_b = sim::simulate_with_key_bits(b, &pi, key_b, 64)?;
        total += sim::output_error_rate(
            &sim::output_response(a, &sim_a),
            &sim::output_response(b, &sim_b),
            64,
        );
    }
    Ok(total / rounds as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn xor_identity_pair() -> (Netlist, Netlist) {
        // a: y = x1 & x2 ; b: same function but locked with an XOR key-gate.
        let mut a = Netlist::new("orig");
        let x1 = a.add_input("x1");
        let x2 = a.add_input("x2");
        let y = a.add_gate("y", GateKind::And, vec![x1, x2]).unwrap();
        a.mark_output(y);

        let mut b = Netlist::new("locked");
        let x1 = b.add_input("x1");
        let x2 = b.add_input("x2");
        let k = b.add_key_input("keyinput0").unwrap();
        let t = b.add_gate("t", GateKind::And, vec![x1, x2]).unwrap();
        let y = b.add_gate("y", GateKind::Xor, vec![t, k]).unwrap();
        b.mark_output(y);
        (a, b)
    }

    #[test]
    fn exhaustive_detects_equivalence_and_difference() {
        let (a, b) = xor_identity_pair();
        // Correct key (0) preserves the function, wrong key (1) inverts it.
        assert!(exhaustive_equivalent(&a, &[], &b, &[false]).unwrap());
        assert!(!exhaustive_equivalent(&a, &[], &b, &[true]).unwrap());
    }

    #[test]
    fn random_check_agrees_with_exhaustive() {
        let (a, b) = xor_identity_pair();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(random_equivalent(&a, &[], &b, &[false], 4, &mut rng).unwrap());
        assert!(!random_equivalent(&a, &[], &b, &[true], 4, &mut rng).unwrap());
    }

    #[test]
    fn corruption_is_zero_for_correct_key_and_high_for_wrong() {
        let (a, b) = xor_identity_pair();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let good = output_corruption(&a, &[], &b, &[false], 4, &mut rng).unwrap();
        let bad = output_corruption(&a, &[], &b, &[true], 4, &mut rng).unwrap();
        assert_eq!(good, 0.0);
        assert_eq!(bad, 1.0); // inverted output differs everywhere
    }

    #[test]
    fn incompatible_interfaces_rejected() {
        let (a, _) = xor_identity_pair();
        let mut c = Netlist::new("c");
        let x = c.add_input("x");
        c.mark_output(x);
        assert!(exhaustive_equivalent(&a, &[], &c, &[]).is_err());
    }

    #[test]
    fn exhaustive_limit_enforced() {
        let mut big = Netlist::new("big");
        let mut last = None;
        for i in 0..(EXHAUSTIVE_LIMIT + 1) {
            last = Some(big.add_input(format!("i{i}")));
        }
        big.mark_output(last.unwrap());
        let big2 = big.clone();
        assert!(exhaustive_equivalent(&big, &[], &big2, &[]).is_err());
    }
}
