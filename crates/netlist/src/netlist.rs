//! The [`Netlist`] container: an arena of gates plus input/output bookkeeping.

use crate::{Gate, GateId, GateKind, NetlistError, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A combinational gate-level netlist.
///
/// Gates are stored in an arena ([`Vec<Gate>`]) and referenced by [`GateId`].
/// Signal names are unique; each gate drives exactly one named signal. Primary
/// inputs and key inputs are gates of kind [`GateKind::Input`] /
/// [`GateKind::KeyInput`] with no fan-in.
///
/// Construction is incremental ([`Netlist::add_input`], [`Netlist::add_gate`],
/// [`Netlist::mark_output`]) and finished with [`Netlist::validate`], which
/// checks arities, dangling references and combinational cycles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    outputs: Vec<GateId>,
    #[serde(skip)]
    name_map: HashMap<String, GateId>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            gates: Vec::new(),
            outputs: Vec::new(),
            name_map: HashMap::new(),
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of gates (including inputs, key inputs and constants).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the netlist has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Immutable access to a gate.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Fallible access to a gate.
    pub fn try_gate(&self, id: GateId) -> Result<&Gate> {
        self.gates
            .get(id.index())
            .ok_or(NetlistError::InvalidGateId(id))
    }

    /// Iterates over `(GateId, &Gate)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId(i as u32), g))
    }

    /// All gate ids in id order.
    pub fn ids(&self) -> impl Iterator<Item = GateId> + '_ {
        (0..self.gates.len() as u32).map(GateId)
    }

    /// Looks up a gate id by signal name.
    pub fn find(&self, name: &str) -> Option<GateId> {
        self.name_map.get(name).copied()
    }

    /// Primary inputs (excluding key inputs), in insertion order.
    pub fn inputs(&self) -> Vec<GateId> {
        self.ids()
            .filter(|&id| self.gate(id).kind == GateKind::Input)
            .collect()
    }

    /// Key inputs, in insertion order.
    pub fn key_inputs(&self) -> Vec<GateId> {
        self.ids()
            .filter(|&id| self.gate(id).kind == GateKind::KeyInput)
            .collect()
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[GateId] {
        &self.outputs
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| g.kind == GateKind::Input)
            .count()
    }

    /// Number of key inputs.
    pub fn num_key_inputs(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| g.kind == GateKind::KeyInput)
            .count()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of logic gates (everything that is not an input, key input or
    /// constant).
    pub fn num_logic_gates(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !g.kind.is_input() && !g.kind.is_constant())
            .count()
    }

    fn insert_named(&mut self, gate: Gate) -> Result<GateId> {
        if self.name_map.contains_key(&gate.name) {
            return Err(NetlistError::DuplicateName(gate.name));
        }
        let id = GateId(self.gates.len() as u32);
        self.name_map.insert(gate.name.clone(), id);
        self.gates.push(gate);
        Ok(id)
    }

    /// Adds a primary input and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used (inputs are normally added first;
    /// use [`Netlist::try_add_input`] for fallible insertion).
    pub fn add_input(&mut self, name: impl Into<String>) -> GateId {
        self.try_add_input(name).expect("duplicate input name")
    }

    /// Fallible variant of [`Netlist::add_input`].
    pub fn try_add_input(&mut self, name: impl Into<String>) -> Result<GateId> {
        self.insert_named(Gate::new(name, GateKind::Input, Vec::new()))
    }

    /// Adds a key input and returns its id.
    pub fn add_key_input(&mut self, name: impl Into<String>) -> Result<GateId> {
        self.insert_named(Gate::new(name, GateKind::KeyInput, Vec::new()))
    }

    /// Adds a logic gate (or constant) and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the signal name exists,
    /// [`NetlistError::InvalidGateId`] if a fan-in id is out of range and
    /// [`NetlistError::BadArity`] if the fan-in count violates the gate kind.
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        fanin: Vec<GateId>,
    ) -> Result<GateId> {
        let name = name.into();
        let (min, max) = kind.arity();
        if fanin.len() < min || fanin.len() > max {
            return Err(NetlistError::BadArity {
                gate: name,
                kind: kind.to_string(),
                got: fanin.len(),
            });
        }
        for &f in &fanin {
            if f.index() >= self.gates.len() {
                return Err(NetlistError::InvalidGateId(f));
            }
        }
        self.insert_named(Gate::new(name, kind, fanin))
    }

    /// Declares an existing gate as a primary output. Re-declaring is a no-op.
    pub fn mark_output(&mut self, id: GateId) {
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// Removes a gate from the output list (the gate itself is kept).
    pub fn unmark_output(&mut self, id: GateId) {
        self.outputs.retain(|&o| o != id);
    }

    /// Rewires every occurrence of `old` in the fan-in of `sink` to `new`.
    ///
    /// Returns the number of replaced connections.
    pub fn replace_fanin(&mut self, sink: GateId, old: GateId, new: GateId) -> Result<usize> {
        if new.index() >= self.gates.len() {
            return Err(NetlistError::InvalidGateId(new));
        }
        let gate = self
            .gates
            .get_mut(sink.index())
            .ok_or(NetlistError::InvalidGateId(sink))?;
        let mut n = 0;
        for f in gate.fanin.iter_mut() {
            if *f == old {
                *f = new;
                n += 1;
            }
        }
        Ok(n)
    }

    /// Rewires every sink of `old` (optionally also the output list) to read
    /// from `new` instead. Returns the number of rewired connections.
    pub fn replace_all_uses(
        &mut self,
        old: GateId,
        new: GateId,
        include_outputs: bool,
    ) -> Result<usize> {
        if new.index() >= self.gates.len() {
            return Err(NetlistError::InvalidGateId(new));
        }
        if old.index() >= self.gates.len() {
            return Err(NetlistError::InvalidGateId(old));
        }
        let mut n = 0;
        for gate in self.gates.iter_mut() {
            for f in gate.fanin.iter_mut() {
                if *f == old {
                    *f = new;
                    n += 1;
                }
            }
        }
        if include_outputs {
            for o in self.outputs.iter_mut() {
                if *o == old {
                    *o = new;
                    n += 1;
                }
            }
        }
        Ok(n)
    }

    /// Computes the fan-out list of every gate: `fanouts[i]` is the list of
    /// gates that read gate `i`.
    pub fn fanouts(&self) -> Vec<Vec<GateId>> {
        let mut fo = vec![Vec::new(); self.gates.len()];
        for (id, gate) in self.iter() {
            for &f in &gate.fanin {
                fo[f.index()].push(id);
            }
        }
        fo
    }

    /// Validates structural invariants: arities, fan-in ids, output ids,
    /// acyclicity, and that input/constant gates have no fan-in.
    pub fn validate(&self) -> Result<()> {
        for (id, gate) in self.iter() {
            let (min, max) = gate.kind.arity();
            if gate.fanin.len() < min || gate.fanin.len() > max {
                return Err(NetlistError::BadArity {
                    gate: gate.name.clone(),
                    kind: gate.kind.to_string(),
                    got: gate.fanin.len(),
                });
            }
            for &f in &gate.fanin {
                if f.index() >= self.gates.len() {
                    return Err(NetlistError::InvalidGateId(f));
                }
                if f == id {
                    return Err(NetlistError::CombinationalCycle(gate.name.clone()));
                }
            }
        }
        for &o in &self.outputs {
            if o.index() >= self.gates.len() {
                return Err(NetlistError::InvalidGateId(o));
            }
        }
        // Cycle check via topological sort.
        crate::topo::topological_order(self)?;
        Ok(())
    }

    /// Evaluates the netlist for a single pattern.
    ///
    /// `values` supplies the primary-input values in [`Netlist::inputs`] order
    /// followed by the key-input values in [`Netlist::key_inputs`] order.
    /// Returns the output values in [`Netlist::outputs`] order.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputCountMismatch`] if the value count is wrong.
    pub fn evaluate(&self, values: &[bool]) -> Result<Vec<bool>> {
        let inputs = self.inputs();
        let keys = self.key_inputs();
        if values.len() != inputs.len() + keys.len() {
            return Err(NetlistError::InputCountMismatch {
                expected: inputs.len() + keys.len(),
                got: values.len(),
            });
        }
        let (pi_vals, key_vals) = values.split_at(inputs.len());
        self.evaluate_with_key(pi_vals, key_vals)
    }

    /// Evaluates the netlist for a single pattern with explicit primary-input
    /// and key-input values.
    pub fn evaluate_with_key(&self, pi_values: &[bool], key_values: &[bool]) -> Result<Vec<bool>> {
        let inputs = self.inputs();
        let keys = self.key_inputs();
        if pi_values.len() != inputs.len() {
            return Err(NetlistError::InputCountMismatch {
                expected: inputs.len(),
                got: pi_values.len(),
            });
        }
        if key_values.len() != keys.len() {
            return Err(NetlistError::InputCountMismatch {
                expected: keys.len(),
                got: key_values.len(),
            });
        }
        let order = crate::topo::topological_order(self)?;
        let mut values = vec![false; self.gates.len()];
        for (id, &v) in inputs.iter().zip(pi_values) {
            values[id.index()] = v;
        }
        for (id, &v) in keys.iter().zip(key_values) {
            values[id.index()] = v;
        }
        let mut buf = Vec::with_capacity(8);
        for id in order {
            let gate = self.gate(id);
            if gate.kind.is_input() {
                continue;
            }
            buf.clear();
            buf.extend(gate.fanin.iter().map(|f| values[f.index()]));
            values[id.index()] = gate.kind.eval_bool(&buf);
        }
        Ok(self.outputs.iter().map(|o| values[o.index()]).collect())
    }

    /// Returns a deep copy with a fresh name map (used after deserialization,
    /// where the map is skipped).
    pub fn rebuild_name_map(&mut self) {
        self.name_map = self
            .gates
            .iter()
            .enumerate()
            .map(|(i, g)| (g.name.clone(), GateId(i as u32)))
            .collect();
    }

    /// Generates a signal name that is not yet used in this netlist, based on
    /// `prefix`.
    pub fn fresh_name(&self, prefix: &str) -> String {
        if !self.name_map.contains_key(prefix) {
            return prefix.to_string();
        }
        let mut i = 0usize;
        loop {
            let candidate = format!("{prefix}_{i}");
            if !self.name_map.contains_key(&candidate) {
                return candidate;
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_adder() -> Netlist {
        let mut nl = Netlist::new("half_adder");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let sum = nl.add_gate("sum", GateKind::Xor, vec![a, b]).unwrap();
        let carry = nl.add_gate("carry", GateKind::And, vec![a, b]).unwrap();
        nl.mark_output(sum);
        nl.mark_output(carry);
        nl
    }

    #[test]
    fn build_and_evaluate_half_adder() {
        let nl = half_adder();
        nl.validate().unwrap();
        assert_eq!(nl.num_inputs(), 2);
        assert_eq!(nl.num_outputs(), 2);
        assert_eq!(nl.num_logic_gates(), 2);
        assert_eq!(nl.evaluate(&[false, false]).unwrap(), vec![false, false]);
        assert_eq!(nl.evaluate(&[true, false]).unwrap(), vec![true, false]);
        assert_eq!(nl.evaluate(&[false, true]).unwrap(), vec![true, false]);
        assert_eq!(nl.evaluate(&[true, true]).unwrap(), vec![false, true]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut nl = Netlist::new("d");
        nl.add_input("a");
        assert!(matches!(
            nl.try_add_input("a"),
            Err(NetlistError::DuplicateName(_))
        ));
    }

    #[test]
    fn bad_arity_rejected() {
        let mut nl = Netlist::new("d");
        let a = nl.add_input("a");
        assert!(matches!(
            nl.add_gate("x", GateKind::And, vec![a]),
            Err(NetlistError::BadArity { .. })
        ));
        assert!(matches!(
            nl.add_gate("y", GateKind::Not, vec![a, a]),
            Err(NetlistError::BadArity { .. })
        ));
        assert!(matches!(
            nl.add_gate("z", GateKind::Mux, vec![a, a]),
            Err(NetlistError::BadArity { .. })
        ));
    }

    #[test]
    fn dangling_fanin_rejected() {
        let mut nl = Netlist::new("d");
        let a = nl.add_input("a");
        assert!(matches!(
            nl.add_gate("x", GateKind::Not, vec![GateId(99)]),
            Err(NetlistError::InvalidGateId(_))
        ));
        let _ = a;
    }

    #[test]
    fn key_inputs_tracked_separately() {
        let mut nl = Netlist::new("k");
        let a = nl.add_input("a");
        let k = nl.add_key_input("keyinput0").unwrap();
        let x = nl.add_gate("x", GateKind::Xor, vec![a, k]).unwrap();
        nl.mark_output(x);
        assert_eq!(nl.inputs(), vec![a]);
        assert_eq!(nl.key_inputs(), vec![k]);
        // XOR with key=0 is identity, key=1 inverts.
        assert_eq!(nl.evaluate_with_key(&[true], &[false]).unwrap(), vec![true]);
        assert_eq!(nl.evaluate_with_key(&[true], &[true]).unwrap(), vec![false]);
    }

    #[test]
    fn replace_fanin_rewires() {
        let mut nl = Netlist::new("r");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_gate("x", GateKind::And, vec![a, a]).unwrap();
        nl.mark_output(x);
        let n = nl.replace_fanin(x, a, b).unwrap();
        assert_eq!(n, 2);
        assert_eq!(nl.gate(x).fanin, vec![b, b]);
    }

    #[test]
    fn replace_all_uses_rewires_everything() {
        let mut nl = Netlist::new("r");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_gate("x", GateKind::Not, vec![a]).unwrap();
        let y = nl.add_gate("y", GateKind::And, vec![a, x]).unwrap();
        nl.mark_output(a);
        nl.mark_output(y);
        let n = nl.replace_all_uses(a, b, true).unwrap();
        assert_eq!(n, 3);
        assert_eq!(nl.gate(x).fanin, vec![b]);
        assert_eq!(nl.gate(y).fanin, vec![b, x]);
        assert_eq!(nl.outputs(), &[b, y]);
    }

    #[test]
    fn fanouts_computed() {
        let nl = half_adder();
        let fo = nl.fanouts();
        let a = nl.find("a").unwrap();
        assert_eq!(fo[a.index()].len(), 2);
    }

    #[test]
    fn evaluate_rejects_wrong_count() {
        let nl = half_adder();
        assert!(matches!(
            nl.evaluate(&[true]),
            Err(NetlistError::InputCountMismatch { .. })
        ));
    }

    #[test]
    fn fresh_name_avoids_collisions() {
        let mut nl = Netlist::new("f");
        nl.add_input("a");
        assert_eq!(nl.fresh_name("b"), "b");
        let n = nl.fresh_name("a");
        assert_ne!(n, "a");
        assert!(nl.find(&n).is_none());
    }

    #[test]
    fn self_loop_detected_by_validate() {
        let mut nl = Netlist::new("loop");
        let a = nl.add_input("a");
        let x = nl.add_gate("x", GateKind::Not, vec![a]).unwrap();
        // Manually create a self-loop (bypassing add_gate checks).
        nl.gates[x.index()].fanin[0] = x;
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn mark_output_is_idempotent() {
        let mut nl = half_adder();
        let s = nl.find("sum").unwrap();
        nl.mark_output(s);
        assert_eq!(nl.num_outputs(), 2);
        nl.unmark_output(s);
        assert_eq!(nl.num_outputs(), 1);
    }
}
