//! Gate and gate-kind definitions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a gate inside a [`crate::Netlist`].
///
/// Gate ids are dense indices into the netlist's internal arena. They are only
/// meaningful relative to the netlist they were created by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GateId(pub u32);

impl GateId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl From<u32> for GateId {
    fn from(v: u32) -> Self {
        GateId(v)
    }
}

/// The logic function computed by a gate.
///
/// The set matches what ISCAS-85/89 `.bench` files use, plus two first-class
/// node kinds needed by logic locking: [`GateKind::KeyInput`] for key bits and
/// [`GateKind::Mux`] for 2:1 key-controlled multiplexers
/// (`MUX(sel, a, b) = if sel { b } else { a }`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Primary input of the circuit.
    Input,
    /// Key input (a special primary input carrying one key bit).
    KeyInput,
    /// Constant logic zero.
    Const0,
    /// Constant logic one.
    Const1,
    /// Buffer (identity).
    Buf,
    /// Inverter.
    Not,
    /// Logical AND of all fan-ins.
    And,
    /// Logical NAND of all fan-ins.
    Nand,
    /// Logical OR of all fan-ins.
    Or,
    /// Logical NOR of all fan-ins.
    Nor,
    /// Logical XOR of all fan-ins.
    Xor,
    /// Logical XNOR of all fan-ins.
    Xnor,
    /// 2:1 multiplexer; fan-ins are `[select, in0, in1]` and the output is
    /// `in0` when `select` is 0, `in1` when `select` is 1.
    Mux,
}

impl GateKind {
    /// Returns `true` if this kind represents a primary or key input.
    #[inline]
    pub fn is_input(self) -> bool {
        matches!(self, GateKind::Input | GateKind::KeyInput)
    }

    /// Returns `true` if this kind is a constant.
    #[inline]
    pub fn is_constant(self) -> bool {
        matches!(self, GateKind::Const0 | GateKind::Const1)
    }

    /// Returns `true` if this is a key input.
    #[inline]
    pub fn is_key_input(self) -> bool {
        matches!(self, GateKind::KeyInput)
    }

    /// The valid fan-in arity range `(min, max)` for this gate kind.
    /// `max == usize::MAX` means unbounded.
    pub fn arity(self) -> (usize, usize) {
        match self {
            GateKind::Input | GateKind::KeyInput | GateKind::Const0 | GateKind::Const1 => (0, 0),
            GateKind::Buf | GateKind::Not => (1, 1),
            GateKind::Mux => (3, 3),
            GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => (2, usize::MAX),
        }
    }

    /// Evaluates the gate function over boolean fan-in values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` violates [`GateKind::arity`]; callers are
    /// expected to operate on validated netlists.
    pub fn eval_bool(self, inputs: &[bool]) -> bool {
        match self {
            GateKind::Input | GateKind::KeyInput => {
                panic!("inputs have no logic function; supply their value directly")
            }
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Mux => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
        }
    }

    /// Evaluates the gate function over 64 packed patterns per word.
    ///
    /// Each bit position of the `u64` words is an independent input pattern.
    pub fn eval_word(self, inputs: &[u64]) -> u64 {
        match self {
            GateKind::Input | GateKind::KeyInput => {
                panic!("inputs have no logic function; supply their value directly")
            }
            GateKind::Const0 => 0,
            GateKind::Const1 => u64::MAX,
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().fold(u64::MAX, |acc, &w| acc & w),
            GateKind::Nand => !inputs.iter().fold(u64::MAX, |acc, &w| acc & w),
            GateKind::Or => inputs.iter().fold(0, |acc, &w| acc | w),
            GateKind::Nor => !inputs.iter().fold(0, |acc, &w| acc | w),
            GateKind::Xor => inputs.iter().fold(0, |acc, &w| acc ^ w),
            GateKind::Xnor => !inputs.iter().fold(0, |acc, &w| acc ^ w),
            GateKind::Mux => {
                let sel = inputs[0];
                (!sel & inputs[1]) | (sel & inputs[2])
            }
        }
    }

    /// The canonical `.bench` keyword for this kind, if it has one.
    pub fn bench_keyword(self) -> Option<&'static str> {
        match self {
            GateKind::Input | GateKind::KeyInput => None,
            GateKind::Const0 => Some("CONST0"),
            GateKind::Const1 => Some("CONST1"),
            GateKind::Buf => Some("BUF"),
            GateKind::Not => Some("NOT"),
            GateKind::And => Some("AND"),
            GateKind::Nand => Some("NAND"),
            GateKind::Or => Some("OR"),
            GateKind::Nor => Some("NOR"),
            GateKind::Xor => Some("XOR"),
            GateKind::Xnor => Some("XNOR"),
            GateKind::Mux => Some("MUX"),
        }
    }

    /// Parses a `.bench` gate keyword (case-insensitive).
    pub fn from_bench_keyword(kw: &str) -> Option<GateKind> {
        Some(match kw.to_ascii_uppercase().as_str() {
            "CONST0" | "GND" => GateKind::Const0,
            "CONST1" | "VDD" => GateKind::Const1,
            "BUF" | "BUFF" => GateKind::Buf,
            "NOT" | "INV" => GateKind::Not,
            "AND" => GateKind::And,
            "NAND" => GateKind::Nand,
            "OR" => GateKind::Or,
            "NOR" => GateKind::Nor,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            "MUX" => GateKind::Mux,
            _ => return None,
        })
    }

    /// All kinds that represent ordinary combinational logic (no inputs,
    /// no constants). Useful for synthetic circuit generation and feature
    /// encodings.
    pub const LOGIC_KINDS: [GateKind; 9] = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Mux,
    ];

    /// A stable small integer code for feature encodings (one-hot indices).
    pub fn code(self) -> usize {
        match self {
            GateKind::Input => 0,
            GateKind::KeyInput => 1,
            GateKind::Const0 => 2,
            GateKind::Const1 => 3,
            GateKind::Buf => 4,
            GateKind::Not => 5,
            GateKind::And => 6,
            GateKind::Nand => 7,
            GateKind::Or => 8,
            GateKind::Nor => 9,
            GateKind::Xor => 10,
            GateKind::Xnor => 11,
            GateKind::Mux => 12,
        }
    }

    /// Number of distinct codes returned by [`GateKind::code`].
    pub const NUM_CODES: usize = 13;
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Input => "INPUT",
            GateKind::KeyInput => "KEYINPUT",
            other => other.bench_keyword().unwrap_or("?"),
        };
        f.write_str(s)
    }
}

/// One gate (node) of a netlist.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gate {
    /// Unique, human-readable signal name driving this gate's output.
    pub name: String,
    /// Logic function of the gate.
    pub kind: GateKind,
    /// Fan-in gate ids in positional order (order matters for [`GateKind::Mux`]).
    pub fanin: Vec<GateId>,
}

impl Gate {
    /// Creates a new gate value (not yet inserted in a netlist).
    pub fn new(name: impl Into<String>, kind: GateKind, fanin: Vec<GateId>) -> Self {
        Gate {
            name: name.into(),
            kind,
            fanin,
        }
    }

    /// Number of fan-in connections.
    pub fn fanin_len(&self) -> usize {
        self.fanin.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_bounds() {
        assert_eq!(GateKind::Input.arity(), (0, 0));
        assert_eq!(GateKind::Not.arity(), (1, 1));
        assert_eq!(GateKind::Mux.arity(), (3, 3));
        assert_eq!(GateKind::And.arity().0, 2);
    }

    #[test]
    fn eval_bool_basic_gates() {
        assert!(GateKind::And.eval_bool(&[true, true]));
        assert!(!GateKind::And.eval_bool(&[true, false]));
        assert!(!GateKind::Nand.eval_bool(&[true, true]));
        assert!(GateKind::Or.eval_bool(&[false, true]));
        assert!(!GateKind::Nor.eval_bool(&[false, true]));
        assert!(GateKind::Xor.eval_bool(&[true, false]));
        assert!(!GateKind::Xor.eval_bool(&[true, true]));
        assert!(GateKind::Xnor.eval_bool(&[true, true]));
        assert!(GateKind::Not.eval_bool(&[false]));
        assert!(GateKind::Buf.eval_bool(&[true]));
        assert!(!GateKind::Const0.eval_bool(&[]));
        assert!(GateKind::Const1.eval_bool(&[]));
    }

    #[test]
    fn eval_bool_mux_selects_correct_branch() {
        // MUX(sel, a, b): sel=0 -> a, sel=1 -> b
        assert!(!GateKind::Mux.eval_bool(&[false, false, true]));
        assert!(GateKind::Mux.eval_bool(&[true, false, true]));
        assert!(GateKind::Mux.eval_bool(&[false, true, false]));
        assert!(!GateKind::Mux.eval_bool(&[true, true, false]));
    }

    #[test]
    fn eval_word_matches_eval_bool() {
        let kinds = [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ];
        for kind in kinds {
            for a in [false, true] {
                for b in [false, true] {
                    let word_a = if a { u64::MAX } else { 0 };
                    let word_b = if b { u64::MAX } else { 0 };
                    let expect = kind.eval_bool(&[a, b]);
                    let got = kind.eval_word(&[word_a, word_b]);
                    assert_eq!(got, if expect { u64::MAX } else { 0 }, "{kind:?} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn eval_word_mux_per_bit() {
        // Per-bit independence: alternate select bits.
        let sel = 0b1010;
        let a = 0b1100;
        let b = 0b0011;
        let out = GateKind::Mux.eval_word(&[sel, a, b]);
        // bit0: sel=0 -> a bit0 = 0 ; bit1: sel=1 -> b bit1 = 1
        // bit2: sel=0 -> a bit2 = 1 ; bit3: sel=1 -> b bit3 = 0
        assert_eq!(out & 0xF, 0b0110);
    }

    #[test]
    fn bench_keyword_roundtrip() {
        for kind in GateKind::LOGIC_KINDS {
            let kw = kind.bench_keyword().unwrap();
            assert_eq!(GateKind::from_bench_keyword(kw), Some(kind));
        }
        assert_eq!(GateKind::from_bench_keyword("nand"), Some(GateKind::Nand));
        assert_eq!(GateKind::from_bench_keyword("bogus"), None);
    }

    #[test]
    fn codes_are_unique_and_dense() {
        let mut seen = vec![false; GateKind::NUM_CODES];
        let all = [
            GateKind::Input,
            GateKind::KeyInput,
            GateKind::Const0,
            GateKind::Const1,
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Mux,
        ];
        for k in all {
            let c = k.code();
            assert!(!seen[c], "duplicate code {c}");
            seen[c] = true;
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn multi_input_gates() {
        assert!(GateKind::And.eval_bool(&[true, true, true, true]));
        assert!(!GateKind::And.eval_bool(&[true, true, false, true]));
        assert!(GateKind::Xor.eval_bool(&[true, true, true]));
        assert!(!GateKind::Xor.eval_bool(&[true, true, true, true]));
    }

    #[test]
    fn gate_id_display_and_index() {
        let id = GateId(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "g7");
        assert_eq!(GateId::from(3u32), GateId(3));
    }
}
