//! Gate-level netlist substrate for the AutoLock reproduction.
//!
//! This crate provides everything the locking schemes, attacks and the
//! evolutionary search need to reason about combinational circuits:
//!
//! * an arena-based gate-level intermediate representation ([`Netlist`],
//!   [`Gate`], [`GateKind`], [`GateId`]),
//! * a unified, format-detecting ingestion front door ([`ingest`]):
//!   `.bench` and ASCII AIGER `.aag` sources, AIG simplification, and
//!   sequential circuits with cut/unroll lowering,
//! * a parser and writer for the ISCAS-89 style `.bench` format
//!   ([`parse_bench`], [`write_bench`]),
//! * structural analysis: topological ordering, logic levels, fan-in/fan-out
//!   cones, reachability ([`topo`]),
//! * bit-parallel logic simulation (64 patterns per word, [`sim`]),
//! * graph views and enclosing-subgraph extraction used by link-prediction
//!   attacks ([`graph`]),
//! * equivalence checking helpers ([`equiv`]) and
//! * netlist statistics ([`stats`]).
//!
//! # Quick example
//!
//! ```
//! use autolock_netlist::{Netlist, GateKind};
//!
//! // Build a 2-input AND followed by an inverter: y = !(a & b)
//! let mut nl = Netlist::new("tiny");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let g = nl.add_gate("g", GateKind::And, vec![a, b]).unwrap();
//! let y = nl.add_gate("y", GateKind::Not, vec![g]).unwrap();
//! nl.mark_output(y);
//! nl.validate().unwrap();
//!
//! let out = nl.evaluate(&[true, true]).unwrap();
//! assert_eq!(out, vec![false]);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod error;
mod gate;
#[allow(clippy::module_inception)]
mod netlist;
mod normalize;
mod parser;
mod writer;

pub mod equiv;
pub mod graph;
pub mod ingest;
pub mod sim;
pub mod stats;
pub mod topo;

pub use error::NetlistError;
pub use gate::{Gate, GateId, GateKind};
pub use ingest::{
    parse_auto, parse_path, CircuitFormat, IngestOptions, Ingested, SequentialCircuit,
    SequentialHandling,
};
pub use netlist::Netlist;
pub use parser::parse_bench;
pub use writer::write_bench;

/// Convenient alias for results in this crate.
pub type Result<T> = std::result::Result<T, NetlistError>;
