//! Shared post-parse normalization used by every circuit parser.
//!
//! Dialect tolerances that are properties of *this workspace's netlist
//! model* — not of any one file format — live here, so the `.bench` parser,
//! the AIGER lowering and the AIG simplifier all apply them identically:
//!
//! * [`source_lines`]: line iteration with CRLF (and stray-CR) tolerance,
//! * [`promote_degenerate`]: degenerate single-input `AND`/`OR` gates become
//!   `BUF` and single-input `NAND`/`NOR` gates become `NOT`, instead of
//!   failing arity validation.

use crate::GateKind;

/// Iterates over the logical lines of a circuit source with 1-based line
/// numbers. Lines are split on `\n`; a trailing `\r` (CRLF sources, or the
/// stray CRs some exporters leave) is stripped. Format-specific comment
/// handling stays in the individual parsers.
pub(crate) fn source_lines(source: &str) -> impl Iterator<Item = (usize, &str)> {
    source
        .lines()
        .enumerate()
        .map(|(i, raw)| (i + 1, raw.strip_suffix('\r').unwrap_or(raw)))
}

/// The shared single-input gate promotion: `AND`/`OR` of one operand is a
/// `BUF`, `NAND`/`NOR` of one operand is a `NOT`. Every parser and rewrite
/// that can produce a one-operand variadic gate (mechanically generated
/// benches, constant folding in the AIG simplifier) must route through this
/// so all ingestion paths behave identically.
pub(crate) fn promote_degenerate(kind: GateKind, fanin_count: usize) -> GateKind {
    match (kind, fanin_count) {
        (GateKind::And | GateKind::Or, 1) => GateKind::Buf,
        (GateKind::Nand | GateKind::Nor, 1) => GateKind::Not,
        (k, _) => k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_lines_strip_cr_and_number_from_one() {
        let lines: Vec<(usize, &str)> = source_lines("a\r\nb\nc\r").collect();
        assert_eq!(lines, vec![(1, "a"), (2, "b"), (3, "c")]);
    }

    #[test]
    fn degenerate_promotions() {
        assert_eq!(promote_degenerate(GateKind::And, 1), GateKind::Buf);
        assert_eq!(promote_degenerate(GateKind::Or, 1), GateKind::Buf);
        assert_eq!(promote_degenerate(GateKind::Nand, 1), GateKind::Not);
        assert_eq!(promote_degenerate(GateKind::Nor, 1), GateKind::Not);
        assert_eq!(promote_degenerate(GateKind::And, 2), GateKind::And);
        assert_eq!(promote_degenerate(GateKind::Not, 1), GateKind::Not);
    }
}
