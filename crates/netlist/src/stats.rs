//! Structural statistics of a netlist.
//!
//! These feed the overhead model of the locking crate (area / delay proxies)
//! and the documentation of the benchmark suite.

use crate::{GateKind, Netlist, Result};
use serde::{Deserialize, Serialize};

/// Summary statistics of a netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Design name.
    pub name: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of key inputs.
    pub key_inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of logic gates (excluding inputs, key inputs, constants).
    pub gates: usize,
    /// Longest input→output path length (levels of logic).
    pub depth: usize,
    /// Histogram of gate kinds, indexed by [`GateKind::code`].
    pub kind_histogram: Vec<usize>,
    /// Maximum fan-out over all gates.
    pub max_fanout: usize,
    /// Average fan-out over gates that have at least one sink.
    pub avg_fanout: f64,
    /// Maximum fan-in over all logic gates.
    pub max_fanin: usize,
}

impl NetlistStats {
    /// Number of occurrences of a particular gate kind.
    pub fn count(&self, kind: GateKind) -> usize {
        self.kind_histogram[kind.code()]
    }
}

/// Computes [`NetlistStats`] for a netlist.
///
/// # Errors
///
/// Propagates a cycle error from depth computation if the netlist is invalid.
pub fn netlist_stats(nl: &Netlist) -> Result<NetlistStats> {
    let mut hist = vec![0usize; GateKind::NUM_CODES];
    let mut max_fanin = 0usize;
    for (_, gate) in nl.iter() {
        hist[gate.kind.code()] += 1;
        if !gate.kind.is_input() && !gate.kind.is_constant() {
            max_fanin = max_fanin.max(gate.fanin.len());
        }
    }
    let fanouts = nl.fanouts();
    let max_fanout = fanouts.iter().map(|f| f.len()).max().unwrap_or(0);
    let driving: Vec<usize> = fanouts.iter().map(|f| f.len()).filter(|&l| l > 0).collect();
    let avg_fanout = if driving.is_empty() {
        0.0
    } else {
        driving.iter().sum::<usize>() as f64 / driving.len() as f64
    };
    Ok(NetlistStats {
        name: nl.name().to_string(),
        inputs: nl.num_inputs(),
        key_inputs: nl.num_key_inputs(),
        outputs: nl.num_outputs(),
        gates: nl.num_logic_gates(),
        depth: crate::topo::depth(nl)?,
        kind_histogram: hist,
        max_fanout,
        avg_fanout,
        max_fanin,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    #[test]
    fn stats_of_small_circuit() {
        let mut nl = Netlist::new("s");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_gate("x", GateKind::Nand, vec![a, b]).unwrap();
        let y = nl.add_gate("y", GateKind::Not, vec![x]).unwrap();
        let z = nl.add_gate("z", GateKind::Or, vec![x, y]).unwrap();
        nl.mark_output(z);
        let s = netlist_stats(&nl).unwrap();
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.gates, 3);
        assert_eq!(s.depth, 3);
        assert_eq!(s.count(GateKind::Nand), 1);
        assert_eq!(s.count(GateKind::Not), 1);
        assert_eq!(s.count(GateKind::Or), 1);
        assert_eq!(s.count(GateKind::Input), 2);
        assert_eq!(s.max_fanout, 2); // x drives y and z
        assert_eq!(s.max_fanin, 2);
        assert!(s.avg_fanout > 1.0);
    }

    #[test]
    fn stats_empty_netlist() {
        let nl = Netlist::new("empty");
        let s = netlist_stats(&nl).unwrap();
        assert_eq!(s.gates, 0);
        assert_eq!(s.depth, 0);
        assert_eq!(s.max_fanout, 0);
        assert_eq!(s.avg_fanout, 0.0);
    }
}
