//! Unified circuit-ingestion front door.
//!
//! One format-detecting entry point replaces the format-specific parsers:
//!
//! ```
//! use autolock_netlist::ingest::{parse_auto, IngestOptions, SequentialHandling};
//!
//! let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
//! let ingested = parse_auto("c", src, &IngestOptions::default()).unwrap();
//! assert_eq!(ingested.format.label(), "bench");
//! assert_eq!(ingested.netlist.num_outputs(), 1);
//!
//! // An AIGER source is recognized by content; latches need a sequential mode.
//! let aag = "aag 3 1 1 1 1\n2\n4 6\n4\n6 2 4\ni0 en\nl0 q\no0 out\nc\n";
//! let opts = IngestOptions {
//!     sequential: SequentialHandling::Unroll { frames: 2 },
//!     ..IngestOptions::default()
//! };
//! let ingested = parse_auto("t", aag, &opts).unwrap();
//! assert_eq!(ingested.format.label(), "aiger");
//! assert_eq!(ingested.latches, 1);
//! ```
//!
//! Format detection: an explicit [`IngestOptions::format`] wins, then the
//! file extension (for [`parse_path`]), then a content sniff — a source whose
//! first non-blank line starts with an `aag`/`aig` AIGER header is AIGER,
//! everything else is `.bench`.
//!
//! Sequential sources (AIGER latch lines, `.bench` `DFF`/`LATCH` elements)
//! are controlled by [`SequentialHandling`]: reject (the default, matching
//! the historical combinational-only behavior), **cut** at the registers
//! (latch states become pseudo primary inputs, next-state functions become
//! pseudo primary outputs), or **unroll** to a fixed number of time frames
//! with the key shared across frames.

mod aiger;
mod seq;
mod simplify;

pub use aiger::{parse_aag, write_aag, write_aag_seq};
pub use seq::{Latch, SequentialCircuit};
pub use simplify::simplify;

use crate::{Netlist, NetlistError, Result};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A circuit source format understood by the front door.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CircuitFormat {
    /// ISCAS-89 style `.bench` (see [`crate::parse_bench`]).
    Bench,
    /// ASCII AIGER `.aag` (see [`parse_aag`]).
    Aiger,
}

impl CircuitFormat {
    /// Maps a file extension to a format (`bench` → Bench, `aag`/`aig` →
    /// Aiger); unknown extensions return `None` and fall back to sniffing.
    pub fn from_extension(ext: &str) -> Option<CircuitFormat> {
        match ext.to_ascii_lowercase().as_str() {
            "bench" => Some(CircuitFormat::Bench),
            "aag" | "aig" => Some(CircuitFormat::Aiger),
            _ => None,
        }
    }

    /// Detects the format of a source by content: a first non-blank line
    /// opening with an AIGER header keyword means AIGER, anything else is
    /// treated as `.bench`.
    pub fn sniff(source: &str) -> CircuitFormat {
        for (_, raw) in crate::normalize::source_lines(source) {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let mut toks = line.split_ascii_whitespace();
            return match toks.next() {
                Some("aag") | Some("aig") => CircuitFormat::Aiger,
                _ => CircuitFormat::Bench,
            };
        }
        CircuitFormat::Bench
    }

    /// Stable lowercase label (`"bench"` / `"aiger"`), used in result rows
    /// and manifests.
    pub fn label(self) -> &'static str {
        match self {
            CircuitFormat::Bench => "bench",
            CircuitFormat::Aiger => "aiger",
        }
    }
}

/// What to do when an ingested source turns out to be sequential.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SequentialHandling {
    /// Fail with [`NetlistError::Sequential`] — the historical behavior and
    /// the default.
    #[default]
    Reject,
    /// Cut at the registers: latch states stay pseudo primary inputs and
    /// next-state functions become pseudo primary outputs
    /// ([`SequentialCircuit::cut`]).
    Cut,
    /// Time-frame expansion to `frames` copies of the logic with a shared
    /// key ([`SequentialCircuit::unroll`]).
    Unroll {
        /// Number of frames (must be at least 1).
        frames: usize,
    },
}

/// Options for the ingestion front door.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IngestOptions {
    /// Force a format instead of detecting one.
    pub format: Option<CircuitFormat>,
    /// Sequential-source handling (default: reject).
    pub sequential: SequentialHandling,
    /// Run the AIG simplifier ([`simplify`]) on the resulting netlist.
    /// AIGER lowering always simplifies internally regardless of this flag;
    /// `.bench` sources are only simplified when it is set, so existing
    /// `.bench` consumers see byte-stable parses by default.
    pub simplify: bool,
}

/// How a sequential source was resolved into a combinational netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeqResolution {
    /// The source was combinational to begin with.
    Combinational,
    /// Cut at the registers.
    Cut,
    /// Unrolled to the given number of frames.
    Unrolled {
        /// Number of frames of the expansion.
        frames: usize,
    },
}

/// The result of ingesting one circuit source.
#[derive(Debug, Clone, PartialEq)]
pub struct Ingested {
    /// Detected (or forced) source format.
    pub format: CircuitFormat,
    /// The combinational netlist the attacks can run on.
    pub netlist: Netlist,
    /// Number of latches in the source (`0` for combinational sources).
    pub latches: usize,
    /// How latches were resolved.
    pub resolution: SeqResolution,
}

/// Parses a source with a known format.
///
/// # Errors
///
/// Parse errors from the format parsers, [`NetlistError::Sequential`] when
/// the source has latches and `opts.sequential` is
/// [`SequentialHandling::Reject`], and [`NetlistError::Ingest`] for invalid
/// modes (e.g. unrolling to zero frames).
pub fn parse_source(
    name: &str,
    source: &str,
    format: CircuitFormat,
    opts: &IngestOptions,
) -> Result<Ingested> {
    let seq = parse_sequential(name, source, Some(format))?;
    let latches = seq.num_latches();
    let (netlist, resolution) = match seq.into_combinational() {
        Ok(nl) => (nl, SeqResolution::Combinational),
        Err(seq) => match opts.sequential {
            SequentialHandling::Reject => return Err(NetlistError::Sequential { latches }),
            SequentialHandling::Cut => (seq.cut(), SeqResolution::Cut),
            SequentialHandling::Unroll { frames } => {
                (seq.unroll(frames)?, SeqResolution::Unrolled { frames })
            }
        },
    };
    let netlist = if opts.simplify {
        simplify(&netlist)?
    } else {
        netlist
    };
    Ok(Ingested {
        format,
        netlist,
        latches,
        resolution,
    })
}

/// Parses a source, detecting the format (explicit option, then content
/// sniff).
///
/// # Errors
///
/// See [`parse_source`].
pub fn parse_auto(name: &str, source: &str, opts: &IngestOptions) -> Result<Ingested> {
    let format = opts.format.unwrap_or_else(|| CircuitFormat::sniff(source));
    parse_source(name, source, format, opts)
}

/// Reads and parses a circuit file. The circuit name is the file stem;
/// format detection prefers an explicit option, then the extension, then the
/// content sniff.
///
/// # Errors
///
/// [`NetlistError::Io`] when the file cannot be read, otherwise see
/// [`parse_source`].
pub fn parse_path(path: impl AsRef<Path>, opts: &IngestOptions) -> Result<Ingested> {
    let path = path.as_ref();
    let source = std::fs::read_to_string(path).map_err(|e| NetlistError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit")
        .to_string();
    let format = opts
        .format
        .or_else(|| {
            path.extension()
                .and_then(|e| e.to_str())
                .and_then(CircuitFormat::from_extension)
        })
        .unwrap_or_else(|| CircuitFormat::sniff(&source));
    parse_source(&name, &source, format, opts)
}

/// Parses a source into its [`SequentialCircuit`] form without resolving
/// latches (combinational sources yield zero latches). `format` defaults to
/// a content sniff.
///
/// # Errors
///
/// Parse errors from the format parsers.
pub fn parse_sequential(
    name: &str,
    source: &str,
    format: Option<CircuitFormat>,
) -> Result<SequentialCircuit> {
    match format.unwrap_or_else(|| CircuitFormat::sniff(source)) {
        CircuitFormat::Bench => crate::parser::parse_bench_sequential(name, source),
        CircuitFormat::Aiger => parse_aag(name, source),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEQ_AAG: &str = "aag 3 1 1 1 1\n2\n4 6\n4\n6 2 4\ni0 en\nl0 q\no0 out\nc\n";

    #[test]
    fn extension_detection() {
        assert_eq!(
            CircuitFormat::from_extension("bench"),
            Some(CircuitFormat::Bench)
        );
        assert_eq!(
            CircuitFormat::from_extension("AAG"),
            Some(CircuitFormat::Aiger)
        );
        assert_eq!(
            CircuitFormat::from_extension("aig"),
            Some(CircuitFormat::Aiger)
        );
        assert_eq!(CircuitFormat::from_extension("v"), None);
    }

    #[test]
    fn content_sniffing() {
        assert_eq!(CircuitFormat::sniff(SEQ_AAG), CircuitFormat::Aiger);
        assert_eq!(
            CircuitFormat::sniff("# comment\n\nINPUT(a)\n"),
            CircuitFormat::Bench
        );
        assert_eq!(
            CircuitFormat::sniff("\r\n\r\naag 0 0 0 0 0\r\n"),
            CircuitFormat::Aiger
        );
        assert_eq!(CircuitFormat::sniff(""), CircuitFormat::Bench);
        // `aagx` is not an AIGER keyword.
        assert_eq!(
            CircuitFormat::sniff("aagx = AND(a, b)\n"),
            CircuitFormat::Bench
        );
    }

    #[test]
    fn auto_parse_bench_matches_parse_bench() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
        let ingested = parse_auto("c", src, &IngestOptions::default()).unwrap();
        assert_eq!(ingested.format, CircuitFormat::Bench);
        assert_eq!(ingested.latches, 0);
        assert_eq!(ingested.resolution, SeqResolution::Combinational);
        let direct = crate::parse_bench("c", src).unwrap();
        assert_eq!(
            ingested.netlist, direct,
            "front door is byte-stable for .bench"
        );
    }

    #[test]
    fn sequential_rejected_by_default() {
        let err = parse_auto("t", SEQ_AAG, &IngestOptions::default()).unwrap_err();
        assert!(matches!(err, NetlistError::Sequential { latches: 1 }));
    }

    #[test]
    fn cut_and_unroll_resolutions() {
        let cut = parse_auto(
            "t",
            SEQ_AAG,
            &IngestOptions {
                sequential: SequentialHandling::Cut,
                ..IngestOptions::default()
            },
        )
        .unwrap();
        assert_eq!(cut.resolution, SeqResolution::Cut);
        assert_eq!(cut.latches, 1);
        assert_eq!(cut.netlist.num_outputs(), 2);

        let unrolled = parse_auto(
            "t",
            SEQ_AAG,
            &IngestOptions {
                sequential: SequentialHandling::Unroll { frames: 2 },
                ..IngestOptions::default()
            },
        )
        .unwrap();
        assert_eq!(unrolled.resolution, SeqResolution::Unrolled { frames: 2 });
        assert_eq!(unrolled.netlist.num_outputs(), 2);
    }

    #[test]
    fn sequential_mode_is_a_noop_for_combinational_sources() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
        let opts = IngestOptions {
            sequential: SequentialHandling::Unroll { frames: 4 },
            ..IngestOptions::default()
        };
        let ingested = parse_auto("c", src, &opts).unwrap();
        assert_eq!(ingested.resolution, SeqResolution::Combinational);
        assert_eq!(ingested.netlist.num_inputs(), 1);
    }

    #[test]
    fn parse_path_reads_and_names_by_stem() {
        let dir = std::env::temp_dir().join("autolock_ingest_mod_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bench = dir.join("tiny.bench");
        std::fs::write(&bench, "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let aag = dir.join("tiny2.aag");
        std::fs::write(&aag, "aag 1 1 0 1 0\n2\n2\ni0 a\no0 y\nc\n").unwrap();

        let b = parse_path(&bench, &IngestOptions::default()).unwrap();
        assert_eq!(b.format, CircuitFormat::Bench);
        assert_eq!(b.netlist.name(), "tiny");
        let a = parse_path(&aag, &IngestOptions::default()).unwrap();
        assert_eq!(a.format, CircuitFormat::Aiger);
        assert_eq!(a.netlist.name(), "tiny2");

        let missing = parse_path(dir.join("nope.bench"), &IngestOptions::default());
        assert!(matches!(missing, Err(NetlistError::Io { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_simplify_opt_in() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n\
                   dead = AND(a, b)\nn1 = NOT(a)\nn2 = NOT(n1)\ny = BUFF(n2)\n";
        let plain = parse_auto("c", src, &IngestOptions::default()).unwrap();
        assert!(plain.netlist.find("dead").is_some());
        let simplified = parse_auto(
            "c",
            src,
            &IngestOptions {
                simplify: true,
                ..IngestOptions::default()
            },
        )
        .unwrap();
        assert!(simplified.netlist.find("dead").is_none());
        assert!(
            crate::equiv::exhaustive_equivalent(&plain.netlist, &[], &simplified.netlist, &[])
                .unwrap()
        );
    }
}
