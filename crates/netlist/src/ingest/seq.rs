//! Sequential circuits: a combinational core plus latches, with the two
//! lowerings that turn them into combinational attack targets — **cut** at
//! the registers or **unroll** to `k` time frames.

use crate::{GateId, GateKind, Netlist, NetlistError, Result};
use std::collections::HashMap;

/// One latch (DFF): its current-state signal is a pseudo primary input of
/// the combinational core, its next-state function is an ordinary core gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latch {
    /// The latch's current-state signal: a [`GateKind::Input`] gate of the
    /// core (the register output, `Q`).
    pub state: GateId,
    /// The gate computing the latch's next-state value (the register input,
    /// `D`).
    pub next: GateId,
    /// Reset value of the register (frame 0 of an unrolling). AIGER latches
    /// without an explicit init default to `false`.
    pub init: bool,
}

/// A sequential netlist: a combinational core in which every latch's
/// current-state signal is a pseudo primary input, plus the latch records
/// tying those pseudo-inputs to their next-state gates.
///
/// Two lowerings produce a combinational [`Netlist`] the attacks can run on:
///
/// * [`SequentialCircuit::cut`] — cut at the registers: latch states stay
///   pseudo primary inputs and the next-state functions become additional
///   pseudo primary outputs. One copy of the logic; the attack treats the
///   register boundary as observable/controllable.
/// * [`SequentialCircuit::unroll`] — time-frame expansion: `k` copies of the
///   core, frame 0 latches start at their `init` values, and each frame's
///   next-state feeds the following frame's state. Key inputs are shared
///   across frames (one key drives the whole unrolling).
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialCircuit {
    core: Netlist,
    latches: Vec<Latch>,
}

impl SequentialCircuit {
    /// Builds a sequential circuit from a combinational core and its latch
    /// records.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidGateId`] for out-of-range latch ids,
    /// [`NetlistError::WrongGateKind`] when a latch state is not an
    /// [`GateKind::Input`] gate, and [`NetlistError::Ingest`] when two
    /// latches share a state gate.
    pub fn new(core: Netlist, latches: Vec<Latch>) -> Result<Self> {
        let mut seen = std::collections::HashSet::new();
        for latch in &latches {
            let state = core.try_gate(latch.state)?;
            if state.kind != GateKind::Input {
                return Err(NetlistError::WrongGateKind {
                    gate: latch.state,
                    expected: "INPUT (latch state)".to_string(),
                });
            }
            core.try_gate(latch.next)?;
            if !seen.insert(latch.state) {
                return Err(NetlistError::Ingest(format!(
                    "latch state `{}` is driven by two latches",
                    state.name
                )));
            }
        }
        Ok(SequentialCircuit { core, latches })
    }

    /// Design name (the core's name).
    pub fn name(&self) -> &str {
        self.core.name()
    }

    /// The combinational core. Latch current-state signals appear as
    /// ordinary [`GateKind::Input`] gates; next-state gates are *not* marked
    /// as outputs here (that is what [`SequentialCircuit::cut`] does).
    pub fn core(&self) -> &Netlist {
        &self.core
    }

    /// The latch records.
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    /// Number of latches (`0` means the circuit is combinational).
    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    /// `true` when the circuit has no latches.
    pub fn is_combinational(&self) -> bool {
        self.latches.is_empty()
    }

    /// Extracts the plain combinational netlist when there are no latches;
    /// returns `self` unchanged otherwise.
    ///
    /// # Errors
    ///
    /// The `Err` variant is the untouched circuit (not an error value) so
    /// callers can continue with [`SequentialCircuit::cut`] or
    /// [`SequentialCircuit::unroll`].
    #[allow(clippy::result_large_err)] // Err is the circuit itself, by design
    pub fn into_combinational(self) -> std::result::Result<Netlist, SequentialCircuit> {
        if self.latches.is_empty() {
            Ok(self.core)
        } else {
            Err(self)
        }
    }

    /// Cuts the circuit at its registers: returns the core with every
    /// latch's next-state gate additionally marked as a primary output. The
    /// latch current-state signals are already pseudo primary inputs, so the
    /// result is a self-contained combinational netlist whose interface is
    /// `PIs + latch states → POs + latch next-states`.
    pub fn cut(&self) -> Netlist {
        let mut nl = self.core.clone();
        for latch in &self.latches {
            nl.mark_output(latch.next);
        }
        nl
    }

    /// Unrolls the circuit to `frames` time frames.
    ///
    /// Frame `f` gets its own copy of every primary input (named
    /// `{name}@{f}`) and of every logic gate; frame 0's latch states are
    /// constants holding each latch's `init` value, and frame `f+1`'s latch
    /// states are wired to frame `f`'s next-state gates. Key inputs are
    /// created **once** (frame 0, original names) and shared by all frames —
    /// one key drives the whole unrolling, which is what makes the result a
    /// faithful locking-attack target. Primary outputs are marked per frame
    /// in frame-major order.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Ingest`] for `frames == 0` and propagates any
    /// construction/validation error.
    pub fn unroll(&self, frames: usize) -> Result<Netlist> {
        if frames == 0 {
            return Err(NetlistError::Ingest(
                "unrolling needs at least one frame".to_string(),
            ));
        }
        let core = &self.core;
        let order = crate::topo::topological_order(core)?;
        let latch_index: HashMap<GateId, usize> = self
            .latches
            .iter()
            .enumerate()
            .map(|(i, latch)| (latch.state, i))
            .collect();
        let mut nl = Netlist::new(format!("{}_u{frames}", core.name()));
        // Core key-input id -> shared new id (created in frame 0).
        let mut shared_keys: HashMap<GateId, GateId> = HashMap::new();
        // New ids of the previous frame's next-state gates.
        let mut prev_next: Vec<GateId> = Vec::new();
        for frame in 0..frames {
            let mut map: Vec<GateId> = vec![GateId(u32::MAX); core.len()];
            for &id in &order {
                let gate = core.gate(id);
                let new_id = match gate.kind {
                    GateKind::Input => {
                        if let Some(&li) = latch_index.get(&id) {
                            if frame == 0 {
                                let kind = if self.latches[li].init {
                                    GateKind::Const1
                                } else {
                                    GateKind::Const0
                                };
                                nl.add_gate(format!("{}@0", gate.name), kind, Vec::new())?
                            } else {
                                prev_next[li]
                            }
                        } else {
                            nl.try_add_input(format!("{}@{frame}", gate.name))?
                        }
                    }
                    GateKind::KeyInput => {
                        if frame == 0 {
                            let kid = nl.add_key_input(gate.name.clone())?;
                            shared_keys.insert(id, kid);
                            kid
                        } else {
                            shared_keys[&id]
                        }
                    }
                    kind => {
                        let fanin: Vec<GateId> =
                            gate.fanin.iter().map(|f| map[f.index()]).collect();
                        nl.add_gate(format!("{}@{frame}", gate.name), kind, fanin)?
                    }
                };
                map[id.index()] = new_id;
            }
            for &o in core.outputs() {
                nl.mark_output(map[o.index()]);
            }
            prev_next = self
                .latches
                .iter()
                .map(|latch| map[latch.next.index()])
                .collect();
        }
        nl.validate()?;
        Ok(nl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-bit toggle: q' = XOR(q, en); output y = q.
    fn toggle() -> SequentialCircuit {
        let mut core = Netlist::new("toggle");
        let en = core.add_input("en");
        let q = core.add_input("q");
        let nxt = core.add_gate("nxt", GateKind::Xor, vec![q, en]).unwrap();
        let y = core.add_gate("y", GateKind::Buf, vec![q]).unwrap();
        core.mark_output(y);
        SequentialCircuit::new(
            core,
            vec![Latch {
                state: q,
                next: nxt,
                init: false,
            }],
        )
        .unwrap()
    }

    #[test]
    fn cut_adds_next_state_outputs() {
        let seq = toggle();
        let cut = seq.cut();
        assert_eq!(cut.num_inputs(), 2); // en + pseudo-input q
        assert_eq!(cut.num_outputs(), 2); // y + nxt
                                          // q=1, en=1: y = q = 1, nxt = 0.
        assert_eq!(cut.evaluate(&[true, true]).unwrap(), vec![true, false]);
    }

    #[test]
    fn unroll_two_frames_wires_state_through() {
        let seq = toggle();
        let u2 = seq.unroll(2).unwrap();
        // One `en` input per frame; q@0 is a constant, q@1 an internal wire.
        assert_eq!(u2.num_inputs(), 2);
        assert_eq!(u2.num_outputs(), 2);
        // init q=0. Frame 0: y@0 = 0. en@0=1 -> q@1 = 1 -> y@1 = 1.
        assert_eq!(
            u2.evaluate(&[true, false]).unwrap(),
            vec![false, true],
            "toggle fires between frame 0 and 1"
        );
        // en@0=0 keeps q at 0.
        assert_eq!(u2.evaluate(&[false, true]).unwrap(), vec![false, false]);
    }

    #[test]
    fn unroll_inits_to_one_when_requested() {
        let mut seq = toggle();
        seq.latches[0].init = true;
        let u1 = seq.unroll(1).unwrap();
        assert_eq!(u1.evaluate(&[false]).unwrap(), vec![true]);
    }

    #[test]
    fn unroll_shares_key_inputs_across_frames() {
        let mut core = Netlist::new("locked_toggle");
        let en = core.add_input("en");
        let k = core.add_key_input("keyinput0").unwrap();
        let q = core.add_input("q");
        let g = core.add_gate("g", GateKind::Xor, vec![en, k]).unwrap();
        let nxt = core.add_gate("nxt", GateKind::Xor, vec![q, g]).unwrap();
        core.mark_output(nxt);
        let seq = SequentialCircuit::new(
            core,
            vec![Latch {
                state: q,
                next: nxt,
                init: false,
            }],
        )
        .unwrap();
        let u3 = seq.unroll(3).unwrap();
        assert_eq!(u3.num_key_inputs(), 1, "one shared key for all frames");
        assert_eq!(u3.num_inputs(), 3);
    }

    #[test]
    fn zero_frames_rejected() {
        let err = toggle().unroll(0).unwrap_err();
        assert!(matches!(err, NetlistError::Ingest(_)));
    }

    #[test]
    fn non_input_latch_state_rejected() {
        let mut core = Netlist::new("bad");
        let a = core.add_input("a");
        let g = core.add_gate("g", GateKind::Not, vec![a]).unwrap();
        core.mark_output(g);
        let err = SequentialCircuit::new(
            core,
            vec![Latch {
                state: g,
                next: a,
                init: false,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, NetlistError::WrongGateKind { .. }));
    }

    #[test]
    fn duplicate_latch_state_rejected() {
        let mut core = Netlist::new("dup");
        let q = core.add_input("q");
        let n = core.add_gate("n", GateKind::Not, vec![q]).unwrap();
        core.mark_output(n);
        let latch = Latch {
            state: q,
            next: n,
            init: false,
        };
        let err = SequentialCircuit::new(core, vec![latch, latch]).unwrap_err();
        assert!(matches!(err, NetlistError::Ingest(_)));
    }

    #[test]
    fn combinational_extraction() {
        let mut core = Netlist::new("comb");
        let a = core.add_input("a");
        let y = core.add_gate("y", GateKind::Not, vec![a]).unwrap();
        core.mark_output(y);
        let seq = SequentialCircuit::new(core, Vec::new()).unwrap();
        assert!(seq.is_combinational());
        assert!(seq.into_combinational().is_ok());
        assert!(toggle().into_combinational().is_err());
    }
}
