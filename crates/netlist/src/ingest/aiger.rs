//! ASCII AIGER (`.aag`) reader and writer.
//!
//! The reader lowers an AND/inverter graph into the workspace [`Netlist`]
//! model and runs the AIG simplifier ([`super::simplify`]) as part of the
//! lowering, so `NOT`-chain scaffolding never reaches consumers. Latches
//! parse into a [`SequentialCircuit`]; combinational files simply produce a
//! circuit with zero latches.
//!
//! Supported dialect:
//!
//! * header `aag M I L O A` (the binary `aig` format is rejected with a
//!   dedicated message),
//! * latch lines `current next [init]` with `init` restricted to `0`/`1`
//!   (the "uninitialized" spelling `init == current` is read as `0`),
//! * symbol table (`iN`/`lN`/`oN`) and a trailing comment section.
//!
//! Key inputs round-trip through the same convention as the `.bench`
//! writer: a key input is emitted as an ordinary input whose symbol starts
//! with `keyinput`, and the reader promotes such inputs back to
//! [`GateKind::KeyInput`].

use super::seq::{Latch, SequentialCircuit};
use crate::normalize::source_lines;
use crate::{GateId, GateKind, Netlist, NetlistError, Result};
use std::collections::HashMap;

fn parse_err(line: usize, message: impl Into<String>) -> NetlistError {
    NetlistError::Parse {
        line,
        message: message.into(),
    }
}

/// One parsed numeric line of the prologue.
fn parse_literals(line: usize, text: &str, expect: &str) -> Result<Vec<u64>> {
    let mut lits = Vec::new();
    for tok in text.split_ascii_whitespace() {
        let lit: u64 = tok
            .parse()
            .map_err(|_| parse_err(line, format!("expected {expect}, got `{tok}`")))?;
        lits.push(lit);
    }
    Ok(lits)
}

struct Header {
    max_var: u64,
    inputs: usize,
    latches: usize,
    outputs: usize,
    ands: usize,
}

fn parse_header(line: usize, text: &str) -> Result<Header> {
    let mut toks = text.split_ascii_whitespace();
    match toks.next() {
        Some("aag") => {}
        Some("aig") => {
            return Err(parse_err(
                line,
                "binary AIGER (`aig`) is not supported; convert to ASCII (`aag`)",
            ))
        }
        _ => return Err(parse_err(line, "expected AIGER header `aag M I L O A`")),
    }
    let nums: Vec<u64> = parse_literals(line, &toks.collect::<Vec<_>>().join(" "), "header count")?;
    if nums.len() != 5 {
        return Err(parse_err(line, "AIGER header needs 5 counts: M I L O A"));
    }
    let header = Header {
        max_var: nums[0],
        inputs: nums[1] as usize,
        latches: nums[2] as usize,
        outputs: nums[3] as usize,
        ands: nums[4] as usize,
    };
    if nums[1] + nums[2] + nums[4] > header.max_var {
        return Err(parse_err(
            line,
            format!(
                "header claims M={} but I+L+A={}",
                header.max_var,
                nums[1] + nums[2] + nums[4]
            ),
        ));
    }
    Ok(header)
}

struct RawLatch {
    line: usize,
    current: u64,
    next: u64,
    init: bool,
}

struct RawAnd {
    line: usize,
    lhs: u64,
    rhs0: u64,
    rhs1: u64,
}

/// Parses an ASCII AIGER source into a [`SequentialCircuit`]. Combinational
/// files yield a circuit with zero latches — use
/// [`SequentialCircuit::into_combinational`] or the front-door options in
/// [`super`] to obtain a plain [`Netlist`].
///
/// # Errors
///
/// Malformed sources (bad header, out-of-range or dangling literals,
/// truncated sections, redefined variables) produce structured
/// [`NetlistError::Parse`] values; this function never panics on bad input.
pub fn parse_aag(name: impl Into<String>, source: &str) -> Result<SequentialCircuit> {
    let mut lines = source_lines(source);
    let (header_line, header_text) = lines
        .next()
        .ok_or_else(|| parse_err(1, "empty AIGER source"))?;
    let header = parse_header(header_line, header_text)?;
    let max_lit = 2 * header.max_var + 1;
    let check_lit = |line: usize, lit: u64| -> Result<u64> {
        if lit > max_lit {
            Err(parse_err(
                line,
                format!("literal {lit} exceeds maximum variable {}", header.max_var),
            ))
        } else {
            Ok(lit)
        }
    };

    // ---- prologue: inputs, latches, outputs, ands -------------------------
    let mut next_numeric = |what: &str| -> Result<(usize, Vec<u64>)> {
        match lines.next() {
            Some((line, text)) => Ok((line, parse_literals(line, text, what)?)),
            None => Err(parse_err(0, format!("truncated file: missing {what} line"))),
        }
    };

    let mut input_lits = Vec::with_capacity(header.inputs);
    for _ in 0..header.inputs {
        let (line, nums) = next_numeric("input literal")?;
        if nums.len() != 1 {
            return Err(parse_err(line, "input line must hold exactly one literal"));
        }
        let lit = check_lit(line, nums[0])?;
        if lit < 2 || lit % 2 != 0 {
            return Err(parse_err(line, format!("invalid input literal {lit}")));
        }
        input_lits.push((line, lit));
    }

    let mut raw_latches = Vec::with_capacity(header.latches);
    for _ in 0..header.latches {
        let (line, nums) = next_numeric("latch line")?;
        if nums.len() < 2 || nums.len() > 3 {
            return Err(parse_err(line, "latch line must be `current next [init]`"));
        }
        let current = check_lit(line, nums[0])?;
        if current < 2 || current % 2 != 0 {
            return Err(parse_err(line, format!("invalid latch literal {current}")));
        }
        let next = check_lit(line, nums[1])?;
        let init = match nums.get(2) {
            None | Some(0) => false,
            Some(1) => true,
            Some(&v) if v == current => false, // "uninitialized" spelling
            Some(v) => return Err(parse_err(line, format!("unsupported latch init value {v}"))),
        };
        raw_latches.push(RawLatch {
            line,
            current,
            next,
            init,
        });
    }

    let mut output_lits = Vec::with_capacity(header.outputs);
    for _ in 0..header.outputs {
        let (line, nums) = next_numeric("output literal")?;
        if nums.len() != 1 {
            return Err(parse_err(line, "output line must hold exactly one literal"));
        }
        output_lits.push((line, check_lit(line, nums[0])?));
    }

    let mut raw_ands = Vec::with_capacity(header.ands);
    for _ in 0..header.ands {
        let (line, nums) = next_numeric("and line")?;
        if nums.len() != 3 {
            return Err(parse_err(line, "and line must be `lhs rhs0 rhs1`"));
        }
        let lhs = check_lit(line, nums[0])?;
        if lhs < 2 || lhs % 2 != 0 {
            return Err(parse_err(line, format!("invalid and lhs literal {lhs}")));
        }
        raw_ands.push(RawAnd {
            line,
            lhs,
            rhs0: check_lit(line, nums[1])?,
            rhs1: check_lit(line, nums[2])?,
        });
    }

    // ---- symbol table and comments ---------------------------------------
    let mut input_symbols: HashMap<usize, String> = HashMap::new();
    let mut latch_symbols: HashMap<usize, String> = HashMap::new();
    let mut output_symbols: HashMap<usize, String> = HashMap::new();
    for (line, text) in lines {
        let text = text.trim();
        if text == "c" {
            break; // comment section: everything after is free-form
        }
        if text.is_empty() {
            continue;
        }
        let table = match text.chars().next() {
            Some('i') => &mut input_symbols,
            Some('l') => &mut latch_symbols,
            Some('o') => &mut output_symbols,
            _ => {
                return Err(parse_err(
                    line,
                    format!("unexpected line `{text}` after and section"),
                ))
            }
        };
        let rest = &text[1..];
        let mut parts = rest.splitn(2, ' ');
        let pos: usize = parts
            .next()
            .unwrap_or("")
            .parse()
            .map_err(|_| parse_err(line, format!("bad symbol table entry `{text}`")))?;
        let sym = parts
            .next()
            .ok_or_else(|| parse_err(line, format!("symbol entry `{text}` has no name")))?
            .trim()
            .to_string();
        if sym.is_empty() {
            return Err(parse_err(
                line,
                format!("symbol entry `{text}` has no name"),
            ));
        }
        table.insert(pos, sym);
    }

    // ---- lowering ---------------------------------------------------------
    let mut nl = Netlist::new(name);
    // Positive (even) literal -> defining gate.
    let mut gate_of_var: HashMap<u64, GateId> = HashMap::new();
    let mut defined_lines: HashMap<u64, usize> = HashMap::new();

    for (pos, &(line, lit)) in input_lits.iter().enumerate() {
        if defined_lines.insert(lit, line).is_some() {
            return Err(parse_err(line, format!("literal {lit} defined twice")));
        }
        let sym = input_symbols
            .get(&pos)
            .cloned()
            .unwrap_or_else(|| format!("pi{pos}"));
        let id = if sym.to_ascii_lowercase().starts_with("keyinput") {
            nl.add_key_input(sym)?
        } else {
            nl.try_add_input(sym)?
        };
        gate_of_var.insert(lit, id);
    }
    let mut latch_states = Vec::with_capacity(raw_latches.len());
    for (pos, latch) in raw_latches.iter().enumerate() {
        if defined_lines.insert(latch.current, latch.line).is_some() {
            return Err(parse_err(
                latch.line,
                format!("literal {} defined twice", latch.current),
            ));
        }
        let sym = latch_symbols
            .get(&pos)
            .cloned()
            .unwrap_or_else(|| format!("latch{pos}"));
        let id = nl.try_add_input(nl.fresh_name(&sym))?;
        gate_of_var.insert(latch.current, id);
        latch_states.push(id);
    }

    // Lazily created constants and per-literal inverters.
    let mut const_gates: [Option<GateId>; 2] = [None, None];
    let mut not_gates: HashMap<u64, GateId> = HashMap::new();

    // Insert AND gates with a worklist: `aag` does not require definitions
    // to precede uses.
    let mut pending: Vec<&RawAnd> = raw_ands.iter().collect();
    for and in &raw_ands {
        if defined_lines.insert(and.lhs, and.line).is_some() {
            return Err(parse_err(
                and.line,
                format!("literal {} defined twice", and.lhs),
            ));
        }
    }
    while !pending.is_empty() {
        let before = pending.len();
        let mut still_pending = Vec::new();
        for and in pending {
            let ready = [and.rhs0, and.rhs1]
                .iter()
                .all(|&lit| lit < 2 || gate_of_var.contains_key(&(lit & !1)));
            if !ready {
                still_pending.push(and);
                continue;
            }
            let a = resolve_literal(
                &mut nl,
                &gate_of_var,
                &mut const_gates,
                &mut not_gates,
                and.rhs0,
            )?;
            let b = resolve_literal(
                &mut nl,
                &gate_of_var,
                &mut const_gates,
                &mut not_gates,
                and.rhs1,
            )?;
            let name = nl.fresh_name(&format!("a{}", and.lhs / 2));
            let id = nl.add_gate(name, GateKind::And, vec![a, b])?;
            gate_of_var.insert(and.lhs, id);
        }
        if still_pending.len() == before {
            let and = still_pending[0];
            let missing = [and.rhs0, and.rhs1]
                .into_iter()
                .find(|&lit| lit >= 2 && !gate_of_var.contains_key(&(lit & !1)))
                .unwrap_or(and.rhs0);
            let msg = if defined_lines.contains_key(&(missing & !1)) {
                format!("combinational cycle through literal {}", and.lhs)
            } else {
                format!("dangling literal {missing}: it is never defined")
            };
            return Err(parse_err(and.line, msg));
        }
        pending = still_pending;
    }

    // Outputs: named wrapper gates so symbols survive simplification.
    for (pos, &(line, lit)) in output_lits.iter().enumerate() {
        if lit >= 2 && !gate_of_var.contains_key(&(lit & !1)) {
            return Err(parse_err(
                line,
                format!("dangling output literal {lit}: it is never defined"),
            ));
        }
        let g = resolve_literal(&mut nl, &gate_of_var, &mut const_gates, &mut not_gates, lit)?;
        let sym = output_symbols
            .get(&pos)
            .cloned()
            .unwrap_or_else(|| format!("po{pos}"));
        let kind = match nl.gate(g).kind {
            GateKind::Const0 => GateKind::Const0,
            GateKind::Const1 => GateKind::Const1,
            _ => GateKind::Buf,
        };
        let fanin = if kind == GateKind::Buf {
            vec![g]
        } else {
            Vec::new()
        };
        let id = nl.add_gate(nl.fresh_name(&sym), kind, fanin)?;
        nl.mark_output(id);
    }

    // Latch next-state functions.
    let mut latch_nexts = Vec::with_capacity(raw_latches.len());
    for latch in &raw_latches {
        if latch.next >= 2 && !gate_of_var.contains_key(&(latch.next & !1)) {
            return Err(parse_err(
                latch.line,
                format!(
                    "dangling latch next literal {}: it is never defined",
                    latch.next
                ),
            ));
        }
        latch_nexts.push(resolve_literal(
            &mut nl,
            &gate_of_var,
            &mut const_gates,
            &mut not_gates,
            latch.next,
        )?);
    }

    nl.validate()?;

    // AIG simplification is part of the lowering: prune the NOT/AND
    // scaffolding, hash structurally and restrict to the live cone. Latch
    // next-state gates are pinned so they survive by name.
    let (simplified, map) = super::simplify::simplify_mapped(&nl, &latch_nexts)?;
    let latches = raw_latches
        .iter()
        .zip(latch_states.iter().zip(latch_nexts.iter()))
        .map(|(raw, (&state, &next))| Latch {
            state: map[state.index()].expect("inputs survive simplification"),
            next: map[next.index()].expect("pinned roots survive simplification"),
            init: raw.init,
        })
        .collect();
    SequentialCircuit::new(simplified, latches)
}

/// Resolves an AIGER literal to a netlist gate, lazily materializing
/// constants and one shared inverter per odd literal.
fn resolve_literal(
    nl: &mut Netlist,
    gate_of_var: &HashMap<u64, GateId>,
    const_gates: &mut [Option<GateId>; 2],
    not_gates: &mut HashMap<u64, GateId>,
    lit: u64,
) -> Result<GateId> {
    if lit < 2 {
        let idx = lit as usize;
        if let Some(g) = const_gates[idx] {
            return Ok(g);
        }
        let (name, kind) = if lit == 0 {
            ("gnd", GateKind::Const0)
        } else {
            ("vdd", GateKind::Const1)
        };
        let id = nl.add_gate(nl.fresh_name(name), kind, Vec::new())?;
        const_gates[idx] = Some(id);
        return Ok(id);
    }
    let base = gate_of_var[&(lit & !1)];
    if lit.is_multiple_of(2) {
        return Ok(base);
    }
    if let Some(&g) = not_gates.get(&lit) {
        return Ok(g);
    }
    let name = nl.fresh_name(&format!("n{lit}"));
    let id = nl.add_gate(name, GateKind::Not, vec![base])?;
    not_gates.insert(lit, id);
    Ok(id)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Serializes a combinational netlist as ASCII AIGER (`.aag`).
///
/// Every gate kind of the workspace model is Tseitin-free encodable into
/// AND/inverter form (`XOR`/`XNOR`/`MUX` expand into small AND trees);
/// key inputs are written as ordinary inputs whose symbol keeps the
/// `keyinput` prefix so a re-parse promotes them back.
///
/// # Errors
///
/// Propagates topological-ordering errors from invalid netlists.
pub fn write_aag(nl: &Netlist) -> Result<String> {
    write_aag_parts(nl, &[])
}

/// Serializes a sequential circuit as ASCII AIGER with latch lines.
pub fn write_aag_seq(seq: &SequentialCircuit) -> Result<String> {
    write_aag_parts(seq.core(), seq.latches())
}

struct AagBuilder {
    next_var: u64,
    ands: Vec<(u64, u64, u64)>,
    hash: HashMap<(u64, u64), u64>,
}

impl AagBuilder {
    /// AND of two literals with constant/trivial shortcuts and structural
    /// hashing; returns the literal of the result.
    fn and2(&mut self, a: u64, b: u64) -> u64 {
        if a == 0 || b == 0 || a == (b ^ 1) {
            return 0;
        }
        if a == 1 || a == b {
            return b;
        }
        if b == 1 {
            return a;
        }
        let key = (a.max(b), a.min(b));
        if let Some(&lit) = self.hash.get(&key) {
            return lit;
        }
        self.next_var += 1;
        let lhs = 2 * self.next_var;
        self.ands.push((lhs, key.0, key.1));
        self.hash.insert(key, lhs);
        lhs
    }

    fn and_all(&mut self, lits: &[u64]) -> u64 {
        lits.iter().fold(1, |acc, &l| self.and2(acc, l))
    }

    fn or_all(&mut self, lits: &[u64]) -> u64 {
        let negated: Vec<u64> = lits.iter().map(|&l| l ^ 1).collect();
        self.and_all(&negated) ^ 1
    }

    fn xor2(&mut self, a: u64, b: u64) -> u64 {
        let t0 = self.and2(a, b ^ 1);
        let t1 = self.and2(a ^ 1, b);
        self.and2(t0 ^ 1, t1 ^ 1) ^ 1
    }
}

fn write_aag_parts(core: &Netlist, latches: &[Latch]) -> Result<String> {
    let order = crate::topo::topological_order(core)?;
    let latch_state: Vec<GateId> = latches.iter().map(|l| l.state).collect();

    // Variable allocation: plain inputs first (id order), then latch states.
    let mut lit_of: Vec<Option<u64>> = vec![None; core.len()];
    let mut plain_inputs: Vec<GateId> = Vec::new();
    for (id, gate) in core.iter() {
        if matches!(gate.kind, GateKind::Input | GateKind::KeyInput) && !latch_state.contains(&id) {
            plain_inputs.push(id);
        }
    }
    let num_inputs = plain_inputs.len() as u64;
    for (pos, &id) in plain_inputs.iter().enumerate() {
        lit_of[id.index()] = Some(2 * (pos as u64 + 1));
    }
    for (pos, &id) in latch_state.iter().enumerate() {
        lit_of[id.index()] = Some(2 * (num_inputs + pos as u64 + 1));
    }

    let mut b = AagBuilder {
        next_var: num_inputs + latch_state.len() as u64,
        ands: Vec::new(),
        hash: HashMap::new(),
    };

    // Only the live cone needs encoding.
    let mut live = vec![false; core.len()];
    let mut stack: Vec<GateId> = core
        .outputs()
        .iter()
        .copied()
        .chain(latches.iter().map(|l| l.next))
        .collect();
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut live[id.index()], true) {
            continue;
        }
        stack.extend_from_slice(&core.gate(id).fanin);
    }

    for &id in &order {
        if !live[id.index()] || lit_of[id.index()].is_some() {
            continue;
        }
        let gate = core.gate(id);
        let f: Vec<u64> = gate
            .fanin
            .iter()
            .map(|x| lit_of[x.index()].expect("topological order visits fan-ins first"))
            .collect();
        let lit = match gate.kind {
            GateKind::Input | GateKind::KeyInput => unreachable!("inputs pre-allocated"),
            GateKind::Const0 => 0,
            GateKind::Const1 => 1,
            GateKind::Buf => f[0],
            GateKind::Not => f[0] ^ 1,
            GateKind::And => b.and_all(&f),
            GateKind::Nand => b.and_all(&f) ^ 1,
            GateKind::Or => b.or_all(&f),
            GateKind::Nor => b.or_all(&f) ^ 1,
            GateKind::Xor => f.iter().skip(1).fold(f[0], |acc, &l| b.xor2(acc, l)),
            GateKind::Xnor => f.iter().skip(1).fold(f[0], |acc, &l| b.xor2(acc, l)) ^ 1,
            GateKind::Mux => {
                // out = in1 when sel else in0; fan-in order [sel, in0, in1].
                let t1 = b.and2(f[0], f[2]);
                let t0 = b.and2(f[0] ^ 1, f[1]);
                b.and2(t1 ^ 1, t0 ^ 1) ^ 1
            }
        };
        lit_of[id.index()] = Some(lit);
    }

    let max_var = b.next_var;
    let mut out = String::new();
    out.push_str(&format!(
        "aag {} {} {} {} {}\n",
        max_var,
        num_inputs,
        latches.len(),
        core.num_outputs(),
        b.ands.len()
    ));
    for &id in &plain_inputs {
        out.push_str(&format!("{}\n", lit_of[id.index()].unwrap()));
    }
    for latch in latches {
        let state = lit_of[latch.state.index()].unwrap();
        let next = lit_of[latch.next.index()].expect("latch next is a live root");
        if latch.init {
            out.push_str(&format!("{state} {next} 1\n"));
        } else {
            out.push_str(&format!("{state} {next}\n"));
        }
    }
    for &o in core.outputs() {
        out.push_str(&format!(
            "{}\n",
            lit_of[o.index()].expect("outputs are live roots")
        ));
    }
    for &(lhs, rhs0, rhs1) in &b.ands {
        out.push_str(&format!("{lhs} {rhs0} {rhs1}\n"));
    }
    for (pos, &id) in plain_inputs.iter().enumerate() {
        out.push_str(&format!("i{pos} {}\n", core.gate(id).name));
    }
    for (pos, latch) in latches.iter().enumerate() {
        out.push_str(&format!("l{pos} {}\n", core.gate(latch.state).name));
    }
    for (pos, &o) in core.outputs().iter().enumerate() {
        out.push_str(&format!("o{pos} {}\n", core.gate(o).name));
    }
    out.push_str("c\nwritten by autolock_netlist\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::exhaustive_equivalent;
    use crate::parse_bench;

    const TOGGLE_AAG: &str = "aag 3 1 1 1 1\n2\n4 6 0\n4\n6 2 4\ni0 en\nl0 q\no0 out\nc\n";

    #[test]
    fn parses_a_sequential_toggle() {
        let seq = parse_aag("toggle", TOGGLE_AAG).unwrap();
        assert_eq!(seq.num_latches(), 1);
        assert_eq!(seq.core().num_inputs(), 2); // en + pseudo-input q
        let cut = seq.cut();
        assert_eq!(cut.num_outputs(), 2);
        // out = q; next = en AND q. q=1,en=1 -> out 1, next 1.
        assert_eq!(cut.evaluate(&[true, true]).unwrap(), vec![true, true]);
        // q=1,en=0 -> out 1, next 0.
        assert_eq!(cut.evaluate(&[false, true]).unwrap(), vec![true, false]);
    }

    #[test]
    fn parses_combinational_aag_and_matches_semantics() {
        // y = a AND NOT b
        let src = "aag 3 2 0 1 1\n2\n4\n6\n6 2 5\ni0 a\ni1 b\no0 y\nc\n";
        let nl = parse_aag("andnot", src)
            .unwrap()
            .into_combinational()
            .expect("combinational");
        assert_eq!(nl.num_inputs(), 2);
        assert_eq!(nl.num_outputs(), 1);
        assert_eq!(nl.evaluate(&[true, false]).unwrap(), vec![true]);
        assert_eq!(nl.evaluate(&[true, true]).unwrap(), vec![false]);
        assert_eq!(nl.evaluate(&[false, false]).unwrap(), vec![false]);
    }

    #[test]
    fn keyinput_symbols_promote_to_key_inputs() {
        let src = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\ni0 a\ni1 keyinput0\no0 y\nc\n";
        let nl = parse_aag("locked", src)
            .unwrap()
            .into_combinational()
            .unwrap();
        assert_eq!(nl.num_inputs(), 1);
        assert_eq!(nl.num_key_inputs(), 1);
    }

    #[test]
    fn constant_outputs_round_trip() {
        let src = "aag 1 1 0 2 0\n2\n0\n1\ni0 a\no0 lo\no1 hi\nc\n";
        let nl = parse_aag("consts", src)
            .unwrap()
            .into_combinational()
            .unwrap();
        assert_eq!(nl.evaluate(&[false]).unwrap(), vec![false, true]);
    }

    #[test]
    fn bench_netlist_round_trips_through_aag() {
        let src = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\n\
                   t = NAND(a, b)\nu = XOR(t, c)\ny = MUX(a, t, u)\nz = NOR(u, b)\n";
        let nl = parse_bench("mix", src).unwrap();
        let aag = write_aag(&nl).unwrap();
        let back = parse_aag("mix", &aag)
            .unwrap()
            .into_combinational()
            .unwrap();
        assert_eq!(back.num_inputs(), nl.num_inputs());
        assert_eq!(back.num_outputs(), nl.num_outputs());
        assert!(exhaustive_equivalent(&nl, &[], &back, &[]).unwrap());
    }

    #[test]
    fn sequential_round_trip_preserves_latches_and_semantics() {
        let seq = parse_aag("toggle", TOGGLE_AAG).unwrap();
        let aag = write_aag_seq(&seq).unwrap();
        let back = parse_aag("toggle", &aag).unwrap();
        assert_eq!(back.num_latches(), 1);
        assert!(exhaustive_equivalent(&seq.cut(), &[], &back.cut(), &[]).unwrap());
        assert!(
            exhaustive_equivalent(&seq.unroll(3).unwrap(), &[], &back.unroll(3).unwrap(), &[])
                .unwrap()
        );
    }

    #[test]
    fn binary_header_is_rejected() {
        let err = parse_aag("bin", "aig 3 2 0 1 1\n").unwrap_err();
        assert!(err.to_string().contains("binary"));
    }

    #[test]
    fn malformed_sources_error_cleanly() {
        let cases: &[&str] = &[
            "",                                   // empty
            "aag 1 1 0\n",                        // short header
            "aag nope 1 0 1 1\n",                 // non-numeric header
            "aag 1 2 0 0 0\n2\n4\n",              // I+L+A > M
            "aag 2 1 0 1 1\n2\n4\n",              // truncated and section
            "aag 2 1 0 1 1\n3\n4\n4 2 2\n",       // odd input literal
            "aag 2 1 0 1 1\n2\n4\n4 2 99\n",      // literal out of range
            "aag 2 1 0 1 1\n2\n4\n4 6 6\n",       // dangling rhs literal
            "aag 2 1 0 1 1\n2\n6\n4 2 2\n",       // dangling output literal
            "aag 2 2 0 0 0\n2\n2\n",              // duplicate input literal
            "aag 3 1 0 0 2\n2\n4 6 6\n6 4 4\n",   // combinational cycle
            "aag 2 1 1 0 0\n2\n4 2 7\n",          // bad latch init
            "aag 2 1 0 1 1\n2\n4\n4 2 2\nq7 x\n", // junk after and section
        ];
        for src in cases {
            let res = parse_aag("bad", src);
            assert!(res.is_err(), "source {src:?} must fail to parse");
        }
    }

    #[test]
    fn dangling_latch_next_is_an_error() {
        let src = "aag 3 1 1 0 0\n2\n4 6\n";
        let err = parse_aag("bad", src).unwrap_err();
        assert!(err.to_string().contains("dangling"), "{err}");
    }
}
