//! AIG-level simplification: constant propagation, structural hashing and
//! cone-of-influence restriction.
//!
//! [`simplify`] rewrites a netlist into an equivalent, usually smaller one:
//!
//! * **Cone of influence** — logic that no primary output (or pinned root)
//!   depends on is dropped. Primary inputs and key inputs are always kept so
//!   the evaluation interface stays stable.
//! * **Constant propagation** — `Const0`/`Const1` fan-ins fold through every
//!   gate kind (including `MUX` select/branch folds and `XOR` parity).
//! * **Structural hashing** — two gates with the same kind and the same
//!   (order-normalized, for commutative kinds) fan-ins share one node.
//! * **Local rewrites** — double negation, duplicate/complementary fan-in
//!   collapse, and the shared single-input promotion from
//!   [`crate::normalize::promote_degenerate`].
//!
//! Pinned gates (primary outputs plus the caller's `extra_roots`, e.g. latch
//! next-state functions) always materialize under their original name — as a
//! `BUF` alias or constant gate if their function collapsed — so downstream
//! name-based tooling keeps working.

use crate::normalize::promote_degenerate;
use crate::{GateId, GateKind, Netlist, Result};
use std::collections::HashMap;

/// The folded value of an old gate during the rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Val {
    /// The gate's function is a constant.
    Const(bool),
    /// The gate's function is computed by this gate of the new netlist.
    Gate(GateId),
}

/// Result of folding one gate before materialization.
enum Fold {
    Const(bool),
    Existing(GateId),
    Node(GateKind, Vec<GateId>),
}

struct Rewriter<'a> {
    old: &'a Netlist,
    nl: Netlist,
    /// Structural hash: (kind, canonical fan-ins) -> new gate.
    hash: HashMap<(GateKind, Vec<GateId>), GateId>,
}

impl<'a> Rewriter<'a> {
    fn new(old: &'a Netlist) -> Self {
        Rewriter {
            old,
            nl: Netlist::new(old.name().to_string()),
            hash: HashMap::new(),
        }
    }

    fn canonical_key(kind: GateKind, fanin: &[GateId]) -> (GateKind, Vec<GateId>) {
        let mut key = fanin.to_vec();
        if matches!(
            kind,
            GateKind::And
                | GateKind::Nand
                | GateKind::Or
                | GateKind::Nor
                | GateKind::Xor
                | GateKind::Xnor
        ) {
            key.sort_unstable();
        }
        (kind, key)
    }

    /// Creates (or reuses via structural hashing) a logic node. `name_hint`
    /// is the old gate's name when the node stands for a source gate; helper
    /// nodes synthesized by folds get a fresh `w`-prefixed name.
    fn node(
        &mut self,
        kind: GateKind,
        fanin: Vec<GateId>,
        name_hint: Option<&str>,
    ) -> Result<GateId> {
        let key = Self::canonical_key(kind, &fanin);
        if let Some(&g) = self.hash.get(&key) {
            return Ok(g);
        }
        let name = match name_hint {
            Some(hint) => self.nl.fresh_name(hint),
            None => self.nl.fresh_name("w"),
        };
        let id = self.nl.add_gate(name, kind, fanin)?;
        self.hash.insert(key, id);
        Ok(id)
    }

    /// Turns a fold into a concrete gate id (materializing a node if
    /// needed). Must not be called on a `Fold::Const`.
    fn gate_of(&mut self, fold: Fold) -> Result<GateId> {
        match fold {
            Fold::Existing(g) => Ok(g),
            Fold::Node(kind, fanin) => self.node(kind, fanin, None),
            Fold::Const(_) => unreachable!("constant folds are resolved by the caller"),
        }
    }

    /// NOT of a value, with double-negation elimination.
    fn not_of(&mut self, v: Val) -> Fold {
        match v {
            Val::Const(b) => Fold::Const(!b),
            Val::Gate(g) => {
                let gate = self.nl.gate(g);
                if gate.kind == GateKind::Not {
                    Fold::Existing(gate.fanin[0])
                } else {
                    Fold::Node(GateKind::Not, vec![g])
                }
            }
        }
    }

    /// Peels NOT chains off a new-netlist gate, returning the base gate and
    /// whether the net phase is inverted.
    fn peel_not(&self, mut g: GateId) -> (GateId, bool) {
        let mut inverted = false;
        while self.nl.gate(g).kind == GateKind::Not {
            inverted = !inverted;
            g = self.nl.gate(g).fanin[0];
        }
        (g, inverted)
    }

    /// AND/OR family fold. `identity` is the neutral constant (true for AND,
    /// false for OR); `negated` turns the result into NAND/NOR.
    fn fold_and_or(&mut self, kind: GateKind, vals: &[Val]) -> Fold {
        let (identity, base_kind, negated) = match kind {
            GateKind::And => (true, GateKind::And, false),
            GateKind::Nand => (true, GateKind::And, true),
            GateKind::Or => (false, GateKind::Or, false),
            GateKind::Nor => (false, GateKind::Or, true),
            _ => unreachable!(),
        };
        let mut fanin: Vec<GateId> = Vec::with_capacity(vals.len());
        let mut result_const = None;
        for &v in vals {
            match v {
                Val::Const(b) if b == identity => {} // neutral: drop
                Val::Const(_) => {
                    result_const = Some(!identity); // absorbing constant
                    break;
                }
                Val::Gate(g) => {
                    if !fanin.contains(&g) {
                        fanin.push(g);
                    }
                }
            }
        }
        // x AND !x = 0, x OR !x = 1.
        if result_const.is_none() {
            'outer: for &g in &fanin {
                let (base, inverted) = self.peel_not(g);
                if inverted && fanin.contains(&base) {
                    result_const = Some(!identity);
                    break 'outer;
                }
            }
        }
        let fold = match result_const {
            Some(b) => Fold::Const(b),
            None => match fanin.len() {
                0 => Fold::Const(identity),
                1 => match promote_degenerate(base_kind, 1) {
                    GateKind::Buf => Fold::Existing(fanin[0]),
                    _ => unreachable!("AND/OR of one operand promotes to BUF"),
                },
                _ => Fold::Node(base_kind, fanin),
            },
        };
        if negated {
            match fold {
                Fold::Const(b) => Fold::Const(!b),
                Fold::Existing(g) => self.not_of(Val::Gate(g)),
                Fold::Node(GateKind::And, f) => Fold::Node(GateKind::Nand, f),
                Fold::Node(GateKind::Or, f) => Fold::Node(GateKind::Nor, f),
                Fold::Node(..) => unreachable!(),
            }
        } else {
            fold
        }
    }

    /// XOR/XNOR parity fold with constant absorption, NOT-phase peeling and
    /// duplicate pair cancellation.
    fn fold_xor(&mut self, kind: GateKind, vals: &[Val]) -> Fold {
        let mut parity = kind == GateKind::Xnor;
        let mut order: Vec<GateId> = Vec::new();
        let mut counts: HashMap<GateId, usize> = HashMap::new();
        for &v in vals {
            match v {
                Val::Const(b) => parity ^= b,
                Val::Gate(g) => {
                    let (base, inverted) = self.peel_not(g);
                    parity ^= inverted;
                    let c = counts.entry(base).or_insert(0);
                    if *c == 0 {
                        order.push(base);
                    }
                    *c += 1;
                }
            }
        }
        let fanin: Vec<GateId> = order.into_iter().filter(|g| counts[g] % 2 == 1).collect();
        match fanin.len() {
            0 => Fold::Const(parity),
            1 if parity => self.not_of(Val::Gate(fanin[0])),
            1 => Fold::Existing(fanin[0]),
            _ if parity => Fold::Node(GateKind::Xnor, fanin),
            _ => Fold::Node(GateKind::Xor, fanin),
        }
    }

    /// MUX fold: `out = in1 when sel else in0` (fan-in order `[sel, in0, in1]`).
    fn fold_mux(&mut self, sel: Val, in0: Val, in1: Val) -> Result<Fold> {
        let s = match sel {
            Val::Const(false) => {
                return Ok(match in0 {
                    Val::Const(b) => Fold::Const(b),
                    Val::Gate(g) => Fold::Existing(g),
                })
            }
            Val::Const(true) => {
                return Ok(match in1 {
                    Val::Const(b) => Fold::Const(b),
                    Val::Gate(g) => Fold::Existing(g),
                })
            }
            Val::Gate(g) => g,
        };
        Ok(match (in0, in1) {
            // sel ? 1 : 0  =  sel,   sel ? 0 : 1  =  !sel
            (Val::Const(false), Val::Const(true)) => Fold::Existing(s),
            (Val::Const(true), Val::Const(false)) => self.not_of(Val::Gate(s)),
            (Val::Const(a), Val::Const(_)) => Fold::Const(a), // both equal
            // sel ? b : 0  =  sel AND b
            (Val::Const(false), Val::Gate(b)) => {
                self.fold_and_or(GateKind::And, &[Val::Gate(s), Val::Gate(b)])
            }
            // sel ? b : 1  =  !sel OR b
            (Val::Const(true), Val::Gate(b)) => {
                let ns = self.not_of(Val::Gate(s));
                let ns = self.gate_of(ns)?;
                self.fold_and_or(GateKind::Or, &[Val::Gate(ns), Val::Gate(b)])
            }
            // sel ? 0 : a  =  !sel AND a
            (Val::Gate(a), Val::Const(false)) => {
                let ns = self.not_of(Val::Gate(s));
                let ns = self.gate_of(ns)?;
                self.fold_and_or(GateKind::And, &[Val::Gate(ns), Val::Gate(a)])
            }
            // sel ? 1 : a  =  sel OR a
            (Val::Gate(a), Val::Const(true)) => {
                self.fold_and_or(GateKind::Or, &[Val::Gate(s), Val::Gate(a)])
            }
            (Val::Gate(a), Val::Gate(b)) if a == b => Fold::Existing(a),
            (Val::Gate(a), Val::Gate(b)) => Fold::Node(GateKind::Mux, vec![s, a, b]),
        })
    }

    fn fold_gate(&mut self, kind: GateKind, vals: &[Val]) -> Result<Fold> {
        Ok(match kind {
            GateKind::Const0 => Fold::Const(false),
            GateKind::Const1 => Fold::Const(true),
            GateKind::Buf => match vals[0] {
                Val::Const(b) => Fold::Const(b),
                Val::Gate(g) => Fold::Existing(g),
            },
            GateKind::Not => self.not_of(vals[0]),
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                self.fold_and_or(kind, vals)
            }
            GateKind::Xor | GateKind::Xnor => self.fold_xor(kind, vals),
            GateKind::Mux => self.fold_mux(vals[0], vals[1], vals[2])?,
            GateKind::Input | GateKind::KeyInput => {
                unreachable!("inputs are created before folding")
            }
        })
    }

    /// Materializes a pinned old gate under its own name and returns the
    /// named gate id.
    fn materialize_pinned(&mut self, old_id: GateId, val: Val) -> Result<GateId> {
        let name = self.old.gate(old_id).name.clone();
        match val {
            Val::Const(b) => {
                let kind = if b {
                    GateKind::Const1
                } else {
                    GateKind::Const0
                };
                let name = self.nl.fresh_name(&name);
                self.nl.add_gate(name, kind, Vec::new())
            }
            Val::Gate(g) if self.nl.gate(g).name == name => Ok(g),
            Val::Gate(g) => {
                let name = self.nl.fresh_name(&name);
                self.nl.add_gate(name, GateKind::Buf, vec![g])
            }
        }
    }
}

/// Computes the cone of influence: every old gate some root transitively
/// depends on (roots included).
fn cone(old: &Netlist, roots: impl Iterator<Item = GateId>) -> Vec<bool> {
    let mut live = vec![false; old.len()];
    let mut stack: Vec<GateId> = roots.collect();
    while let Some(id) = stack.pop() {
        if live[id.index()] {
            continue;
        }
        live[id.index()] = true;
        stack.extend_from_slice(&old.gate(id).fanin);
    }
    live
}

/// Copies `nl` keeping only the interface plus the cone of `outputs ∪
/// keep_roots`, preserving names and relative order. Gate ids are assigned
/// at insertion, so id order is already topological.
fn prune_dead(nl: &Netlist, keep_roots: &[GateId]) -> Result<(Netlist, Vec<Option<GateId>>)> {
    let live = cone(
        nl,
        nl.outputs()
            .iter()
            .copied()
            .chain(keep_roots.iter().copied()),
    );
    let mut out = Netlist::new(nl.name().to_string());
    let mut map: Vec<Option<GateId>> = vec![None; nl.len()];
    for (id, gate) in nl.iter() {
        let new_id = match gate.kind {
            GateKind::Input => out.try_add_input(gate.name.clone())?,
            GateKind::KeyInput => out.add_key_input(gate.name.clone())?,
            _ if live[id.index()] => {
                let fanin = gate
                    .fanin
                    .iter()
                    .map(|f| map[f.index()].expect("cone closure keeps fan-ins live"))
                    .collect();
                out.add_gate(gate.name.clone(), gate.kind, fanin)?
            }
            _ => continue,
        };
        map[id.index()] = Some(new_id);
    }
    for &o in nl.outputs() {
        out.mark_output(map[o.index()].expect("outputs are live roots"));
    }
    Ok((out, map))
}

/// Simplifies a netlist (see the module docs for the pass list). The
/// interface — primary inputs, key inputs and primary outputs, in order and
/// by name — is preserved; internal logic may shrink or disappear.
///
/// # Errors
///
/// Propagates construction and validation errors ([`crate::NetlistError`]).
pub fn simplify(nl: &Netlist) -> Result<Netlist> {
    simplify_mapped(nl, &[]).map(|(n, _)| n)
}

/// [`simplify`] variant that pins `extra_roots` (they are kept live and
/// materialized by name like outputs) and returns, for every old gate, the
/// new gate standing for it — `None` when the gate was dropped (outside the
/// cone of influence) or folded to a constant without being pinned.
pub(crate) fn simplify_mapped(
    old: &Netlist,
    extra_roots: &[GateId],
) -> Result<(Netlist, Vec<Option<GateId>>)> {
    let order = crate::topo::topological_order(old)?;
    let live = cone(
        old,
        old.outputs()
            .iter()
            .copied()
            .chain(extra_roots.iter().copied()),
    );
    let mut pinned = vec![false; old.len()];
    for &o in old.outputs() {
        pinned[o.index()] = true;
    }
    for &r in extra_roots {
        pinned[r.index()] = true;
    }

    let mut rw = Rewriter::new(old);
    let mut vals: Vec<Option<Val>> = vec![None; old.len()];
    let mut mapped: Vec<Option<GateId>> = vec![None; old.len()];

    // Interface first, in old id order, live or not: evaluation vectors must
    // keep their shape.
    for (id, gate) in old.iter() {
        let new_id = match gate.kind {
            GateKind::Input => rw.nl.try_add_input(gate.name.clone())?,
            GateKind::KeyInput => rw.nl.add_key_input(gate.name.clone())?,
            _ => continue,
        };
        vals[id.index()] = Some(Val::Gate(new_id));
        mapped[id.index()] = Some(new_id);
    }

    for &id in &order {
        let gate = old.gate(id);
        if matches!(gate.kind, GateKind::Input | GateKind::KeyInput) || !live[id.index()] {
            continue;
        }
        let fanin_vals: Vec<Val> = gate
            .fanin
            .iter()
            .map(|f| vals[f.index()].expect("topological order visits fan-ins first"))
            .collect();
        let fold = rw.fold_gate(gate.kind, &fanin_vals)?;
        let val = match fold {
            Fold::Const(b) => Val::Const(b),
            fold => {
                // Source gates keep their own name on a hash miss.
                let g = match fold {
                    Fold::Existing(g) => g,
                    Fold::Node(kind, fanin) => rw.node(kind, fanin, Some(&gate.name))?,
                    Fold::Const(_) => unreachable!(),
                };
                Val::Gate(g)
            }
        };
        vals[id.index()] = Some(val);
        mapped[id.index()] = match val {
            Val::Gate(g) => Some(g),
            Val::Const(_) => None,
        };
        if pinned[id.index()] {
            mapped[id.index()] = Some(rw.materialize_pinned(id, val)?);
        }
    }

    for &o in old.outputs() {
        let id = mapped[o.index()].expect("outputs are pinned and therefore materialized");
        rw.nl.mark_output(id);
    }

    // Folds can leave bypassed helper nodes behind (e.g. a NOT that double
    // negation later skipped); prune them and compose the two mappings.
    let keep: Vec<GateId> = extra_roots
        .iter()
        .filter_map(|r| mapped[r.index()])
        .collect();
    let (nl, prune_map) = prune_dead(&rw.nl, &keep)?;
    let mapped: Vec<Option<GateId>> = mapped
        .iter()
        .map(|m| m.and_then(|g| prune_map[g.index()]))
        .collect();
    nl.validate()?;
    Ok((nl, mapped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::exhaustive_equivalent;
    use crate::parse_bench;

    fn check_equiv(nl: &Netlist) -> Netlist {
        let simplified = simplify(nl).expect("simplify");
        assert!(
            exhaustive_equivalent(nl, &[], &simplified, &[]).expect("equiv"),
            "simplified netlist must stay equivalent"
        );
        simplified
    }

    #[test]
    fn structural_hashing_merges_duplicate_gates() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n\
                   g1 = AND(a, b)\ng2 = AND(b, a)\ny = XOR(g1, g2)\n";
        let nl = parse_bench("dup", src).unwrap();
        let s = check_equiv(&nl);
        // XOR(g, g) = 0: the whole cone folds to a constant output.
        assert_eq!(s.num_outputs(), 1);
        assert!(matches!(s.gate(s.outputs()[0]).kind, GateKind::Const0));
    }

    #[test]
    fn constant_propagation_through_mux() {
        let src = "INPUT(s)\nINPUT(a)\nOUTPUT(y)\n\
                   zero = GND()\ny = MUX(s, zero, a)\n";
        let nl = parse_bench("mux0", src).unwrap();
        let s = check_equiv(&nl);
        // MUX(s, 0, a) = AND(s, a); the output is a named pin over it.
        assert!(s.len() < nl.len() || s.num_logic_gates() <= nl.num_logic_gates());
        assert!(!s.iter().any(|(_, g)| matches!(g.kind, GateKind::Mux)));
    }

    #[test]
    fn cone_of_influence_drops_dead_logic() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n\
                   dead1 = AND(a, b)\ndead2 = XOR(dead1, a)\ny = NOT(a)\n";
        let nl = parse_bench("coi", src).unwrap();
        let s = check_equiv(&nl);
        assert!(s.find("dead1").is_none());
        assert!(s.find("dead2").is_none());
        // Unused input `b` survives for interface stability.
        assert_eq!(s.num_inputs(), 2);
    }

    #[test]
    fn double_negation_collapses() {
        let src = "INPUT(a)\nOUTPUT(y)\nn1 = NOT(a)\nn2 = NOT(n1)\ny = BUFF(n2)\n";
        let nl = parse_bench("dneg", src).unwrap();
        let s = check_equiv(&nl);
        // y is pinned; it should be a BUF alias of the input directly.
        let y = s.find("y").unwrap();
        assert_eq!(s.gate(y).kind, GateKind::Buf);
        assert_eq!(s.gate(s.gate(y).fanin[0]).kind, GateKind::Input);
    }

    #[test]
    fn complementary_fanins_fold() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\n\
                   na = NOT(a)\ny = AND(a, na, b)\nz = OR(a, na)\n";
        let nl = parse_bench("compl", src).unwrap();
        let s = check_equiv(&nl);
        assert!(matches!(
            s.gate(s.find("y").unwrap()).kind,
            GateKind::Const0
        ));
        assert!(matches!(
            s.gate(s.find("z").unwrap()).kind,
            GateKind::Const1
        ));
    }

    #[test]
    fn xor_parity_cancels_pairs() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n\
                   y = XOR(a, b, a)\n";
        let nl = parse_bench("parity", src).unwrap();
        let s = check_equiv(&nl);
        // XOR(a, b, a) = b: y becomes an alias of b.
        let y = s.find("y").unwrap();
        assert_eq!(s.gate(y).kind, GateKind::Buf);
    }

    #[test]
    fn key_inputs_survive_simplification() {
        let src = "INPUT(a)\nINPUT(keyinput0)\nOUTPUT(y)\ny = XOR(a, keyinput0)\n";
        let nl = parse_bench("keyed", src).unwrap();
        let s = simplify(&nl).unwrap();
        assert_eq!(s.num_key_inputs(), 1);
        assert!(
            exhaustive_equivalent(&nl, &[true], &s, &[true]).unwrap(),
            "keyed equivalence"
        );
    }

    #[test]
    fn mapped_pins_extra_roots() {
        let mut nl = Netlist::new("pins");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate("g", GateKind::And, vec![a, b]).unwrap();
        let h = nl.add_gate("h", GateKind::Not, vec![g]).unwrap();
        let y = nl.add_gate("y", GateKind::Buf, vec![a]).unwrap();
        nl.mark_output(y);
        // h is dead w.r.t. outputs but pinned via extra_roots.
        let (s, map) = simplify_mapped(&nl, &[h]).unwrap();
        let h_new = map[h.index()].expect("pinned root is materialized");
        assert_eq!(s.gate(h_new).name, "h");
        // Without pinning it is dropped.
        let (s2, map2) = simplify_mapped(&nl, &[]).unwrap();
        assert!(map2[h.index()].is_none());
        assert!(s2.find("h").is_none());
    }
}
