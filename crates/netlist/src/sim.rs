//! Bit-parallel logic simulation.
//!
//! Patterns are packed 64 per `u64` word, so one pass over the netlist
//! evaluates 64 input vectors. This is the workhorse used by the equivalence
//! checker, the overhead model (switching activity) and the attacks (output
//! corruption measurements).

use crate::{GateId, Netlist, NetlistError, Result};
use rand::Rng;

/// A set of simulation patterns for a fixed set of signals.
///
/// `words[i]` holds 64 packed values of signal `i` (one bit per pattern).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSet {
    /// Number of valid patterns (1..=64) packed in each word.
    pub num_patterns: usize,
    /// One word per signal.
    pub words: Vec<u64>,
}

impl PatternSet {
    /// Creates an all-zero pattern set for `num_signals` signals.
    pub fn zeros(num_signals: usize, num_patterns: usize) -> Self {
        assert!((1..=64).contains(&num_patterns));
        PatternSet {
            num_patterns,
            words: vec![0; num_signals],
        }
    }

    /// Creates a random pattern set.
    pub fn random<R: Rng + ?Sized>(num_signals: usize, num_patterns: usize, rng: &mut R) -> Self {
        assert!((1..=64).contains(&num_patterns));
        let mask = Self::mask(num_patterns);
        PatternSet {
            num_patterns,
            words: (0..num_signals).map(|_| rng.gen::<u64>() & mask).collect(),
        }
    }

    /// Bit mask with the `num_patterns` lowest bits set.
    pub fn mask(num_patterns: usize) -> u64 {
        if num_patterns >= 64 {
            u64::MAX
        } else {
            (1u64 << num_patterns) - 1
        }
    }

    /// Gets the value of signal `sig` in pattern `pat`.
    pub fn get(&self, sig: usize, pat: usize) -> bool {
        (self.words[sig] >> pat) & 1 == 1
    }

    /// Sets the value of signal `sig` in pattern `pat`.
    pub fn set(&mut self, sig: usize, pat: usize, value: bool) {
        if value {
            self.words[sig] |= 1 << pat;
        } else {
            self.words[sig] &= !(1 << pat);
        }
    }
}

/// Result of a bit-parallel simulation: one word per gate in the netlist.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Number of valid patterns.
    pub num_patterns: usize,
    /// Packed values for every gate (indexed by [`GateId::index`]).
    pub values: Vec<u64>,
}

impl SimResult {
    /// Value of `gate` for pattern `pat`.
    pub fn get(&self, gate: GateId, pat: usize) -> bool {
        (self.values[gate.index()] >> pat) & 1 == 1
    }

    /// Packed word of `gate`.
    pub fn word(&self, gate: GateId) -> u64 {
        self.values[gate.index()]
    }
}

/// Simulates up to 64 patterns in one pass.
///
/// `pi_patterns` and `key_patterns` supply one packed word per primary input
/// (in [`Netlist::inputs`] order) and per key input (in [`Netlist::key_inputs`]
/// order) respectively.
///
/// # Errors
///
/// Returns [`NetlistError::InputCountMismatch`] if the word counts do not match
/// the number of inputs, or a cycle error if the netlist is not combinational.
pub fn simulate(
    nl: &Netlist,
    pi_patterns: &[u64],
    key_patterns: &[u64],
    num_patterns: usize,
) -> Result<SimResult> {
    let inputs = nl.inputs();
    let keys = nl.key_inputs();
    if pi_patterns.len() != inputs.len() {
        return Err(NetlistError::InputCountMismatch {
            expected: inputs.len(),
            got: pi_patterns.len(),
        });
    }
    if key_patterns.len() != keys.len() {
        return Err(NetlistError::InputCountMismatch {
            expected: keys.len(),
            got: key_patterns.len(),
        });
    }
    let order = crate::topo::topological_order(nl)?;
    let mut values = vec![0u64; nl.len()];
    for (id, &w) in inputs.iter().zip(pi_patterns) {
        values[id.index()] = w;
    }
    for (id, &w) in keys.iter().zip(key_patterns) {
        values[id.index()] = w;
    }
    let mut buf: Vec<u64> = Vec::with_capacity(8);
    for id in order {
        let gate = nl.gate(id);
        if gate.kind.is_input() {
            continue;
        }
        buf.clear();
        buf.extend(gate.fanin.iter().map(|f| values[f.index()]));
        values[id.index()] = gate.kind.eval_word(&buf);
    }
    let mask = PatternSet::mask(num_patterns);
    for v in values.iter_mut() {
        *v &= mask;
    }
    Ok(SimResult {
        num_patterns,
        values,
    })
}

/// Simulates with a fixed (scalar) key replicated across all patterns.
pub fn simulate_with_key_bits(
    nl: &Netlist,
    pi_patterns: &[u64],
    key_bits: &[bool],
    num_patterns: usize,
) -> Result<SimResult> {
    let key_words: Vec<u64> = key_bits
        .iter()
        .map(|&b| if b { u64::MAX } else { 0 })
        .collect();
    simulate(nl, pi_patterns, &key_words, num_patterns)
}

/// Output response of a simulation: one packed word per primary output.
pub fn output_response(nl: &Netlist, sim: &SimResult) -> Vec<u64> {
    nl.outputs().iter().map(|&o| sim.word(o)).collect()
}

/// Fraction of (output, pattern) pairs that differ between two simulations of
/// netlists with the same output count. Used to quantify output corruption of
/// a locked circuit under a wrong key.
pub fn output_error_rate(a: &[u64], b: &[u64], num_patterns: usize) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() || num_patterns == 0 {
        return 0.0;
    }
    let mask = PatternSet::mask(num_patterns);
    let mut diff = 0u32;
    for (&x, &y) in a.iter().zip(b) {
        diff += ((x ^ y) & mask).count_ones();
    }
    diff as f64 / (a.len() * num_patterns) as f64
}

/// Estimates per-gate signal probability (fraction of patterns where the gate
/// evaluates to 1) with `rounds * 64` random patterns. Used as a
/// switching-activity / power proxy by the overhead model.
pub fn signal_probabilities<R: Rng + ?Sized>(
    nl: &Netlist,
    key_bits: &[bool],
    rounds: usize,
    rng: &mut R,
) -> Result<Vec<f64>> {
    let n_pi = nl.num_inputs();
    let mut ones = vec![0u64; nl.len()];
    let total = (rounds.max(1) * 64) as f64;
    for _ in 0..rounds.max(1) {
        let pi: Vec<u64> = (0..n_pi).map(|_| rng.gen()).collect();
        let sim = simulate_with_key_bits(nl, &pi, key_bits, 64)?;
        for (o, v) in ones.iter_mut().zip(&sim.values) {
            *o += v.count_ones() as u64;
        }
    }
    Ok(ones.into_iter().map(|o| o as f64 / total).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn full_adder() -> Netlist {
        let mut nl = Netlist::new("fa");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let cin = nl.add_input("cin");
        let ab = nl.add_gate("ab", GateKind::Xor, vec![a, b]).unwrap();
        let sum = nl.add_gate("sum", GateKind::Xor, vec![ab, cin]).unwrap();
        let and1 = nl.add_gate("and1", GateKind::And, vec![a, b]).unwrap();
        let and2 = nl.add_gate("and2", GateKind::And, vec![ab, cin]).unwrap();
        let cout = nl.add_gate("cout", GateKind::Or, vec![and1, and2]).unwrap();
        nl.mark_output(sum);
        nl.mark_output(cout);
        nl
    }

    #[test]
    fn parallel_sim_matches_scalar_eval() {
        let nl = full_adder();
        // 8 patterns: all combinations of 3 inputs.
        let mut pi = vec![0u64; 3];
        for pat in 0..8usize {
            for (i, w) in pi.iter_mut().enumerate() {
                if (pat >> i) & 1 == 1 {
                    *w |= 1 << pat;
                }
            }
        }
        let sim = simulate(&nl, &pi, &[], 8).unwrap();
        for pat in 0..8usize {
            let a = (pat) & 1 == 1;
            let b = (pat >> 1) & 1 == 1;
            let c = (pat >> 2) & 1 == 1;
            let expect = nl.evaluate(&[a, b, c]).unwrap();
            let sum = sim.get(nl.find("sum").unwrap(), pat);
            let cout = sim.get(nl.find("cout").unwrap(), pat);
            assert_eq!(vec![sum, cout], expect, "pattern {pat}");
        }
    }

    #[test]
    fn wrong_input_count_rejected() {
        let nl = full_adder();
        assert!(simulate(&nl, &[0, 0], &[], 4).is_err());
        assert!(simulate(&nl, &[0, 0, 0], &[0], 4).is_err());
    }

    #[test]
    fn output_error_rate_bounds() {
        assert_eq!(output_error_rate(&[0], &[0], 64), 0.0);
        assert_eq!(output_error_rate(&[u64::MAX], &[0], 64), 1.0);
        let half = output_error_rate(&[0xAAAA_AAAA_AAAA_AAAA], &[0], 64);
        assert!((half - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pattern_set_get_set_roundtrip() {
        let mut ps = PatternSet::zeros(3, 16);
        ps.set(1, 5, true);
        assert!(ps.get(1, 5));
        ps.set(1, 5, false);
        assert!(!ps.get(1, 5));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ps = PatternSet::random(4, 32, &mut rng);
        for w in &ps.words {
            assert_eq!(w & !PatternSet::mask(32), 0);
        }
    }

    #[test]
    fn signal_probabilities_reasonable() {
        let nl = full_adder();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let probs = signal_probabilities(&nl, &[], 8, &mut rng).unwrap();
        // XOR of two random inputs should be ~0.5; AND ~0.25.
        let ab = nl.find("ab").unwrap();
        let and1 = nl.find("and1").unwrap();
        assert!((probs[ab.index()] - 0.5).abs() < 0.1);
        assert!((probs[and1.index()] - 0.25).abs() < 0.1);
    }

    #[test]
    fn keyed_simulation_uses_key_bits() {
        let mut nl = Netlist::new("k");
        let a = nl.add_input("a");
        let k = nl.add_key_input("k0").unwrap();
        let x = nl.add_gate("x", GateKind::Xor, vec![a, k]).unwrap();
        nl.mark_output(x);
        let sim0 = simulate_with_key_bits(&nl, &[0b01], &[false], 2).unwrap();
        let sim1 = simulate_with_key_bits(&nl, &[0b01], &[true], 2).unwrap();
        assert_eq!(sim0.word(x) & 0b11, 0b01);
        assert_eq!(sim1.word(x) & 0b11, 0b10);
    }
}
