//! Parser for the ISCAS-89 style `.bench` netlist format.
//!
//! The accepted grammar (one statement per line):
//!
//! ```text
//! # comment
//! INPUT(a)
//! OUTPUT(y)
//! KEYINPUT(keyinput0)          # extension used by locked netlists
//! y = NAND(a, b)
//! m = MUX(sel, a, b)
//! ```
//!
//! Key inputs may also be declared with the common convention of an ordinary
//! `INPUT(keyinputN)` whose name starts with `keyinput`; the parser promotes
//! those to [`GateKind::KeyInput`] automatically.
//!
//! Real-world `.bench` dialects (the circulating ISCAS-85/89 distributions
//! and tool exports) are accepted beyond the strict grammar:
//!
//! * keywords are case-insensitive (`nand(...)`, `input(...)`),
//! * signal names may start with digits (`1gat = not(115gat)`),
//! * CRLF line endings, tabs and trailing comments are ignored (via the
//!   shared [`crate::normalize`] helpers, so every parser of this crate
//!   behaves identically),
//! * repeated `OUTPUT` declarations of the same signal collapse to one,
//! * degenerate single-input `AND`/`OR` (resp. `NAND`/`NOR`) gates — common
//!   in mechanically generated benches — are promoted to `BUF` (resp. `NOT`)
//!   by [`crate::normalize::promote_degenerate`],
//! * simple sequential elements (`q = DFF(d)`, `q = LATCH(d)`) parse into a
//!   [`SequentialCircuit`] via [`parse_bench_sequential`]; the combinational
//!   [`parse_bench`] front produces a dedicated
//!   [`NetlistError::Sequential`] for them instead of a generic "unknown
//!   gate type". Set/reset flavors (`DFFSR`, `SDFF`) stay unsupported.

use crate::ingest::{Latch, SequentialCircuit};
use crate::normalize::{promote_degenerate, source_lines};
use crate::{GateId, GateKind, Netlist, NetlistError, Result};
use std::collections::HashMap;

/// Parses a `.bench` source into a combinational [`Netlist`].
///
/// This is a thin wrapper over [`parse_bench_sequential`] that additionally
/// rejects sources containing latches; prefer the [`crate::ingest`] front
/// door ([`crate::ingest::parse_auto`] / [`crate::ingest::parse_path`]) in
/// new code — it detects formats and offers sequential handling.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines,
/// [`NetlistError::UnknownSignal`] / [`NetlistError::UndefinedOutput`] for
/// dangling references, [`NetlistError::Sequential`] for sources with
/// latches, and any error [`Netlist::validate`] reports.
pub fn parse_bench(name: &str, source: &str) -> Result<Netlist> {
    match parse_bench_sequential(name, source)?.into_combinational() {
        Ok(nl) => Ok(nl),
        Err(seq) => Err(NetlistError::Sequential {
            latches: seq.num_latches(),
        }),
    }
}

/// Parses a `.bench` source, accepting `DFF`/`LATCH` elements, into a
/// [`SequentialCircuit`]. Combinational sources yield zero latches.
///
/// Latch semantics: `q = DFF(d)` makes `q` a pseudo primary input of the
/// combinational core and records `d` as its next-state function; `.bench`
/// has no init-value syntax, so registers reset to `0`.
///
/// # Errors
///
/// Same classes as [`parse_bench`], except that latches are accepted.
pub(crate) fn parse_bench_sequential(name: &str, source: &str) -> Result<SequentialCircuit> {
    // First pass: collect declarations so gates can be created in dependency
    // order regardless of textual order.
    struct GateDecl {
        line: usize,
        name: String,
        kind: GateKind,
        fanin_names: Vec<String>,
    }

    struct LatchDecl {
        line: usize,
        name: String,
        data_name: String,
    }

    let mut input_names: Vec<(usize, String)> = Vec::new();
    let mut key_input_names: Vec<(usize, String)> = Vec::new();
    let mut output_names: Vec<(usize, String)> = Vec::new();
    let mut decls: Vec<GateDecl> = Vec::new();
    let mut latch_decls: Vec<LatchDecl> = Vec::new();

    for (line, raw) in source_lines(source) {
        let text = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = strip_directive(text, "INPUT") {
            let sig = parse_single_arg(rest, line)?;
            if sig.to_ascii_lowercase().starts_with("keyinput") {
                key_input_names.push((line, sig));
            } else {
                input_names.push((line, sig));
            }
        } else if let Some(rest) = strip_directive(text, "KEYINPUT") {
            let sig = parse_single_arg(rest, line)?;
            key_input_names.push((line, sig));
        } else if let Some(rest) = strip_directive(text, "OUTPUT") {
            let sig = parse_single_arg(rest, line)?;
            output_names.push((line, sig));
        } else if let Some(eq) = text.find('=') {
            let lhs = text[..eq].trim();
            let rhs = text[eq + 1..].trim();
            if lhs.is_empty() {
                return Err(NetlistError::Parse {
                    line,
                    message: "missing signal name before `=`".into(),
                });
            }
            let open = rhs.find('(').ok_or_else(|| NetlistError::Parse {
                line,
                message: format!("expected `KIND(...)` on right-hand side, got `{rhs}`"),
            })?;
            let close = rhs.rfind(')').ok_or_else(|| NetlistError::Parse {
                line,
                message: "missing closing parenthesis".into(),
            })?;
            if close < open {
                return Err(NetlistError::Parse {
                    line,
                    message: "mismatched parentheses".into(),
                });
            }
            let kw = rhs[..open].trim();
            let args: Vec<String> = rhs[open + 1..close]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            match kw.to_ascii_uppercase().as_str() {
                "DFF" | "LATCH" => {
                    if args.len() != 1 {
                        return Err(NetlistError::Parse {
                            line,
                            message: format!(
                                "sequential element `{kw}` takes exactly one data signal, \
                                 got {}",
                                args.len()
                            ),
                        });
                    }
                    latch_decls.push(LatchDecl {
                        line,
                        name: lhs.to_string(),
                        data_name: args[0].clone(),
                    });
                    continue;
                }
                "DFFSR" | "SDFF" => {
                    return Err(NetlistError::Parse {
                        line,
                        message: format!(
                            "sequential element `{kw}` with set/reset is not supported \
                             (plain `DFF`/`LATCH` are)"
                        ),
                    });
                }
                _ => {}
            }
            let kind = GateKind::from_bench_keyword(kw).ok_or_else(|| NetlistError::Parse {
                line,
                message: format!("unknown gate type `{kw}`"),
            })?;
            // Dialect tolerance: mechanically generated benches contain
            // degenerate single-input AND/OR/NAND/NOR gates; promote them to
            // their one-input equivalent instead of failing arity validation.
            let kind = promote_degenerate(kind, args.len());
            decls.push(GateDecl {
                line,
                name: lhs.to_string(),
                kind,
                fanin_names: args,
            });
        } else {
            return Err(NetlistError::Parse {
                line,
                message: format!("unrecognized statement `{text}`"),
            });
        }
    }

    let mut nl = Netlist::new(name);
    let mut ids: HashMap<String, GateId> = HashMap::new();

    for (line, sig) in &input_names {
        let id = nl.try_add_input(sig.clone()).map_err(|e| match e {
            NetlistError::DuplicateName(n) => NetlistError::Parse {
                line: *line,
                message: format!("duplicate input `{n}`"),
            },
            other => other,
        })?;
        ids.insert(sig.clone(), id);
    }
    for (line, sig) in &key_input_names {
        let id = nl.add_key_input(sig.clone()).map_err(|e| match e {
            NetlistError::DuplicateName(n) => NetlistError::Parse {
                line: *line,
                message: format!("duplicate key input `{n}`"),
            },
            other => other,
        })?;
        ids.insert(sig.clone(), id);
    }
    // Latch outputs are pseudo primary inputs of the combinational core, so
    // they must exist before the worklist runs (logic may feed from them, and
    // a DFF legitimately breaks what would otherwise be a cycle).
    let mut latch_states: Vec<GateId> = Vec::with_capacity(latch_decls.len());
    for decl in &latch_decls {
        let id = nl.try_add_input(decl.name.clone()).map_err(|e| match e {
            NetlistError::DuplicateName(n) => NetlistError::Parse {
                line: decl.line,
                message: format!("signal `{n}` defined twice"),
            },
            other => other,
        })?;
        ids.insert(decl.name.clone(), id);
        latch_states.push(id);
    }

    // Insert logic gates in dependency order with a simple worklist: a decl is
    // ready once all its fan-in names are defined.
    let mut pending: Vec<GateDecl> = decls;
    loop {
        let before = pending.len();
        let mut still_pending = Vec::new();
        for decl in pending {
            let ready = decl.fanin_names.iter().all(|n| ids.contains_key(n));
            if ready {
                let fanin: Vec<GateId> = decl.fanin_names.iter().map(|n| ids[n]).collect();
                let id = nl
                    .add_gate(decl.name.clone(), decl.kind, fanin)
                    .map_err(|e| match e {
                        NetlistError::DuplicateName(n) => NetlistError::Parse {
                            line: decl.line,
                            message: format!("signal `{n}` defined twice"),
                        },
                        NetlistError::BadArity { gate, kind, got } => NetlistError::Parse {
                            line: decl.line,
                            message: format!(
                                "gate `{gate}` of kind {kind} has invalid fan-in count {got}"
                            ),
                        },
                        other => other,
                    })?;
                ids.insert(decl.name, id);
            } else {
                still_pending.push(decl);
            }
        }
        if still_pending.is_empty() {
            break;
        }
        if still_pending.len() == before {
            // No progress: either an unknown signal or a cycle.
            let decl = &still_pending[0];
            let missing = decl
                .fanin_names
                .iter()
                .find(|n| !ids.contains_key(*n))
                .cloned()
                .unwrap_or_default();
            let defined_later = still_pending.iter().any(|d| d.name == missing);
            return Err(if defined_later {
                NetlistError::CombinationalCycle(missing)
            } else {
                NetlistError::Parse {
                    line: decl.line,
                    message: format!("unknown signal `{missing}`"),
                }
            });
        }
        pending = still_pending;
    }

    for (_, sig) in &output_names {
        let id = *ids
            .get(sig)
            .ok_or_else(|| NetlistError::UndefinedOutput(sig.clone()))?;
        nl.mark_output(id);
    }

    let mut latches = Vec::with_capacity(latch_decls.len());
    for (decl, &state) in latch_decls.iter().zip(&latch_states) {
        let next = *ids
            .get(&decl.data_name)
            .ok_or_else(|| NetlistError::Parse {
                line: decl.line,
                message: format!("unknown signal `{}`", decl.data_name),
            })?;
        latches.push(Latch {
            state,
            next,
            init: false,
        });
    }

    nl.validate()?;
    SequentialCircuit::new(nl, latches)
}

fn strip_directive<'a>(text: &'a str, keyword: &str) -> Option<&'a str> {
    let upper = text.to_ascii_uppercase();
    if upper.starts_with(keyword)
        && text[keyword.len()..].trim_start().starts_with('(')
        // Guard against e.g. "INPUTX(" matching "INPUT".
        && !upper
            .as_bytes()
            .get(keyword.len())
            .map(|b| b.is_ascii_alphanumeric() || *b == b'_')
            .unwrap_or(false)
    {
        Some(text[keyword.len()..].trim_start())
    } else {
        None
    }
}

fn parse_single_arg(rest: &str, line: usize) -> Result<String> {
    let rest = rest.trim();
    if !rest.starts_with('(') || !rest.ends_with(')') {
        return Err(NetlistError::Parse {
            line,
            message: format!("expected `(signal)`, got `{rest}`"),
        });
    }
    let sig = rest[1..rest.len() - 1].trim();
    if sig.is_empty() || sig.contains(',') {
        return Err(NetlistError::Parse {
            line,
            message: "expected exactly one signal name".into(),
        });
    }
    Ok(sig.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17_LIKE: &str = "
# small test circuit
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G7)
G5 = NAND(G1, G2)
G6 = NAND(G2, G3)
G7 = NAND(G5, G6)
";

    #[test]
    fn parse_simple_circuit() {
        let nl = parse_bench("c17ish", C17_LIKE).unwrap();
        assert_eq!(nl.num_inputs(), 3);
        assert_eq!(nl.num_outputs(), 1);
        assert_eq!(nl.num_logic_gates(), 3);
        // NAND(NAND(1,1), NAND(1,1)) = NAND(0,0) = 1
        assert_eq!(nl.evaluate(&[true, true, true]).unwrap(), vec![true]);
    }

    #[test]
    fn out_of_order_definitions_ok() {
        let src = "
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(x, b)
x = NOT(a)
";
        let nl = parse_bench("ooo", src).unwrap();
        assert_eq!(nl.evaluate(&[false, true]).unwrap(), vec![true]);
    }

    #[test]
    fn keyinput_directive_and_prefix_promotion() {
        let src = "
INPUT(a)
INPUT(keyinput0)
KEYINPUT(keyinput1)
OUTPUT(y)
t = XOR(a, keyinput0)
y = XNOR(t, keyinput1)
";
        let nl = parse_bench("keys", src).unwrap();
        assert_eq!(nl.num_inputs(), 1);
        assert_eq!(nl.num_key_inputs(), 2);
    }

    #[test]
    fn unknown_gate_type_rejected() {
        let err = parse_bench("x", "INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. }));
        assert!(err.to_string().contains("FROB"));
    }

    #[test]
    fn unknown_signal_rejected() {
        let err = parse_bench("x", "INPUT(a)\nOUTPUT(y)\ny = AND(a, nosuch)\n").unwrap_err();
        assert!(err.to_string().contains("nosuch"));
    }

    #[test]
    fn undefined_output_rejected() {
        let err = parse_bench("x", "INPUT(a)\nOUTPUT(zzz)\n").unwrap_err();
        assert!(matches!(err, NetlistError::UndefinedOutput(_)));
    }

    #[test]
    fn cycle_rejected() {
        let err = parse_bench("x", "INPUT(a)\nOUTPUT(p)\np = AND(a, q)\nq = NOT(p)\n").unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalCycle(_)));
    }

    #[test]
    fn bad_arity_in_source_rejected() {
        let err = parse_bench("x", "INPUT(a)\nOUTPUT(y)\ny = NOT(a, a)\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. }));
    }

    #[test]
    fn mux_gate_parses() {
        let src = "
INPUT(s)
INPUT(a)
INPUT(b)
OUTPUT(y)
y = MUX(s, a, b)
";
        let nl = parse_bench("m", src).unwrap();
        assert_eq!(nl.evaluate(&[false, true, false]).unwrap(), vec![true]);
        assert_eq!(nl.evaluate(&[true, true, false]).unwrap(), vec![false]);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "\n\n# header\nINPUT(a)  # trailing\nOUTPUT(y)\ny = BUF(a) # gate\n\n";
        let nl = parse_bench("c", src).unwrap();
        assert_eq!(nl.num_logic_gates(), 1);
    }

    #[test]
    fn lowercase_dialect_with_crlf_and_numeric_names_parses() {
        let src = "# iscas-style\r\ninput(1gat)\r\ninput(4gat)\r\noutput(10gat)\r\n\t10gat = nand(1gat, 4gat)\r\n";
        let nl = parse_bench("dialect", src).unwrap();
        assert_eq!(nl.num_inputs(), 2);
        assert_eq!(nl.num_outputs(), 1);
        assert_eq!(nl.evaluate(&[true, true]).unwrap(), vec![false]);
    }

    #[test]
    fn single_input_and_or_promote_to_buf_not() {
        let src = "
INPUT(a)
OUTPUT(w)
OUTPUT(x)
OUTPUT(y)
OUTPUT(z)
w = AND(a)
x = OR(a)
y = NAND(a)
z = NOR(a)
";
        let nl = parse_bench("degenerate", src).unwrap();
        use crate::GateKind;
        assert_eq!(nl.gate(nl.find("w").unwrap()).kind, GateKind::Buf);
        assert_eq!(nl.gate(nl.find("x").unwrap()).kind, GateKind::Buf);
        assert_eq!(nl.gate(nl.find("y").unwrap()).kind, GateKind::Not);
        assert_eq!(nl.gate(nl.find("z").unwrap()).kind, GateKind::Not);
        assert_eq!(
            nl.evaluate(&[true]).unwrap(),
            vec![true, true, false, false]
        );
    }

    #[test]
    fn repeated_output_declarations_collapse() {
        let src = "INPUT(a)\nOUTPUT(y)\nOUTPUT(y)\ny = NOT(a)\n";
        let nl = parse_bench("dup_out", src).unwrap();
        assert_eq!(nl.num_outputs(), 1);
    }

    #[test]
    fn sequential_elements_get_a_dedicated_error() {
        let err = parse_bench("seq", "INPUT(d)\nOUTPUT(q)\nq = DFF(d)\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("sequential"), "got: {msg}");
        assert!(matches!(err, NetlistError::Sequential { latches: 1 }));
    }

    #[test]
    fn dff_parses_into_a_sequential_circuit() {
        let src = "INPUT(en)\nOUTPUT(y)\nq = DFF(nxt)\nnxt = XOR(q, en)\ny = BUF(q)\n";
        let seq = parse_bench_sequential("toggle", src).unwrap();
        assert_eq!(seq.num_latches(), 1);
        // `q` is a pseudo primary input of the core.
        assert_eq!(seq.core().num_inputs(), 2);
        let cut = seq.cut();
        assert_eq!(cut.num_outputs(), 2); // y + next-state
                                          // q feeds back through XOR: the DFF legitimately breaks the cycle.
        let u2 = seq.unroll(2).unwrap();
        assert_eq!(u2.evaluate(&[true, false]).unwrap(), vec![false, true]);
    }

    #[test]
    fn latch_keyword_is_accepted_like_dff() {
        let src = "INPUT(d)\nOUTPUT(q)\nq = LATCH(d)\n";
        let seq = parse_bench_sequential("l", src).unwrap();
        assert_eq!(seq.num_latches(), 1);
        assert!(!seq.latches()[0].init, ".bench registers reset to 0");
    }

    #[test]
    fn set_reset_flavors_stay_rejected() {
        for kw in ["DFFSR", "SDFF"] {
            let src = format!("INPUT(d)\nOUTPUT(q)\nq = {kw}(d, d, d)\n");
            let err = parse_bench_sequential("sr", &src).unwrap_err();
            assert!(err.to_string().contains(kw), "got: {err}");
        }
    }

    #[test]
    fn dff_with_wrong_arity_rejected() {
        let err =
            parse_bench_sequential("bad", "INPUT(d)\nOUTPUT(q)\nq = DFF(d, d)\n").unwrap_err();
        assert!(err.to_string().contains("exactly one"), "got: {err}");
    }

    #[test]
    fn dff_with_unknown_data_signal_rejected() {
        let err =
            parse_bench_sequential("bad", "INPUT(d)\nOUTPUT(q)\nq = DFF(ghost)\n").unwrap_err();
        assert!(err.to_string().contains("ghost"), "got: {err}");
    }

    #[test]
    fn duplicate_definition_rejected() {
        let err = parse_bench("d", "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\ny = NOT(a)\n").unwrap_err();
        assert!(err.to_string().contains("twice") || err.to_string().contains("duplicate"));
    }
}
